"""Deterministic discrete-event simulation of message-passing processes.

This package is the substrate the paper assumes ("concurrent processes
that communicate with messages", §3), rebuilt as a seeded, reproducible
simulator so the HOPE semantics above it are testable and the benchmarks
are stable.
"""

from .kernel import (
    EventLimitExceeded,
    ScheduledEvent,
    ScheduleInPastError,
    SimulationError,
    Simulator,
)
from .process import (
    TIMED_OUT,
    Effect,
    Fork,
    GetTime,
    Halt,
    Recv,
    Task,
    TaskEnv,
    TaskKilled,
    Timeout,
    UnknownEffectError,
    default_effect_handler,
)
from .channel import Delivery, Mailbox, Message, Network, UnknownEndpointError
from .faults import (
    DETECTOR_ENDPOINT,
    NO_FAULTS,
    FaultPlan,
    FaultStats,
    FaultyNetwork,
    LinkFaults,
    Partition,
)
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LinkLatency,
    SequenceLatency,
    UniformLatency,
)
from .random import RandomStream, RandomStreams, derive_seed
from .trace import NullTracer, TraceRecord, Tracer
from .failure import CrashRecord, FailureInjector
from .timeline import ProcessTimeline, Span, Timeline
from .render import render_timeline, render_utilization

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "ScheduleInPastError",
    "EventLimitExceeded",
    "Effect",
    "Timeout",
    "Recv",
    "GetTime",
    "Fork",
    "Halt",
    "Task",
    "TaskEnv",
    "TaskKilled",
    "TIMED_OUT",
    "UnknownEffectError",
    "default_effect_handler",
    "Message",
    "Mailbox",
    "Network",
    "Delivery",
    "UnknownEndpointError",
    "DETECTOR_ENDPOINT",
    "NO_FAULTS",
    "FaultPlan",
    "FaultStats",
    "FaultyNetwork",
    "LinkFaults",
    "Partition",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "SequenceLatency",
    "LinkLatency",
    "RandomStream",
    "RandomStreams",
    "derive_seed",
    "Tracer",
    "NullTracer",
    "TraceRecord",
    "FailureInjector",
    "CrashRecord",
    "Timeline",
    "ProcessTimeline",
    "Span",
    "render_timeline",
    "render_utilization",
]
