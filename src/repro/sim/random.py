"""Deterministic named random streams.

A simulation draws randomness from several logically independent sources —
message latency, workload think time, failure injection, schedule
exploration.  Giving each its own :class:`RandomStream`, seeded by hashing
the root seed with the stream name, keeps them independent: adding a draw
to one stream cannot perturb another, so experiments stay comparable
across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from the root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named, independently seeded PRNG stream."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.seed = derive_seed(root_seed, name)
        self._rng = random.Random(self.seed)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self._rng.random() < p

    def getstate(self):
        return self._rng.getstate()

    def setstate(self, state) -> None:
        self._rng.setstate(state)

    def __repr__(self) -> str:
        return f"RandomStream({self.name!r}, seed={self.seed})"


class RandomStreams:
    """A factory of named :class:`RandomStream` objects under one root seed.

    Requesting the same name twice returns the same stream instance.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        existing = self._streams.get(name)
        if existing is None:
            existing = RandomStream(self.root_seed, name)
            self._streams[name] = existing
        return existing

    def __getitem__(self, name: str) -> RandomStream:
        return self.stream(name)

    def names(self) -> list[str]:
        return sorted(self._streams)

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={self.names()})"
