"""Discrete-event simulation kernel.

The kernel provides a virtual clock and a pending-event queue.  Everything
else in the simulator (processes, channels, failures) is built from two
operations:

* :meth:`Simulator.schedule` — run a callback at a later virtual time;
* :meth:`Simulator.run` — pop events in time order until exhaustion.

Virtual time is a float measured in abstract "time units".  The paper's
latency argument (30 ms coast-to-coast photons vs. 3 million instructions)
only depends on *ratios* of latency to compute, so units are deliberately
abstract; benchmarks pick ratios, not microseconds.

Three interchangeable event-queue kernels implement the same total order:

* ``kernel="wheel"`` (default) — a hierarchical timer wheel: virtual time
  is quantized into ticks, near-future ticks hash into per-level bucket
  arrays (64 slots per level, each level 64× coarser), and far-future
  events sit in an overflow list that is re-bucketed when reached.
  Schedule and cancel are O(1); popping amortizes bucket maintenance over
  the events in the bucket.  Cancellation never triggers the O(n)
  heap-rebuild compaction that a cancel-heavy speculative workload forces
  on a binary heap — dead events are simply skipped when their bucket is
  reached (with a sweep fallback when they pile up; see
  :meth:`_WheelQueue.on_cancel`).
* ``kernel="heap"`` — the classic binary heap.  Kept as the differential
  oracle: all kernels must produce byte-identical traces, and the kernel
  tests assert exactly that.  It can also win on very sparse, wide-range
  schedules where bucket cascades outcost ``heapq``'s C implementation
  (see docs/PERFORMANCE.md §6).
* ``kernel="window"`` — a sorted "active window" list: ``bisect.insort``
  insertion (C binary search + memmove), O(1) comparison-free pops via a
  head index.  Near-parity with the heap on the small queues that
  request/response chains keep (C ``heapq`` does no comparisons and no
  allocation at queue size 1, so there is nothing left to beat there);
  degrades to O(n) inserts on very large fan-out backlogs
  (see docs/PERFORMANCE.md §8).

Determinism: events fire in ``(time, priority, seq)`` order — a
monotonically increasing sequence number breaks ties at the same
timestamp, so a simulation with a fixed RNG seed is fully reproducible.
Bucket quantization never reorders: tick assignment is monotone in time
and same-tick events are drained through a per-bucket heap using the same
comparator, so the wheel's total order equals the heap's.  This is what
makes the HOPE verification harness (``repro.verify``) able to replay
schedules exactly.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Base class for all simulator-level errors."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled at a negative delay."""


class EventLimitExceeded(SimulationError):
    """Raised when a run exceeds ``max_events`` — usually a livelock."""


class ScheduledEvent:
    """A pending callback in the event queue.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel discards it when its bucket (or heap head) is reached.  This is
    how timeouts that lost a race and messages that were rolled back are
    retracted.

    ``priority`` breaks ties between events at the same virtual time:
    0 by default (scheduling order — FIFO), or a seeded random draw when
    the simulator was built with a tie-break stream, which is how the
    model checker explores alternative interleavings of genuinely
    concurrent events.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "label", "priority", "sim", "key")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        label: str = "",
        priority: int = 0,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label
        self.priority = priority
        #: Owning simulator, so cancellation can keep its live-event count
        #: exact without a queue scan (None for standalone events).
        self.sim = sim
        #: Precomputed sort key.  time/priority/seq never change after
        #: construction, and heap sift chains compare the same event many
        #: times — building the two tuples inside ``__lt__`` per comparison
        #: was measurable on every kernel.
        self.key = (time, priority, seq)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._live -= 1
            sim._queue.on_cancel(sim._live)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6g} #{self.seq} {self.label or self.fn!r} {state}>"


class _HeapQueue:
    """Binary-heap event queue — the pre-wheel kernel, kept as the oracle.

    Cancellation is lazy (dead events are discarded when they reach the
    heap head) with an eviction rebuild when dead entries outnumber live
    ones, so a cancel-heavy workload cannot degrade push/pop to
    O(log total-ever-scheduled).
    """

    #: Heaps smaller than this are never compacted — rebuilding a tiny
    #: heap costs more than lazily popping its cancelled entries.
    COMPACT_MIN = 64

    __slots__ = ("_heap", "compactions")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self.compactions = 0

    def push(self, event: ScheduledEvent) -> None:
        heappush(self._heap, event)

    def peek(self) -> Optional[ScheduledEvent]:
        """Next live event (lazily popping cancelled heads), or None."""
        heap = self._heap
        while heap:
            event = heap[0]
            if not event.cancelled:
                return event
            heappop(heap)
        return None

    def pop_head(self) -> ScheduledEvent:
        """Remove and return the head.  Only valid right after a
        non-None :meth:`peek` (which guarantees a live head)."""
        return heappop(self._heap)

    def on_cancel(self, live: int) -> None:
        """Evict cancelled events when they outnumber live ones.

        ``peek``/``pop_head`` only discard cancelled events that reach the
        heap *head*; a cancel-heavy workload (rollback retracting batches
        of in-flight sends and timeouts) can leave the heap dominated by
        dead entries buried mid-heap, making every push/pop O(log total)
        instead of O(log live).  Rebuilding keeps (time, priority, seq)
        ordering intact, so determinism is unaffected.
        """
        heap = self._heap
        if len(heap) < self.COMPACT_MIN:
            return
        if (len(heap) - live) * 2 <= len(heap):
            return
        self._heap = [e for e in heap if not e.cancelled]
        heapify(self._heap)
        self.compactions += 1

    def __len__(self) -> int:
        return len(self._heap)


class _WindowQueue:
    """Sorted active window — a ``bisect``-based event queue.

    The queue is one Python list kept sorted *ascending* by the event's
    precomputed ``key`` with a head index: entries are ``(key, event)``
    2-tuples (no per-push key rebuild, no negations), the minimum lives
    at ``_window[_head]``, and popping just advances the index — O(1),
    comparison-free.  Insertion is ``bisect.insort`` over the live
    region (``lo=_head``) — an O(log n) C-level binary search plus one C
    ``memmove``.  For the small-to-medium queues the HOPE workloads keep
    (a handful of in-flight deliveries and timers), this avoids the
    heap's Python-level ``__lt__`` sift chains on pushes and holds
    near-parity with C ``heapq`` (which concedes nothing at queue size
    1: no comparisons, no allocation); on very large fan-out backlogs
    the memmove turns O(n) per insert and the wheel/heap win (see
    docs/PERFORMANCE.md §8), which is why the wheel stays the default.

    The live region stays sorted under ``lo=_head`` even though consumed
    prefix entries are stale: ``insort`` never inspects them.  Seqs are
    unique, so the key tuples are totally ordered and the ``event``
    element is never compared.  Cancellation is lazy with the same
    dead-dominance compaction trigger as the heap — but compaction is a
    plain filter (order is already established; no ``heapify``).
    """

    #: Windows smaller than this are never compacted (same floor as the
    #: heap: rebuilding a tiny list costs more than skipping its heads).
    COMPACT_MIN = 64
    #: Consumed-prefix trim floor: pops only advance ``_head``; the dead
    #: prefix is deleted wholesale once it is both this long and at least
    #: half the list.  Every trimmed slot was popped exactly once, so the
    #: memmove is amortized O(1) per event.
    TRIM_MIN = 512

    __slots__ = ("_window", "_head", "compactions")

    def __init__(self) -> None:
        self._window: list[tuple] = []
        self._head = 0
        self.compactions = 0

    def push(self, event: ScheduledEvent) -> None:
        insort(self._window, (event.key, event), lo=self._head)

    def peek(self) -> Optional[ScheduledEvent]:
        """Next live event (lazily skipping cancelled heads), or None."""
        window = self._window
        head = self._head
        size = len(window)
        while head < size:
            event = window[head][1]
            if not event.cancelled:
                self._head = head
                return event
            head += 1
        del window[:]
        self._head = 0
        return None

    def pop_head(self) -> ScheduledEvent:
        """Remove and return the head.  Only valid right after a
        non-None :meth:`peek` (which guarantees a live head)."""
        head = self._head
        event = self._window[head][1]
        head += 1
        if head >= self.TRIM_MIN and head * 2 >= len(self._window):
            del self._window[:head]
            head = 0
        self._head = head
        return event

    def on_cancel(self, live: int) -> None:
        """Filter out cancelled entries once they dominate (cf. the heap's
        compaction; a filtered sorted list stays sorted, so this is the
        cheapest compaction of the three kernels)."""
        window = self._window
        size = len(window) - self._head
        if size < self.COMPACT_MIN:
            return
        if (size - live) * 2 <= size:
            return
        self._window = [
            entry for entry in window[self._head :] if not entry[1].cancelled
        ]
        self._head = 0
        self.compactions += 1

    def __len__(self) -> int:
        return len(self._window) - self._head


class _WheelQueue:
    """Hierarchical timer wheel over quantized virtual time.

    Time is quantized into integer ticks (``tick = int(time / resolution)``
    — monotone in time, so quantization can never reorder events).  Four
    levels of 64 buckets each cover ticks near the current one: level 0
    holds individual ticks, and each higher level is 64× coarser, so the
    wheel spans 64⁴ ≈ 16.7 M ticks before events spill into the overflow
    list.  An event lands in the lowest level whose remaining bucket range
    contains it (equivalently: the lowest level at which its tick shares
    all higher-order bits with the current tick).

    Occupancy per level is a 64-bit mask, so "next non-empty bucket" is a
    couple of int ops (``(m & -m).bit_length()``), not a 64-slot scan —
    advancing over quiet stretches of virtual time is O(levels), not
    O(elapsed ticks).  When the cursor reaches a higher-level bucket, its
    events cascade down one level (re-bucketed by the same placement
    rule); when all levels drain, the overflow list is re-bucketed from
    its earliest event's 64⁴-tick block.  Every event is cascaded at most
    ``LEVELS`` times plus one overflow re-bucket per block crossed, so
    schedule/cancel/pop are O(1) amortized.

    The bucket being drained (``_active``) is a heap ordered by the same
    ``(time, priority, seq)`` comparator as the heap kernel: same-tick
    events (including same-tick events scheduled *while* draining, e.g.
    zero-delay resumes) interleave exactly as they would in the global
    heap, which is what keeps the two kernels' traces byte-identical.

    Cancellation marks the event and leaves the bucket alone — the O(1)
    "bucket unlink" the heap can't do.  Dead events are dropped when
    their bucket is reached; if a cancel storm leaves the wheel dominated
    by dead entries in far-future buckets, :meth:`on_cancel` sweeps all
    buckets once (same trigger policy as the heap's compaction, same
    ``compactions`` counter, no ordering effect).
    """

    BITS = 6
    SLOTS = 64
    MASK = 63
    LEVELS = 4

    #: Wheels smaller than this are never swept (mirrors the heap floor).
    COMPACT_MIN = 64

    #: Queues at or below this size run in *sparse mode*: ``_active`` is
    #: the whole queue (a plain (time, priority, seq) heap) and pushes do
    #: no tick math at all.  Request/response chains — one or two pending
    #: events, alternating push/pop — therefore pay exactly what the heap
    #: kernel pays.  Crossing the threshold migrates into the buckets;
    #: draining completely drops back to sparse.  Mode is represented by
    #: the *class* (``_SparseWheelQueue`` vs ``_WheelQueue``), so neither
    #: mode's hot path carries a mode flag check.
    SPARSE_MAX = 12

    __slots__ = (
        "resolution",
        "_inv",
        "_cur",
        "_active",
        "_b0",
        "_b1",
        "_b2",
        "_b3",
        "_o0",
        "_o1",
        "_o2",
        "_o3",
        "_overflow",
        "_size",
        "compactions",
    )

    def __init__(self, resolution: float) -> None:
        if resolution <= 0:
            raise SimulationError(
                f"wheel resolution must be > 0, got {resolution!r}"
            )
        self.resolution = resolution
        self._inv = 1.0 / resolution
        #: Tick of the bucket currently being drained.  All events in the
        #: level buckets have tick > _cur; _active may also hold events
        #: scheduled at or before _cur (they sort first in the heap).
        self._cur = 0
        #: Heap of imminent events (the bucket under drain; the whole
        #: queue while sparse).
        self._active: list[ScheduledEvent] = []
        self._b0: list[list[ScheduledEvent]] = [[] for _ in range(64)]
        self._b1: list[list[ScheduledEvent]] = [[] for _ in range(64)]
        self._b2: list[list[ScheduledEvent]] = [[] for _ in range(64)]
        self._b3: list[list[ScheduledEvent]] = [[] for _ in range(64)]
        self._o0 = 0
        self._o1 = 0
        self._o2 = 0
        self._o3 = 0
        self._overflow: list[ScheduledEvent] = []
        #: Physical entry count, cancelled included (the sweep heuristic
        #: and tests compare it against the simulator's live counter).
        #: Only maintained in bucketed mode — while sparse, ``__len__``
        #: reads ``len(_active)`` and this field is rebuilt on migration.
        self._size = 0
        self.compactions = 0
        # a new queue is empty, hence sparse
        self.__class__ = _SparseWheelQueue

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def push(self, event: ScheduledEvent) -> None:
        self._size += 1
        tick = int(event.time * self._inv)
        if tick <= self._cur:
            heappush(self._active, event)
        else:
            self._insert(event, tick)

    def _migrate(self) -> None:
        """Leave sparse mode: bucket everything currently in ``_active``.

        The cursor jumps to the earliest live event's tick; events at that
        tick stay in the active heap (they may fire next), later ones are
        bucketed.  Placement is relative to the new cursor, so the
        bucketed-mode invariant — level buckets hold only ticks > ``_cur``
        — is established by construction and ordering is unchanged.
        """
        self.__class__ = _WheelQueue
        pending = self._active
        live = [e for e in pending if not e.cancelled]
        self._size = len(live)
        self._active = []
        if not live:
            return
        inv = self._inv
        self._cur = min(int(e.time * inv) for e in live)
        cur = self._cur
        active = self._active
        for event in live:
            tick = int(event.time * inv)
            if tick <= cur:
                active.append(event)
            else:
                self._insert(event, tick)
        if len(active) > 1:
            heapify(active)

    def _insert(self, event: ScheduledEvent, tick: int) -> None:
        """Bucket an event with ``tick > _cur`` (no size accounting)."""
        # The lowest level whose window contains the tick is the lowest
        # level at which tick and _cur share all higher-order bits —
        # i.e. the smallest l with (tick ^ _cur) < 64**(l+1).
        x = tick ^ self._cur
        if x < 64:
            slot = tick & 63
            self._b0[slot].append(event)
            self._o0 |= 1 << slot
        elif x < 4096:
            slot = (tick >> 6) & 63
            self._b1[slot].append(event)
            self._o1 |= 1 << slot
        elif x < 262144:
            slot = (tick >> 12) & 63
            self._b2[slot].append(event)
            self._o2 |= 1 << slot
        elif x < 16777216:
            slot = (tick >> 18) & 63
            self._b3[slot].append(event)
            self._o3 |= 1 << slot
        else:
            self._overflow.append(event)

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def peek(self) -> Optional[ScheduledEvent]:
        """Next live event in (time, priority, seq) order, or None.

        Skips cancelled events (physically dropping them) and advances
        the wheel cursor across empty buckets as needed; repeated peeks
        are stable and never disturb execution order.
        """
        active = self._active
        while True:
            while active:
                event = active[0]
                if not event.cancelled:
                    return event
                heappop(active)
                self._size -= 1
            if not self._advance():
                # fully drained: next growth starts from sparse mode again
                self.__class__ = _SparseWheelQueue
                return None
            active = self._active

    def pop_head(self) -> ScheduledEvent:
        """Remove and return the head.  Only valid right after a
        non-None :meth:`peek` (which guarantees a live head)."""
        self._size -= 1
        return heappop(self._active)

    def _advance(self) -> bool:
        """Move the cursor to the next non-empty bucket.

        Returns False when the wheel is completely empty.  Precondition:
        ``_active`` is empty (peek drains it first).
        """
        while True:
            if self._active:
                # a cascade just landed events at the new cursor tick
                return True
            m = self._o0
            if m:
                s = (m & -m).bit_length() - 1
                self._o0 = m & (m - 1)
                bucket = self._b0[s]
                self._b0[s] = []
                self._cur = (self._cur & ~63) | s
                if len(bucket) > 1:
                    heapify(bucket)
                self._active = bucket
                return True
            if not self._cascade():
                return False

    def _cascade(self) -> bool:
        """Re-bucket the earliest higher-level bucket (or the overflow)
        one level down.  Returns False when nothing remains anywhere."""
        m = self._o1
        if m:
            s = (m & -m).bit_length() - 1
            self._o1 = m & (m - 1)
            bucket = self._b1[s]
            self._b1[s] = []
            self._cur = ((self._cur >> 12) << 12) | (s << 6)
            self._replace(bucket)
            return True
        m = self._o2
        if m:
            s = (m & -m).bit_length() - 1
            self._o2 = m & (m - 1)
            bucket = self._b2[s]
            self._b2[s] = []
            self._cur = ((self._cur >> 18) << 18) | (s << 12)
            self._replace(bucket)
            return True
        m = self._o3
        if m:
            s = (m & -m).bit_length() - 1
            self._o3 = m & (m - 1)
            bucket = self._b3[s]
            self._b3[s] = []
            self._cur = ((self._cur >> 24) << 24) | (s << 18)
            self._replace(bucket)
            return True
        if self._overflow:
            pending = self._overflow
            self._overflow = []
            live = [e for e in pending if not e.cancelled]
            self._size -= len(pending) - len(live)
            if live:
                inv = self._inv
                min_tick = min(int(e.time * inv) for e in live)
                # Jump to the start of the earliest event's 64⁴-tick
                # block; events beyond it re-enter the overflow.
                self._cur = (min_tick >> 24) << 24
                self._replace(live)
            return True
        return False

    def _replace(self, events: list[ScheduledEvent]) -> None:
        """Re-bucket cascaded events against the updated cursor."""
        inv = self._inv
        cur = self._cur
        active = self._active
        for event in events:
            if event.cancelled:
                self._size -= 1
                continue
            tick = int(event.time * inv)
            if tick <= cur:
                heappush(active, event)
            else:
                self._insert(event, tick)

    # ------------------------------------------------------------------
    # cancellation pressure
    # ------------------------------------------------------------------
    def on_cancel(self, live: int) -> None:
        """Sweep dead events out of every bucket once they dominate.

        Individual cancels are O(1) marks; this sweep only exists so a
        workload that cancels far-future events en masse (and never
        reaches their buckets) cannot hold unbounded dead memory.  Same
        trigger policy as the heap kernel's compaction; rebucketing keeps
        (time, priority, seq) ordering intact.
        """
        size = self._size
        if size < self.COMPACT_MIN:
            return
        if (size - live) * 2 <= size:
            return
        active = [e for e in self._active if not e.cancelled]
        heapify(active)
        self._active = active
        count = len(active)
        for buckets, attr in (
            (self._b0, "_o0"),
            (self._b1, "_o1"),
            (self._b2, "_o2"),
            (self._b3, "_o3"),
        ):
            occ = 0
            for slot in range(64):
                bucket = buckets[slot]
                if not bucket:
                    continue
                kept = [e for e in bucket if not e.cancelled]
                buckets[slot] = kept
                if kept:
                    occ |= 1 << slot
                    count += len(kept)
            setattr(self, attr, occ)
        self._overflow = [e for e in self._overflow if not e.cancelled]
        count += len(self._overflow)
        self._size = count
        self.compactions += 1

    def __len__(self) -> int:
        return self._size


class _SparseWheelQueue(_WheelQueue):
    """The wheel's sparse mode, expressed as a type.

    While the queue holds at most :attr:`_WheelQueue.SPARSE_MAX` entries,
    ``_active`` is the entire queue and every operation is exactly the
    heap kernel's (no tick math, no occupancy masks, no size counter) —
    push pays one extra ``len`` compare to detect the migration
    threshold, and that is the whole sparse-mode overhead.  Crossing the
    threshold calls :meth:`_WheelQueue._migrate`, which buckets the
    backlog and flips ``__class__`` to the bucketed type; draining the
    bucketed wheel completely flips back here.  Swapping ``__class__``
    (both classes share the same slot layout) keeps mode dispatch out of
    the hot paths entirely.

    ``_size`` is NOT maintained in this mode: ``len(_active)`` is the
    physical count, and migration rebuilds the counter.
    """

    __slots__ = ()

    def push(self, event: ScheduledEvent) -> None:
        active = self._active
        if len(active) < self.SPARSE_MAX:
            heappush(active, event)
        else:
            self._migrate()
            _WheelQueue.push(self, event)

    def peek(self) -> Optional[ScheduledEvent]:
        active = self._active
        while active:
            event = active[0]
            if not event.cancelled:
                return event
            heappop(active)
        return None

    def pop_head(self) -> ScheduledEvent:
        return heappop(self._active)

    def on_cancel(self, live: int) -> None:
        # at most SPARSE_MAX entries exist; dead memory is bounded and
        # cancelled heads are dropped by peek, so there is nothing to sweep
        return

    def __len__(self) -> int:
        return len(self._active)


#: Default tick width of the wheel kernel, in virtual-time units.  The
#: benchmark and app workloads schedule mostly at latencies/computes of
#: O(1) time unit; at 1/16 of a unit, level 0 alone spans 4 units, so the
#: common case is a single bucket append with no cascading.  See
#: docs/PERFORMANCE.md §6 for the sizing discussion.
DEFAULT_WHEEL_RESOLUTION = 0.0625


class Simulator:
    """The event loop: a virtual clock plus a queue of scheduled callbacks.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "hello at t=1.5")
        sim.run()

    ``kernel`` selects the event-queue implementation: ``"wheel"`` (the
    default hierarchical timer wheel), ``"heap"`` (the classic binary
    heap, kept as a differential oracle), or ``"window"`` (a bisect-based
    sorted list) — all three produce byte-identical event orders.
    ``wheel_resolution`` sets the wheel's tick width in virtual-time
    units; it affects performance only, never ordering.

    Higher layers rarely call :meth:`schedule` directly; they use
    :class:`repro.sim.process.Task` coroutines and
    :class:`repro.sim.channel.Network` messaging, which are built on it.
    """

    def __init__(
        self,
        tie_breaker: Optional[Callable[[], int]] = None,
        kernel: str = "wheel",
        wheel_resolution: float = DEFAULT_WHEEL_RESOLUTION,
        controller: Optional[Any] = None,
    ) -> None:
        self._now: float = 0.0
        if kernel == "wheel":
            self._queue: Any = _WheelQueue(wheel_resolution)
        elif kernel == "heap":
            self._queue = _HeapQueue()
        elif kernel == "window":
            self._queue = _WindowQueue()
        else:
            raise SimulationError(
                f"unknown kernel {kernel!r} (choose 'heap', 'wheel', or 'window')"
            )
        self.kernel = kernel
        #: Count of not-yet-cancelled, not-yet-executed events.  Kept exact
        #: by schedule/cancel/pop so :attr:`pending_events` is O(1) instead
        #: of a queue scan (benchmarks poll it per-iteration).
        self._live = 0
        #: Next sequence number, as a readable integer (not an opaque
        #: counter object): the network's same-tick delivery coalescing
        #: checks "has anything been scheduled since event X?" by
        #: comparing this against ``X.seq + 1``.
        self._seq_next = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: optional per-event priority source; permutes same-time orderings
        #: (used by the schedule-exploring model checker)
        self._tie_breaker = tie_breaker
        #: optional :class:`ScheduleController`: at every pop the batch of
        #: live events sharing the earliest time is handed to
        #: ``controller.choose(time, events)``, which returns the index of
        #: the event to fire — the tie_breaker generalized from "seeded
        #: permutation" to externally directed choice (DPOR exploration).
        if controller is not None and tie_breaker is not None:
            raise SimulationError(
                "tie_breaker and controller are mutually exclusive — both "
                "decide same-time event order"
            )
        self._controller = controller

    @property
    def _heap(self) -> list[ScheduledEvent]:
        """The raw heap list — heap kernel only (tests and debugging)."""
        return self._queue._heap

    @property
    def heap_compactions(self) -> int:
        """Times the queue was swept to evict cancelled entries (heap
        rebuilds, or full wheel-bucket sweeps; the name predates the
        wheel kernel and is kept for stats compatibility)."""
        return self._queue.compactions

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for overhead accounting)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Returns the :class:`ScheduledEvent`, which the caller may
        :meth:`~ScheduledEvent.cancel`.  ``delay`` must be >= 0.
        """
        if delay < 0:
            raise ScheduleInPastError(f"cannot schedule {delay} time units in the past")
        priority = self._tie_breaker() if self._tie_breaker is not None else 0
        seq = self._seq_next
        self._seq_next = seq + 1
        event = ScheduledEvent(
            self._now + delay, seq, fn, args, label, priority, sim=self
        )
        self._queue.push(event)
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args, label=label)

    def call_soon(self, fn: Callable[..., None], *args: Any, label: str = "") -> ScheduledEvent:
        """Schedule ``fn(*args)`` at the current time, after pending same-time events."""
        return self.schedule(0.0, fn, *args, label=label)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue is empty, ``until`` is reached, or ``max_events``.

        Returns the final virtual time.  ``until`` is inclusive: events at
        exactly ``until`` fire.  A ``max_events`` bound turns a livelocked
        simulation into a diagnosable :class:`EventLimitExceeded` instead of
        a hang.
        """
        self._running = True
        self._stopped = False
        budget = max_events
        queue = self._queue
        controlled = self._controller is not None
        try:
            while not self._stopped:
                event = queue.peek()
                if event is None:
                    break
                if until is not None and event.time > until:
                    self._now = until
                    break
                if controlled:
                    event = self._pop_controlled()
                else:
                    queue.pop_head()
                self._live -= 1
                event.sim = None  # detach: a late cancel() must not re-decrement
                self._now = event.time
                self._events_processed += 1
                if budget is not None:
                    budget -= 1
                    if budget < 0:
                        raise EventLimitExceeded(
                            f"exceeded {max_events} events at t={self._now:.6g}; "
                            f"likely livelock (next: {event!r})"
                        )
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until and queue.peek() is None:
            self._now = until
        return self._now

    def _pop_controlled(self) -> ScheduledEvent:
        """Pop the next event under the schedule controller.

        Collects every live event sharing the earliest virtual time (in
        canonical ``(time, priority, seq)`` order — identical across all
        three kernels), asks the controller which one fires, and re-queues
        the rest.  The unchosen events go back *before* the chosen one
        executes, so a callback that cancels one of them finds it in the
        queue as usual.  The caller must have peeked a live head first.
        """
        queue = self._queue
        batch = [queue.pop_head()]
        time = batch[0].time
        while True:
            nxt = queue.peek()
            if nxt is None or nxt.time != time:
                break
            batch.append(queue.pop_head())
        # Singleton batches are forced, but the controller is still
        # consulted: exploration drivers track per-step footprints and
        # co-enabled sets, which must cover forced steps too.
        index = self._controller.choose(time, batch)
        if not 0 <= index < len(batch):
            raise SimulationError(
                f"controller chose index {index} out of a batch of "
                f"{len(batch)} events at t={time:.6g}"
            )
        chosen = batch.pop(index)
        for event in batch:
            queue.push(event)
        return chosen

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when idle."""
        queue = self._queue
        event = queue.peek()
        if event is None:
            return False
        if self._controller is not None:
            event = self._pop_controlled()
        else:
            queue.pop_head()
        self._live -= 1
        event.sim = None  # detach: a late cancel() must not re-decrement
        self._now = event.time
        self._events_processed += 1
        event.fn(*event.args)
        return True

    def stop(self) -> None:
        """Request the run loop to return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1):
        maintained by schedule/cancel/pop rather than scanning the queue."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if idle.

        Cancelled events are physically discarded as they are skipped, so
        cancel-then-peek sequences keep the queue's physical size in step
        with :attr:`pending_events` (no counter drift, whichever kernel)."""
        event = self._queue.peek()
        return event.time if event is not None else None
