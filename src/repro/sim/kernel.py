"""Discrete-event simulation kernel.

The kernel provides a virtual clock and an event heap.  Everything else in
the simulator (processes, channels, failures) is built from two operations:

* :meth:`Simulator.schedule` — run a callback at a later virtual time;
* :meth:`Simulator.run` — pop events in time order until exhaustion.

Virtual time is a float measured in abstract "time units".  The paper's
latency argument (30 ms coast-to-coast photons vs. 3 million instructions)
only depends on *ratios* of latency to compute, so units are deliberately
abstract; benchmarks pick ratios, not microseconds.

Determinism: events at the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a simulation with
a fixed RNG seed is fully reproducible.  This is what makes the HOPE
verification harness (``repro.verify``) able to replay schedules exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Base class for all simulator-level errors."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled at a negative delay."""


class EventLimitExceeded(SimulationError):
    """Raised when a run exceeds ``max_events`` — usually a livelock."""


class ScheduledEvent:
    """A pending callback in the event heap.

    Events are cancellable: :meth:`cancel` marks the event dead and the run
    loop discards it when popped.  This is how timeouts that lost a race and
    messages that were rolled back are retracted.

    ``priority`` breaks ties between events at the same virtual time:
    0 by default (scheduling order — FIFO), or a seeded random draw when
    the simulator was built with a tie-break stream, which is how the
    model checker explores alternative interleavings of genuinely
    concurrent events.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "label", "priority", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        label: str = "",
        priority: int = 0,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label
        self.priority = priority
        #: Owning simulator, so cancellation can keep its live-event count
        #: exact without a heap scan (None for standalone events).
        self.sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._live -= 1
            self.sim._maybe_compact()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6g} #{self.seq} {self.label or self.fn!r} {state}>"


class Simulator:
    """The event loop: a virtual clock plus a heap of scheduled callbacks.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "hello at t=1.5")
        sim.run()

    Higher layers rarely call :meth:`schedule` directly; they use
    :class:`repro.sim.process.Task` coroutines and
    :class:`repro.sim.channel.Network` messaging, which are built on it.
    """

    def __init__(self, tie_breaker: Optional[Callable[[], int]] = None) -> None:
        self._now: float = 0.0
        self._heap: list[ScheduledEvent] = []
        #: Count of not-yet-cancelled, not-yet-executed events.  Kept exact
        #: by schedule/cancel/pop so :attr:`pending_events` is O(1) instead
        #: of a heap scan (benchmarks poll it per-iteration).
        self._live = 0
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: Times the heap was rebuilt to evict cancelled entries (see
        #: :meth:`_maybe_compact`).
        self.heap_compactions = 0
        #: optional per-event priority source; permutes same-time orderings
        #: (used by the schedule-exploring model checker)
        self._tie_breaker = tie_breaker

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for overhead accounting)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Returns the :class:`ScheduledEvent`, which the caller may
        :meth:`~ScheduledEvent.cancel`.  ``delay`` must be >= 0.
        """
        if delay < 0:
            raise ScheduleInPastError(f"cannot schedule {delay} time units in the past")
        priority = self._tie_breaker() if self._tie_breaker is not None else 0
        event = ScheduledEvent(
            self._now + delay, next(self._seq), fn, args, label, priority, sim=self
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn, *args, label=label)

    def call_soon(self, fn: Callable[..., None], *args: Any, label: str = "") -> ScheduledEvent:
        """Schedule ``fn(*args)`` at the current time, after pending same-time events."""
        return self.schedule(0.0, fn, *args, label=label)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap is empty, ``until`` is reached, or ``max_events``.

        Returns the final virtual time.  ``until`` is inclusive: events at
        exactly ``until`` fire.  A ``max_events`` bound turns a livelocked
        simulation into a diagnosable :class:`EventLimitExceeded` instead of
        a hang.
        """
        self._running = True
        self._stopped = False
        budget = max_events
        try:
            while self._heap:
                if self._stopped:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._live -= 1
                event.sim = None  # detach: a late cancel() must not re-decrement
                self._now = event.time
                self._events_processed += 1
                if budget is not None:
                    budget -= 1
                    if budget < 0:
                        raise EventLimitExceeded(
                            f"exceeded {max_events} events at t={self._now:.6g}; "
                            f"likely livelock (next: {event!r})"
                        )
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and not self._heap and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.sim = None  # detach: a late cancel() must not re-decrement
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request the run loop to return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap.  O(1):
        maintained by schedule/cancel/pop rather than scanning the heap."""
        return self._live

    #: Heaps smaller than this are never compacted — rebuilding a tiny
    #: heap costs more than lazily popping its cancelled entries.
    _COMPACT_MIN = 64

    def _maybe_compact(self) -> None:
        """Evict cancelled events when they outnumber live ones.

        ``peek_time``/``run`` only discard cancelled events that reach the
        heap *head*; a cancel-heavy workload (rollback retracting batches
        of in-flight sends and timeouts) can leave the heap dominated by
        dead entries buried mid-heap, making every push/pop O(log total)
        instead of O(log live).  Rebuilding keeps (time, priority, seq)
        ordering intact, so determinism is unaffected.
        """
        heap = self._heap
        if len(heap) < self._COMPACT_MIN:
            return
        if (len(heap) - self._live) * 2 <= len(heap):
            return
        self._heap = [e for e in heap if not e.cancelled]
        heapq.heapify(self._heap)
        self.heap_compactions += 1

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if idle.

        Lazily pops cancelled events off the heap head (amortized
        O(log n) per cancellation) instead of sorting the whole heap.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
