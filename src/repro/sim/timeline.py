"""Per-process busy/idle accounting.

The paper's argument for optimism is entirely about *idle time*: a 100 MIPS
CPU wastes 3 million instructions waiting on a coast-to-coast RPC.  The
timeline records, for each process, spans of busy (computing), blocked
(waiting on a message), and wasted (rolled-back) virtual time, so the
benchmarks can report utilization and wasted-work fractions alongside raw
completion times.
"""

from __future__ import annotations

from typing import Optional


class Span:
    """A half-open span ``[start, end)`` of one kind of activity."""

    __slots__ = ("kind", "start", "end")

    BUSY = "busy"
    BLOCKED = "blocked"
    WASTED = "wasted"

    def __init__(self, kind: str, start: float, end: Optional[float] = None) -> None:
        self.kind = kind
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        end = f"{self.end:.4f}" if self.end is not None else "…"
        return f"<Span {self.kind} [{self.start:.4f}, {end})>"


class ProcessTimeline:
    """Spans for one process, built by ``mark_*`` calls as the run proceeds."""

    __slots__ = ("name", "spans", "_open", "_base")

    def __init__(self, name: str) -> None:
        self.name = name
        self.spans: list[Span] = []
        self._open: Optional[Span] = None
        #: Durations folded out of :attr:`spans` by :meth:`compact_before`,
        #: keyed by span kind.  ``total`` adds these back in.
        self._base: dict[str, float] = {}

    def compact_before(self, cutoff: float) -> int:
        """Fold spans that end at or before ``cutoff`` into base totals.

        Only sound for ``cutoff`` values no later than any future
        ``reclassify_since`` start time — i.e. the commit frontier:
        rollback can only reclassify work done since a still-speculative
        guess, and the frontier is at or before every such guess.
        Returns the number of spans dropped.
        """
        dropped = 0
        kept: list[Span] = []
        for span in self.spans:
            if span.end is not None and span.end <= cutoff:
                self._base[span.kind] = self._base.get(span.kind, 0.0) + span.duration
                dropped += 1
            else:
                kept.append(span)
        if dropped:
            self.spans = kept
        return dropped

    def mark(self, kind: str, now: float) -> None:
        """Close the open span at ``now`` and open a new one of ``kind``."""
        if self._open is not None:
            if self._open.kind == kind:
                return
            self._open.end = now
        self._open = Span(kind, now)
        self.spans.append(self._open)

    def close(self, now: float) -> None:
        if self._open is not None:
            self._open.end = now
            self._open = None

    def reclassify_since(self, start_time: float, kind: str, now: float) -> float:
        """Re-label all activity in ``[start_time, now)`` as ``kind``.

        Rollback calls this with ``kind=WASTED``: everything the process did
        since the guess point was thrown away.  Returns the *newly*
        re-labelled duration — spans already of ``kind`` (a deeper rollback
        sweeping over an earlier rollback's window) count zero, so the
        per-call returns sum exactly to ``aggregate(kind)``.
        """
        self.close(now)
        wasted = 0.0
        kept: list[Span] = []
        for span in self.spans:
            end = span.end if span.end is not None else now
            if end <= start_time:
                kept.append(span)
            elif span.start >= start_time:
                if span.kind != kind:
                    wasted += end - span.start
                kept.append(Span(kind, span.start, end))
            else:
                # straddles the boundary: split
                kept.append(Span(span.kind, span.start, start_time))
                if span.kind != kind:
                    wasted += end - start_time
                kept.append(Span(kind, start_time, end))
        self.spans = kept
        self._open = None
        return wasted

    def base_totals(self) -> dict[str, float]:
        """Durations folded out of :attr:`spans` by :meth:`compact_before`.

        Returns a copy, keyed by span kind.  Renderers use this to keep a
        process visible after all of its spans were compacted away.
        """
        return dict(self._base)

    def total(self, kind: str, now: Optional[float] = None) -> float:
        """Total duration of spans of ``kind`` (open span measured to ``now``)."""
        out = self._base.get(kind, 0.0)
        for span in self.spans:
            if span.kind != kind:
                continue
            if span.end is not None:
                out += span.end - span.start
            elif now is not None:
                out += now - span.start
        return out


class Timeline:
    """Timelines for all processes in a run, plus aggregate statistics."""

    def __init__(self) -> None:
        self._processes: dict[str, ProcessTimeline] = {}

    def process(self, name: str) -> ProcessTimeline:
        tl = self._processes.get(name)
        if tl is None:
            tl = ProcessTimeline(name)
            self._processes[name] = tl
        return tl

    def close_all(self, now: float) -> None:
        for tl in self._processes.values():
            tl.close(now)

    def compact_before(self, cutoff: float) -> int:
        """Fold committed spans into base totals across all processes."""
        return sum(tl.compact_before(cutoff) for tl in self._processes.values())

    def totals(self, kind: str) -> dict[str, float]:
        return {name: tl.total(kind) for name, tl in self._processes.items()}

    def aggregate(self, kind: str) -> float:
        return sum(tl.total(kind) for tl in self._processes.values())

    def utilization(self, name: str, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the process spent busy."""
        if horizon <= 0:
            return 0.0
        return self.process(name).total(Span.BUSY) / horizon

    def names(self) -> list[str]:
        return sorted(self._processes)
