"""Network latency models.

The paper's motivating numbers (a 30 ms coast-to-coast round trip against a
100 MIPS CPU) reduce to a single knob: the ratio of message latency to local
compute.  A :class:`LatencyModel` maps each send to a delivery delay in
virtual time units.  Models are deterministic given their RNG stream, so a
seeded simulation replays identically.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Protocol

from .kernel import SimulationError
from .random import RandomStream


class LatencyModel(Protocol):
    """Anything with ``sample(src, dst) -> float`` works as a latency model."""

    def sample(self, src: str, dst: str) -> float:  # pragma: no cover - protocol
        ...


class ConstantLatency:
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self, src: str, dst: str) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value!r})"


class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float, stream: RandomStream) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self._stream = stream

    def sample(self, src: str, dst: str) -> float:
        return self._stream.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class ExponentialLatency:
    """Exponential latency with the given ``mean``, floored at ``minimum``.

    The floor models the propagation delay under queueing jitter.
    """

    def __init__(self, mean: float, stream: RandomStream, minimum: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if minimum < 0:
            raise ValueError(f"minimum must be >= 0, got {minimum}")
        self.mean = mean
        self.minimum = minimum
        self._stream = stream

    def sample(self, src: str, dst: str) -> float:
        draw = -self.mean * math.log(1.0 - self._stream.random())
        return self.minimum + draw

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean!r}, min={self.minimum!r})"


class SequenceLatency:
    """Latencies taken from a fixed sequence.

    Handy in tests that need to force a specific message race (e.g. the
    Figure 2 scenario where S3's message overtakes S1's).  By default the
    sequence cycles when exhausted; with ``cycle=False`` exhaustion raises
    a :class:`~repro.sim.kernel.SimulationError` naming the link that
    drew one sample too many — for scripted scenarios where an extra
    message means the script itself is wrong.
    """

    def __init__(self, values: Iterable[float], cycle: bool = True) -> None:
        self._values = [float(v) for v in values]
        if not self._values:
            raise ValueError("SequenceLatency needs at least one value")
        if any(v < 0 for v in self._values):
            raise ValueError("latencies must be >= 0")
        self._cycle = cycle
        self._position = 0

    def sample(self, src: str, dst: str) -> float:
        if self._position >= len(self._values) and not self._cycle:
            raise SimulationError(
                f"SequenceLatency exhausted its {len(self._values)} value(s) "
                f"on link {src!r}->{dst!r} (pass cycle=True to wrap around)"
            )
        value = self._values[self._position % len(self._values)]
        self._position += 1
        return value

    def __repr__(self) -> str:
        suffix = "" if self._cycle else ", cycle=False"
        return f"SequenceLatency({self._values!r}{suffix})"


class LinkLatency:
    """Per-link latency: a dict of ``(src, dst) -> model`` with a default.

    Models an asymmetric network (e.g. a fast LAN between Worker and
    WorryWart but a slow WAN to the print server).
    """

    def __init__(
        self,
        links: Optional[dict[tuple[str, str], LatencyModel]] = None,
        default: Optional[LatencyModel] = None,
    ) -> None:
        self._links = dict(links or {})
        self._default = default if default is not None else ConstantLatency(0.0)

    def set_link(self, src: str, dst: str, model: LatencyModel) -> None:
        self._links[(src, dst)] = model

    def sample(self, src: str, dst: str) -> float:
        model = self._links.get((src, dst), self._default)
        return model.sample(src, dst)

    def __repr__(self) -> str:
        return f"LinkLatency({len(self._links)} links, default={self._default!r})"
