"""Failure injection: crash processes at chosen or random times.

Used by the optimistic-recovery application (:mod:`repro.apps.recovery`) —
the original domain of optimism per Strom & Yemini [24] — and by
fault-injection tests that check the HOPE runtime keeps global consistency
when speculative processes die.
"""

from __future__ import annotations

from typing import Callable, Optional

from .kernel import ScheduledEvent, SimulationError, Simulator
from .random import RandomStream


class CrashRecord:
    """One injected crash: who, when, and whether a restart was requested.

    ``restart_requested`` records the caller's intent (``restart_after``
    was passed); ``restarted`` records whether a restart was actually
    scheduled.  They can only differ if the restart hook disappears
    between scheduling and firing — :meth:`FailureInjector.crash_at`
    rejects a restart request with no hook attached up front.
    """

    __slots__ = ("process", "time", "restarted", "restart_requested")

    def __init__(
        self,
        process: str,
        time: float,
        restarted: bool,
        restart_requested: bool = False,
    ) -> None:
        self.process = process
        self.time = time
        self.restarted = restarted
        self.restart_requested = restart_requested

    def __repr__(self) -> str:
        if self.restarted:
            suffix = " restarted"
        elif self.restart_requested:
            suffix = " restart-requested"
        else:
            suffix = ""
        return f"<Crash {self.process!r} t={self.time:.4f}{suffix}>"


class FailureInjector:
    """Schedules crashes against a kill function supplied by the runtime.

    The injector is runtime-agnostic: callers register a ``kill_fn`` that
    maps a process name to the act of crashing it (killing its task,
    dropping its volatile state).  An optional ``restart_fn`` models
    recovery from stable storage.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.crashes: list[CrashRecord] = []
        self._kill_fn: Optional[Callable[[str], None]] = None
        self._restart_fn: Optional[Callable[[str], None]] = None
        self._pending: list[ScheduledEvent] = []

    def attach(
        self,
        kill_fn: Callable[[str], None],
        restart_fn: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Wire the injector to a runtime's crash/restart operations."""
        self._kill_fn = kill_fn
        self._restart_fn = restart_fn

    def crash_at(self, process: str, time: float, restart_after: Optional[float] = None) -> None:
        """Crash ``process`` at absolute virtual ``time``.

        If ``restart_after`` is given, the process restarts that many time
        units after the crash.  That requires a ``restart_fn``: asking for
        a restart with none attached raises immediately, rather than
        silently producing a run where the process stays dead.
        """
        if restart_after is not None and self._restart_fn is None:
            raise SimulationError(
                f"crash_at({process!r}, restart_after={restart_after}) needs a "
                "restart_fn: call attach(kill_fn, restart_fn=...) first"
            )
        self._pending.append(
            self.sim.schedule_at(
                time, self._do_crash, process, restart_after, label=f"crash:{process}"
            )
        )

    def crash_randomly(
        self,
        process: str,
        rate: float,
        stream: RandomStream,
        horizon: float,
        restart_after: Optional[float] = None,
    ) -> int:
        """Schedule Poisson crashes for ``process`` up to virtual ``horizon``.

        Returns how many crashes were scheduled.
        """
        if rate <= 0:
            return 0
        scheduled = 0
        t = self.sim.now + stream.expovariate(rate)
        while t < horizon:
            self.crash_at(process, t, restart_after)
            scheduled += 1
            t += stream.expovariate(rate)
        return scheduled

    def cancel_all(self) -> None:
        for event in self._pending:
            event.cancel()
        self._pending.clear()

    def _do_crash(self, process: str, restart_after: Optional[float]) -> None:
        if self._kill_fn is None:
            raise RuntimeError("FailureInjector.attach() was never called")
        self._kill_fn(process)
        will_restart = restart_after is not None and self._restart_fn is not None
        self.crashes.append(
            CrashRecord(
                process,
                self.sim.now,
                will_restart,
                restart_requested=restart_after is not None,
            )
        )
        if will_restart:
            assert restart_after is not None
            self.sim.schedule(
                restart_after, self._restart_fn, process, label=f"restart:{process}"
            )

    def crash_count(self, process: Optional[str] = None) -> int:
        if process is None:
            return len(self.crashes)
        return sum(1 for c in self.crashes if c.process == process)
