"""Structured tracing of simulation runs.

Every interesting action (send, receive, guess, rollback, ...) is recorded
as a :class:`TraceRecord`.  Traces serve three purposes:

* debugging — ``tracer.format()`` is a readable timeline;
* determinism tests — two runs with the same seed must produce identical
  traces (``tracer.fingerprint()``);
* verification — the model checker in :mod:`repro.verify` replays traces
  against the abstract machine oracle.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Optional


class TraceRecord:
    """One timestamped event: ``(time, category, process, detail)``."""

    __slots__ = ("time", "category", "process", "detail")

    def __init__(self, time: float, category: str, process: str, detail: dict) -> None:
        self.time = time
        self.category = category
        self.process = process
        self.detail = detail

    def as_tuple(self) -> tuple:
        return (self.time, self.category, self.process, tuple(sorted(self.detail.items())))

    def __repr__(self) -> str:
        fields = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.4f}] {self.category:<12} {self.process:<14} {fields}"


class Tracer:
    """Collects :class:`TraceRecord` objects; optionally filtered and bounded.

    ``categories`` restricts recording to the given set (None = record
    all).  ``max_records`` bounds memory on long benchmark runs — when the
    bound trips, the oldest records are dropped and ``truncated`` is set.
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self._categories = frozenset(categories) if categories is not None else None
        #: categories=() means "record nothing": every record() call is
        #: pure overhead.  The engine reads this to skip its hot-path
        #: record calls entirely, and record() itself returns immediately
        #: when it *is* called (no counting, no listener fan-out).
        self._disabled = self._categories is not None and not self._categories
        self._max_records = max_records
        self.records: list[TraceRecord] = []
        self.truncated = False
        self.counts: dict[str, int] = {}
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def record(self, time: float, category: str, process: str, **detail: Any) -> None:
        """Append one record (subject to category filter and size bound).

        Ordering contract: listeners are notified for every *recorded*
        record **before** the ``max_records`` truncation drops the oldest
        ones — a subscriber is a streaming consumer (the fossil benchmark
        digests the full trace through a ``max_records=1`` tracer), so it
        must see records the bound will immediately discard.  A disabled
        tracer (``categories=()``, i.e. :class:`NullTracer`) records
        nothing, counts nothing, and notifies nobody: ``record()`` is a
        pure no-op, matching the engine's skip-wholesale fast path.
        """
        if self._disabled:
            return
        self.counts[category] = self.counts.get(category, 0) + 1
        if self._categories is not None and category not in self._categories:
            return
        rec = TraceRecord(time, category, process, detail)
        self.records.append(rec)
        # Listeners first, truncation second (see the ordering contract
        # above): the streamed view is complete, the retained view bounded.
        for listener in self._listeners:
            listener(rec)
        if self._max_records is not None and len(self.records) > self._max_records:
            del self.records[0 : len(self.records) - self._max_records]
            self.truncated = True

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` on every record as it is added.

        Refused on a disabled tracer: its ``record()`` never fans out, so
        a subscription there is a silent black hole (historically it
        *looked* like it would stream).
        """
        if self._disabled:
            raise ValueError(
                "cannot subscribe to a disabled tracer (categories=()); "
                "its record() is a no-op and would never notify"
            )
        self._listeners.append(listener)

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def by_process(self, process: str) -> list[TraceRecord]:
        return [r for r in self.records if r.process == process]

    def count(self, category: str) -> int:
        """Total occurrences of ``category``, including filtered-out ones."""
        return self.counts.get(category, 0)

    def fingerprint(self, allow_truncated: bool = False) -> str:
        """Stable hash of the whole trace; equal traces ⇒ equal fingerprints.

        A truncated trace no longer *is* the whole trace: hashing the
        surviving suffix silently compares windows whose start points
        depend on when the bound tripped.  That is how determinism checks
        go green on garbage, so by default this raises once ``truncated``
        is set.  Pass ``allow_truncated=True`` to hash the retained
        suffix anyway (only meaningful when both sides share the same
        ``max_records``).
        """
        if self.truncated and not allow_truncated:
            raise ValueError(
                "trace was truncated by max_records; fingerprint() would "
                "hash an arbitrary suffix — stream via subscribe() or pass "
                "allow_truncated=True"
            )
        h = hashlib.sha256()
        for rec in self.records:
            h.update(repr(rec.as_tuple()).encode("utf-8"))
        return h.hexdigest()

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (last ``limit`` records)."""
        records = self.records if limit is None else self.records[-limit:]
        return "\n".join(repr(r) for r in records)

    def clear(self) -> None:
        self.records.clear()
        self.counts.clear()
        self.truncated = False

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer whose ``record()`` is a pure no-op — for benchmarks.

    Records nothing, counts nothing: the whole point is that the traced
    and untraced hot paths differ only by one early-return, so overhead
    benchmarks measure the runtime, not the tracer.
    """

    def __init__(self) -> None:
        super().__init__(categories=())
