"""Simulated processes: generator coroutines driven by a trampoline.

A *task* is a Python generator that ``yield``\\ s :class:`Effect` objects;
the trampoline performs each effect against the simulator and resumes the
generator with the effect's result.  This is the classic effects-as-data
pattern: because the process never touches the event loop directly, an
outer layer (the HOPE runtime) can interpose on every effect — which is
exactly how replay-based rollback is implemented in
:mod:`repro.runtime.replay`.

Example::

    def ping(env: TaskEnv):
        yield Timeout(1.0)
        print("at t=1", env.now)

    sim = Simulator()
    Task(sim, "ping", ping).start()
    sim.run()
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from .kernel import ScheduledEvent, SimulationError, Simulator


class Effect:
    """Base class for everything a task may ``yield``."""

    __slots__ = ()


class Timeout(Effect):
    """Suspend the task for ``delay`` virtual time units.

    Tasks use this both for modelled *compute* (the paper's local work
    between RPCs) and for modelled *waiting*.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Recv(Effect):
    """Block until a message is available in ``mailbox``.

    Resumes with the message, or with :data:`TIMED_OUT` if ``timeout``
    elapses first.  ``predicate`` restricts receipt to matching messages
    (used for RPC reply matching); non-matching messages stay queued.
    """

    __slots__ = ("mailbox", "timeout", "predicate")

    def __init__(
        self,
        mailbox: Any,
        timeout: Optional[float] = None,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.mailbox = mailbox
        self.timeout = timeout
        self.predicate = predicate

    def __repr__(self) -> str:
        return f"Recv({self.mailbox!r}, timeout={self.timeout!r})"


class GetTime(Effect):
    """Resume immediately with the current virtual time."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "GetTime()"


class Fork(Effect):
    """Spawn a child task; resumes with the new :class:`Task`."""

    __slots__ = ("name", "fn", "args")

    def __init__(self, name: str, fn: Callable[..., Generator], *args: Any) -> None:
        self.name = name
        self.fn = fn
        self.args = args

    def __repr__(self) -> str:
        return f"Fork({self.name!r})"


class Halt(Effect):
    """Terminate the task immediately (like returning from the generator)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Halt()"


class _TimedOut:
    """Singleton sentinel returned by a :class:`Recv` whose timeout fired."""

    _instance: Optional["_TimedOut"] = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMED_OUT"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Pickle resolves the string to this module's attribute, so a
        # round-tripped sentinel (e.g. a durable log entry) keeps its
        # ``is TIMED_OUT`` identity instead of minting a second instance.
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()


class TaskKilled(Exception):
    """Thrown into a generator when its task is killed (crash or rollback)."""


class UnknownEffectError(SimulationError):
    """The effect handler does not know how to perform a yielded effect."""


class TaskEnv:
    """The view of the world handed to a task function.

    Carries the task's identity, the simulator clock, and an arbitrary
    ``context`` slot that higher layers (the HOPE runtime, the baselines)
    use to expose their own API to the process body.
    """

    __slots__ = ("task", "context")

    def __init__(self, task: "Task", context: Any = None) -> None:
        self.task = task
        self.context = context

    @property
    def now(self) -> float:
        return self.task.sim.now

    @property
    def name(self) -> str:
        return self.task.name


class Task:
    """A generator coroutine scheduled on a :class:`Simulator`.

    ``handler(task, effect)`` performs one yielded effect and must arrange
    for ``task.resume(value)`` (or ``task.throw(exc)``) to be called
    exactly once.  When ``handler`` is None the default sim-level handler
    is used.  The HOPE runtime passes its own handler to interpose logging
    and tagging on every effect.
    """

    __slots__ = (
        "sim", "name", "fn", "args", "env", "handler", "on_exit", "result",
        "error", "_gen", "_state", "_pending", "_cleanups", "_has_inline",
        "_inline_value", "_resume_label", "_throw_label",
    )

    _FRESH = "fresh"
    _RUNNING = "running"
    _WAITING = "waiting"
    _DONE = "done"
    _KILLED = "killed"
    _FAILED = "failed"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fn: Callable[..., Generator],
        *args: Any,
        handler: Optional[Callable[["Task", Effect], None]] = None,
        on_exit: Optional[Callable[["Task"], None]] = None,
        context: Any = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.fn = fn
        self.args = args
        self.env = TaskEnv(self, context)
        self.handler = handler or default_effect_handler
        self.on_exit = on_exit
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._gen: Optional[Generator] = None
        self._state = Task._FRESH
        self._pending: Optional[ScheduledEvent] = None
        self._cleanups: list[Callable[[], None]] = []
        self._has_inline = False
        self._inline_value: Any = None
        #: Debug labels for the per-resume events, formatted once — an
        #: f-string per resume/throw was measurable on the resume path.
        self._resume_label = "resume:" + name
        self._throw_label = "throw:" + name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, delay: float = 0.0) -> "Task":
        """Schedule the first step of the task ``delay`` from now."""
        if self._state != Task._FRESH:
            raise SimulationError(f"task {self.name!r} already started")
        self._gen = self.fn(self.env, *self.args)
        self._state = Task._WAITING
        self._pending = self.sim.schedule(delay, self._step, None, False, label=f"start:{self.name}")
        return self

    def start_adopted(
        self,
        gen: Generator,
        delay: float,
        kickoff: Callable[["Task"], None],
    ) -> "Task":
        """Start from an already-advanced generator instead of a fresh one.

        Used to promote a replay shadow (see
        :class:`repro.runtime.replay.ShadowCheckpoint`): ``gen`` is
        suspended at a yield whose effect the caller already holds, so no
        first ``send(None)`` happens — ``kickoff(task)`` runs after
        ``delay`` and must dispatch that held effect (after which the
        task behaves exactly like one that replayed its way here).
        """
        if self._state != Task._FRESH:
            raise SimulationError(f"task {self.name!r} already started")
        self._gen = gen
        self._state = Task._WAITING
        self._pending = self.sim.schedule(
            delay, self._run_kickoff, kickoff, label=f"adopt:{self.name}"
        )
        return self

    def _run_kickoff(self, kickoff: Callable[["Task"], None]) -> None:
        self._pending = None
        kickoff(self)

    @property
    def state(self) -> str:
        return self._state

    @property
    def alive(self) -> bool:
        return self._state in (Task._FRESH, Task._RUNNING, Task._WAITING)

    @property
    def done(self) -> bool:
        return self._state == Task._DONE

    @property
    def failed(self) -> bool:
        return self._state == Task._FAILED

    def resume(self, value: Any = None) -> None:
        """Resume the generator with ``value`` as the result of its yield.

        Scheduled at the current time rather than run inline, so effect
        handlers never re-enter the generator from within its own yield.
        """
        self._expect_waiting("resume")
        self._pending = self.sim.call_soon(self._step, value, False, label=self._resume_label)

    def throw(self, exc: BaseException) -> None:
        """Resume the generator by raising ``exc`` at its yield point."""
        self._expect_waiting("throw")
        self._pending = self.sim.call_soon(self._step, exc, True, label=self._throw_label)

    def resume_inline(self, value: Any = None) -> None:
        """Resume immediately, from within this task's own pending callback.

        For effect handlers that scheduled their completion via
        ``sim.schedule(..., cb)`` and registered that event as the task's
        pending resume: the callback calls ``resume_inline`` instead of
        :meth:`resume` (which would see a stale pending event and refuse).
        """
        self._pending = None
        # _step inlined: this runs once per batched delivery.
        effect = self._drive(value, False)
        if effect is not None:
            self.dispatch(effect)

    def resume_now(self, value: Any = None) -> None:
        """Complete the current effect synchronously, from *inside* its
        handler call: the :meth:`_step` trampoline continues the generator
        in the same stack frame instead of scheduling a zero-delay event.

        This is for effects whose result is available immediately (a send
        returning its message id, a clock read, ...) — the per-effect
        simulator event was pure heap churn.  Only valid while the
        handler invoked by ``_step`` is on the stack; handlers whose
        completion arrives later (timeouts, message delivery) must keep
        using :meth:`resume`.
        """
        # Inlined _expect_waiting (this runs once per synchronous effect;
        # the extra frame was measurable): the slow path only re-runs the
        # checks to raise the standard error.
        if self._state != Task._WAITING or self._pending is not None:
            self._expect_waiting("resume_now")
        self._has_inline = True
        self._inline_value = value

    def kill(self, reason: str = "") -> None:
        """Terminate the task: cancel pending resumes and close the generator.

        Used for crash injection and for discarding a rolled-back
        incarnation of a HOPE process.  Registered cleanups run (e.g. the
        task is removed from mailbox wait lists).
        """
        if not self.alive:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._run_cleanups()
        self._state = Task._KILLED
        if self._gen is not None:
            try:
                self._gen.throw(TaskKilled(reason or f"task {self.name!r} killed"))
            except (TaskKilled, StopIteration):
                pass
            except Exception:
                # A task that swallows TaskKilled and raises during unwind
                # is already dead; its cleanup error must not cascade.
                pass
            finally:
                self._gen.close()
        if self.on_exit is not None:
            self.on_exit(self)

    def add_cleanup(self, fn: Callable[[], None]) -> None:
        """Register a callback to run when the task is killed while waiting."""
        self._cleanups.append(fn)

    def clear_cleanups(self) -> None:
        self._cleanups.clear()

    # ------------------------------------------------------------------
    # trampoline
    # ------------------------------------------------------------------
    def _step(self, value: Any, is_throw: bool) -> None:
        effect = self._drive(value, is_throw)
        if effect is not None:
            self.dispatch(effect)

    def dispatch(self, effect: Effect) -> None:
        """Hand an effect to the handler, running the resume_now trampoline.

        When the handler completes the effect synchronously via
        :meth:`resume_now`, the generator is driven again in this same
        frame — unbounded same-time effect chains (e.g. a loop of sends)
        stay flat instead of recursing or burning one simulator event
        each.
        """
        handler = self.handler  # loop-invariant for the life of the task
        while True:
            handler(self, effect)
            if not self._has_inline:
                return
            self._has_inline = False
            value, self._inline_value = self._inline_value, None
            if self._state != Task._WAITING:
                return  # killed/finished from within the handler
            effect = self._drive(value, False)
            if effect is None:
                return

    def drive(self, value: Any = None) -> Optional[Effect]:
        """Advance the generator one step synchronously and return the
        yielded effect — ``None`` if the task finished — without
        dispatching it to the handler.

        This is the replay fast path: the HOPE engine feeds a restarted
        incarnation its logged effect results in a tight loop, one
        ``drive`` per entry, instead of scheduling a simulator event per
        resume.  Only valid while the task is waiting at a yield.
        """
        if self._state != Task._WAITING:
            raise SimulationError(
                f"cannot drive task {self.name!r} in state {self._state!r}"
            )
        return self._drive(value, False)

    def _drive(self, value: Any, is_throw: bool) -> Optional[Effect]:
        self._pending = None
        if self._cleanups:
            self._run_cleanups()
        self._state = Task._RUNNING
        try:
            if is_throw:
                effect = self._gen.throw(value)
            else:
                effect = self._gen.send(value)
        except StopIteration as stop:
            self._state = Task._DONE
            self.result = stop.value
            if self.on_exit is not None:
                self.on_exit(self)
            return None
        except TaskKilled:
            self._state = Task._KILLED
            if self.on_exit is not None:
                self.on_exit(self)
            return None
        except Exception as exc:
            self._state = Task._FAILED
            self.error = exc
            if self.on_exit is not None:
                self.on_exit(self)
            raise
        self._state = Task._WAITING
        return effect

    def _run_cleanups(self) -> None:
        cleanups, self._cleanups = self._cleanups, []
        for fn in cleanups:
            fn()

    def _expect_waiting(self, op: str) -> None:
        if self._state != Task._WAITING:
            raise SimulationError(f"cannot {op} task {self.name!r} in state {self._state!r}")
        if self._pending is not None:
            raise SimulationError(f"task {self.name!r} already has a pending resume")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name!r} {self._state}>"


def default_effect_handler(task: Task, effect: Effect) -> None:
    """Perform one sim-level effect.  See module docstring for the contract."""
    if isinstance(effect, Timeout):
        task._pending = task.sim.schedule(
            effect.delay, task._step, None, False, label=f"timeout:{task.name}"
        )
    elif isinstance(effect, Recv):
        effect.mailbox.register_receiver(task, effect.timeout, effect.predicate)
    elif isinstance(effect, GetTime):
        task.resume(task.sim.now)
    elif isinstance(effect, Fork):
        child = Task(task.sim, effect.name, effect.fn, *effect.args, handler=task.handler)
        child.start()
        task.resume(child)
    elif isinstance(effect, Halt):
        task._state = Task._DONE
        if task._gen is not None:
            task._gen.close()
        if task.on_exit is not None:
            task.on_exit(task)
    else:
        raise UnknownEffectError(f"task {task.name!r} yielded unknown effect {effect!r}")
