"""ASCII rendering of execution timelines.

Turns a :class:`repro.sim.Timeline` into a Gantt-style text chart — the
quickest way to *see* what optimism did: busy work (`#`), blocking (`.`),
and speculative work that was rolled back (`x`)::

    worker   |###xxxxxxx###....|
    verifier |...####..........|
             0                17.0

Used by examples and by humans debugging rollback storms; the benchmark
suite prefers numbers.
"""

from __future__ import annotations

from typing import Optional

from .timeline import Span, Timeline

#: span kind -> glyph
GLYPHS = {Span.BUSY: "#", Span.BLOCKED: ".", Span.WASTED: "x"}
IDLE = " "


def render_timeline(
    timeline: Timeline,
    horizon: Optional[float] = None,
    width: int = 64,
    processes: Optional[list] = None,
) -> str:
    """Render one row per process over ``[0, horizon]``.

    ``horizon`` defaults to the latest span end; ``width`` is the number
    of character cells the horizon maps onto.  When several span kinds
    fall into one cell, the most "interesting" wins (wasted > busy >
    blocked > idle).
    """
    names = processes if processes is not None else timeline.names()
    if horizon is None:
        horizon = 0.0
        for name in names:
            for span in timeline.process(name).spans:
                if span.end is not None:
                    horizon = max(horizon, span.end)
    if horizon <= 0:
        horizon = 1.0
    priority = {IDLE: 0, GLYPHS[Span.BLOCKED]: 1, GLYPHS[Span.BUSY]: 2, GLYPHS[Span.WASTED]: 3}
    label_width = max((len(n) for n in names), default=0)
    lines = []
    for name in names:
        cells = [IDLE] * width
        tl = timeline.process(name)
        for span in tl.spans:
            end = span.end if span.end is not None else horizon
            # A span starting exactly at the horizon would map to
            # start_cell == width and fall off the chart; clamp so
            # boundary spans occupy the final cell.
            start_cell = min(int(span.start / horizon * width), width - 1)
            end_cell = max(start_cell + 1, int(end / horizon * width))
            glyph = GLYPHS.get(span.kind, "?")
            for cell in range(start_cell, min(end_cell, width)):
                if priority[glyph] > priority[cells[cell]]:
                    cells[cell] = glyph
        row = f"{name.ljust(label_width)} |{''.join(cells)}|"
        base = tl.base_totals()
        if base and not tl.spans:
            # All of this process's spans were folded into base totals by
            # compact_before(); without the annotation the row reads as
            # "did nothing", disagreeing with Timeline.names()/totals().
            folded = " ".join(
                f"{kind}={base[kind]:g}" for kind in sorted(base) if base[kind]
            )
            row += f" (compacted: {folded})"
        lines.append(row)
    footer = f"{' ' * label_width} 0{' ' * (width - len(f'{horizon:g}'))}{horizon:g}"
    lines.append(footer)
    legend = (
        f"{' ' * label_width} {GLYPHS[Span.BUSY]}=busy "
        f"{GLYPHS[Span.BLOCKED]}=blocked {GLYPHS[Span.WASTED]}=rolled-back"
    )
    lines.append(legend)
    return "\n".join(lines)


def render_utilization(timeline: Timeline, horizon: float) -> str:
    """One summary line per process: busy/blocked/wasted percentages."""
    lines = []
    label_width = max((len(n) for n in timeline.names()), default=0)
    for name in timeline.names():
        tl = timeline.process(name)
        busy = tl.total(Span.BUSY)
        blocked = tl.total(Span.BLOCKED)
        wasted = tl.total(Span.WASTED)
        lines.append(
            f"{name.ljust(label_width)}  busy {100 * busy / horizon:5.1f}%  "
            f"blocked {100 * blocked / horizon:5.1f}%  "
            f"rolled-back {100 * wasted / horizon:5.1f}%"
        )
    return "\n".join(lines)
