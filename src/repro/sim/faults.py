"""Deterministic network fault injection: drop, duplicate, reorder, jitter,
and timed partitions.

HOPE claims to fit "any system providing concurrent processes that
communicate with messages" (§3) — which in practice means lossy ones.
:class:`FaultyNetwork` subclasses :class:`~repro.sim.channel.Network` and
overrides the single delivery-scheduling seam (``_schedule_delivery``) to
apply a per-link :class:`FaultPlan`:

* **drop** — the message is never delivered (no event scheduled);
* **duplicate** — two copies are scheduled, each with its own delay;
* **reorder** — an extra uniform delay from ``reorder_window`` is added,
  letting later sends overtake this one;
* **jitter** — a uniform latency wobble on top of the latency model;
* **partition** — a timed two-sided cut: messages crossing it between
  ``start`` and ``heal_at`` are dropped deterministically.

All probabilistic choices are drawn from one seeded
:class:`~repro.sim.random.RandomStream` (conventionally
``streams["faults"]``), in send order, so a faulty run replays
byte-identically from its seed.  Draws are guarded by ``param > 0`` —
an all-zero plan consumes no randomness and perturbs nothing.

Control datagrams (the reliable layer's acks, the failure detector's
heartbeats) do not travel as :class:`~repro.sim.channel.Message`
envelopes; they consult :meth:`FaultyNetwork.control_fate` /
:meth:`FaultyNetwork.heartbeat_lost`, which apply the same plan.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from .channel import Mailbox, Message, Network
from .kernel import ScheduledEvent, SimulationError, Simulator
from .latency import LatencyModel
from .random import RandomStream

#: Pseudo-endpoint name for heartbeat traffic in per-link fault tables.
DETECTOR_ENDPOINT = "@detector"


def _check_prob(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)


def _check_nonneg(name: str, value: float) -> float:
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return float(value)


def _check_keys(what: str, data: dict, allowed: Iterable[str]) -> dict:
    """Reject unknown keys so a typo'd fault plan fails loudly instead of
    silently running fault-free (``"drp": 0.5`` would otherwise be a
    no-op — the worst kind of chaos-test bug)."""
    if not isinstance(data, dict):
        raise ValueError(
            f"{what}: expected a JSON object, got {type(data).__name__}"
        )
    allowed = tuple(allowed)
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"{what}: unknown key(s) {unknown} (allowed: {sorted(allowed)})"
        )
    return data


class LinkFaults:
    """Fault parameters for one directed link (or the plan default).

    Immutable so plans can be shared, serialized, and shrunk by
    constructing scaled copies.
    """

    __slots__ = ("drop", "duplicate", "reorder", "reorder_window", "jitter")

    def __init__(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_window: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        object.__setattr__(self, "drop", _check_prob("drop", drop))
        object.__setattr__(self, "duplicate", _check_prob("duplicate", duplicate))
        object.__setattr__(self, "reorder", _check_prob("reorder", reorder))
        object.__setattr__(
            self, "reorder_window", _check_nonneg("reorder_window", reorder_window)
        )
        object.__setattr__(self, "jitter", _check_nonneg("jitter", jitter))
        if self.reorder > 0.0 and self.reorder_window == 0.0:
            raise ValueError("reorder > 0 needs a positive reorder_window")

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("LinkFaults is immutable")

    @property
    def is_null(self) -> bool:
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.jitter == 0.0
        )

    def replace(self, **kwargs: float) -> "LinkFaults":
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(kwargs)
        return LinkFaults(**fields)

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "LinkFaults":
        return cls(**_check_keys("LinkFaults", data, cls.__slots__))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkFaults):
            return NotImplemented
        return all(getattr(self, s) == getattr(other, s) for s in self.__slots__)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}"
            for slot in self.__slots__
            if getattr(self, slot) != 0.0
        )
        return f"LinkFaults({fields})"


#: Shared all-zero parameter block — the default for untouched links.
NO_FAULTS = LinkFaults()


class Partition:
    """A timed two-sided network cut.

    Between ``start`` and ``heal_at`` (virtual time), any message whose
    endpoints fall on opposite sides is dropped.  Endpoints in neither
    group are unaffected.  ``minority()`` names the smaller side — the
    failure detector treats its heartbeats as lost, modelling the usual
    "majority side keeps the cluster" deployment.
    """

    __slots__ = ("a", "b", "start", "heal_at")

    def __init__(
        self,
        a: Iterable[str],
        b: Iterable[str],
        start: float = 0.0,
        heal_at: float = math.inf,
    ) -> None:
        self.a = frozenset(a)
        self.b = frozenset(b)
        if not self.a or not self.b:
            raise ValueError("both partition sides need at least one endpoint")
        if self.a & self.b:
            raise ValueError(f"partition sides overlap: {sorted(self.a & self.b)}")
        if heal_at < start:
            raise ValueError(f"heal_at={heal_at} precedes start={start}")
        self.start = float(start)
        self.heal_at = float(heal_at)

    def active(self, now: float) -> bool:
        return self.start <= now < self.heal_at

    def separates(self, src: str, dst: str, now: float) -> bool:
        if not self.active(now):
            return False
        return (src in self.a and dst in self.b) or (src in self.b and dst in self.a)

    def minority(self) -> frozenset:
        """The smaller side (ties broken toward the lexicographically
        smaller member set), used for heartbeat loss during the cut."""
        if len(self.a) != len(self.b):
            return self.a if len(self.a) < len(self.b) else self.b
        return self.a if sorted(self.a) < sorted(self.b) else self.b

    def isolates(self, name: str, now: float) -> bool:
        return self.active(now) and name in self.minority()

    def to_dict(self) -> dict:
        return {
            "a": sorted(self.a),
            "b": sorted(self.b),
            "start": self.start,
            "heal_at": None if math.isinf(self.heal_at) else self.heal_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Partition":
        _check_keys("Partition", data, cls.__slots__)
        heal_at = data.get("heal_at")
        return cls(
            data["a"],
            data["b"],
            start=data.get("start", 0.0),
            heal_at=math.inf if heal_at is None else heal_at,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return (
            {self.a, self.b} == {other.a, other.b}
            and self.start == other.start
            and self.heal_at == other.heal_at
        )

    def __hash__(self) -> int:
        return hash((frozenset((self.a, self.b)), self.start, self.heal_at))

    def __repr__(self) -> str:
        heal = "inf" if math.isinf(self.heal_at) else f"{self.heal_at:g}"
        return (
            f"Partition({sorted(self.a)}|{sorted(self.b)}, "
            f"t=[{self.start:g}, {heal}))"
        )


class FaultPlan:
    """A complete, serializable description of what the network does wrong.

    ``default`` applies to every link without an entry in ``links``
    (keys are ``(src, dst)`` directed pairs).  Heartbeat traffic from
    process ``p`` uses the link ``(p, DETECTOR_ENDPOINT)``.
    """

    __slots__ = ("default", "links", "partitions")

    def __init__(
        self,
        default: Optional[LinkFaults] = None,
        links: Optional[dict[tuple[str, str], LinkFaults]] = None,
        partitions: Iterable[Partition] = (),
    ) -> None:
        self.default = default if default is not None else NO_FAULTS
        self.links = dict(links or {})
        self.partitions = tuple(partitions)

    def for_link(self, src: str, dst: str) -> LinkFaults:
        return self.links.get((src, dst), self.default)

    def partitioned(self, src: str, dst: str, now: float) -> bool:
        for partition in self.partitions:
            if partition.separates(src, dst, now):
                return True
        return False

    def isolated(self, name: str, now: float) -> bool:
        """True when ``name`` sits on the minority side of an active cut."""
        for partition in self.partitions:
            if partition.isolates(name, now):
                return True
        return False

    @property
    def is_null(self) -> bool:
        return (
            self.default.is_null
            and all(lf.is_null for lf in self.links.values())
            and not self.partitions
        )

    def to_dict(self) -> dict:
        return {
            "default": self.default.to_dict(),
            "links": [
                {"src": src, "dst": dst, "faults": lf.to_dict()}
                for (src, dst), lf in sorted(self.links.items())
            ],
            "partitions": [p.to_dict() for p in self.partitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        _check_keys("FaultPlan", data, cls.__slots__)
        links = {}
        for index, entry in enumerate(data.get("links", [])):
            _check_keys(
                f"FaultPlan links[{index}]", entry, ("src", "dst", "faults")
            )
            missing = sorted({"src", "dst", "faults"} - set(entry))
            if missing:
                raise ValueError(
                    f"FaultPlan links[{index}]: missing key(s) {missing}"
                )
            links[(entry["src"], entry["dst"])] = LinkFaults.from_dict(
                entry["faults"]
            )
        return cls(
            default=LinkFaults.from_dict(data.get("default", {})),
            links=links,
            partitions=[Partition.from_dict(p) for p in data.get("partitions", [])],
        )

    def __repr__(self) -> str:
        parts = [f"default={self.default!r}"]
        if self.links:
            parts.append(f"links={len(self.links)}")
        if self.partitions:
            parts.append(f"partitions={list(self.partitions)!r}")
        return f"FaultPlan({', '.join(parts)})"


class FaultStats:
    """Counters for everything the fault layer did to traffic."""

    __slots__ = (
        "dropped",
        "duplicated",
        "reordered",
        "partition_dropped",
        "acks_dropped",
        "heartbeats_dropped",
    )

    def __init__(self) -> None:
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.partition_dropped = 0
        self.acks_dropped = 0
        self.heartbeats_dropped = 0

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<FaultStats {fields}>"


class FaultyNetwork(Network):
    """A :class:`Network` that misbehaves according to a :class:`FaultPlan`.

    Identical wire semantics otherwise: same message ids, same labels,
    same mailbox behavior.  Dropped messages return a normal
    :class:`~repro.sim.channel.Delivery` whose event is None — retracting
    one is a no-op beyond marking the envelope dead.

    Tagged-message pinning: a duplicated tagged message registers a copy
    count so its AID tag keys stay pinned (fossil collection) until the
    *last* copy leaves the wire.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        plan: Optional[FaultPlan] = None,
        stream: Optional[RandomStream] = None,
    ) -> None:
        super().__init__(sim, latency)
        self.plan = plan if plan is not None else FaultPlan()
        if stream is None and not self.plan.is_null:
            raise SimulationError(
                "FaultyNetwork with a non-null plan needs a seeded "
                "RandomStream (pass streams['faults'])"
            )
        self.stream = stream
        self.fault_stats = FaultStats()
        #: In-flight copy count per tagged msg_id (only when > 1 copy).
        self._tagged_copies: dict[int, int] = {}

    # ------------------------------------------------------------------
    # the seam
    # ------------------------------------------------------------------
    def _schedule_delivery(
        self, box: Mailbox, message: Message, delay: float
    ) -> Optional[ScheduledEvent]:
        plan = self.plan
        stats = self.fault_stats
        if plan.partitioned(message.src, message.dst, self.sim.now):
            stats.partition_dropped += 1
            return None
        faults = plan.for_link(message.src, message.dst)
        if faults.is_null:
            return super()._schedule_delivery(box, message, delay)
        stream = self.stream
        if faults.drop > 0.0 and stream.bernoulli(faults.drop):
            stats.dropped += 1
            return None
        copies = 1
        if faults.duplicate > 0.0 and stream.bernoulli(faults.duplicate):
            copies = 2
            stats.duplicated += 1
        primary: Optional[ScheduledEvent] = None
        for index in range(copies):
            copy_delay = delay
            if faults.jitter > 0.0:
                copy_delay += stream.uniform(0.0, faults.jitter)
            if faults.reorder > 0.0 and stream.bernoulli(faults.reorder):
                copy_delay += stream.uniform(0.0, faults.reorder_window)
                stats.reordered += 1
            event = self._schedule_copy(box, message, copy_delay)
            if index == 0:
                primary = event
        return primary

    def _schedule_copy(
        self, box: Mailbox, message: Message, delay: float
    ) -> ScheduledEvent:
        label = f"deliver:{message.src}->{message.dst}"
        if message.tags:
            self._inflight_tagged[message.msg_id] = message
            self._tagged_copies[message.msg_id] = (
                self._tagged_copies.get(message.msg_id, 0) + 1
            )
            return self.sim.schedule(delay, self._deliver_tagged, box, message, label=label)
        return self.sim.schedule(delay, self._put, box, message, label=label)

    def _deliver_tagged(self, box: Mailbox, message: Message) -> None:
        remaining = self._tagged_copies.get(message.msg_id, 1) - 1
        if remaining <= 0:
            self._tagged_copies.pop(message.msg_id, None)
            self._inflight_tagged.pop(message.msg_id, None)
        else:
            self._tagged_copies[message.msg_id] = remaining
        self._put(box, message)

    # ------------------------------------------------------------------
    # stats (polymorphic Network hooks)
    # ------------------------------------------------------------------
    def stats_entries(self) -> dict:
        return {"faults": self.fault_stats.as_dict()}

    def observe_gauges(self, spec) -> None:
        stats = self.fault_stats
        spec.net_dropped.set(stats.dropped)
        spec.net_duplicated.set(stats.duplicated)
        spec.net_reordered.set(stats.reordered)
        spec.net_partition_dropped.set(stats.partition_dropped)
        spec.acks_dropped.set(stats.acks_dropped)

    # ------------------------------------------------------------------
    # control-plane traffic (acks, heartbeats)
    # ------------------------------------------------------------------
    def control_fate(self, src: str, dst: str) -> tuple[bool, float]:
        """Loss decision + delay for an ack-style datagram on ``src->dst``."""
        if self.plan.partitioned(src, dst, self.sim.now):
            self.fault_stats.acks_dropped += 1
            return (True, 0.0)
        faults = self.plan.for_link(src, dst)
        if (
            faults.drop > 0.0
            and self.stream is not None
            and self.stream.bernoulli(faults.drop)
        ):
            self.fault_stats.acks_dropped += 1
            return (True, 0.0)
        delay = self.latency.sample(src, dst)
        if faults.jitter > 0.0 and self.stream is not None:
            delay += self.stream.uniform(0.0, faults.jitter)
        return (False, delay)

    def heartbeat_lost(self, src: str) -> bool:
        """Fate of one heartbeat from ``src`` to the failure detector.

        Lost when ``src`` is on the minority side of an active partition,
        or by the drop probability of the ``(src, DETECTOR_ENDPOINT)``
        link (falling back to the plan default).
        """
        if self.plan.isolated(src, self.sim.now):
            self.fault_stats.heartbeats_dropped += 1
            return True
        faults = self.plan.for_link(src, DETECTOR_ENDPOINT)
        if (
            faults.drop > 0.0
            and self.stream is not None
            and self.stream.bernoulli(faults.drop)
        ):
            self.fault_stats.heartbeats_dropped += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<FaultyNetwork endpoints={len(self._mailboxes)} "
            f"sent={self.messages_sent} {self.fault_stats!r}>"
        )
