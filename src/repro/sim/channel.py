"""Messaging: mailboxes, message envelopes, and the simulated network.

HOPE is defined for "any system providing concurrent processes that
communicate with messages" (§3).  This module is that system: each named
process owns a :class:`Mailbox`; a :class:`Network` routes
:class:`Message` envelopes between mailboxes with a pluggable latency
model.

Two affordances exist specifically for optimism:

* a :class:`Delivery` handle can be *retracted* before or after delivery —
  how the HOPE runtime kills messages sent from a rolled-back interval;
* envelopes carry a ``tags`` set — the AIDs the sender depended on, which
  drive the receiver's implicit ``guess`` (§3, §7).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Iterable, Optional

from .kernel import ScheduledEvent, SimulationError, Simulator
from .latency import ConstantLatency, LatencyModel
from .process import TIMED_OUT, Task

_msg_ids = itertools.count(1)


class Message:
    """An envelope in flight or in a mailbox.

    ``tags`` is the set of assumption identifiers the sender depended on at
    send time (empty for definite sends).  ``dead`` marks a message
    retracted by rollback; mailboxes silently drop dead messages.
    """

    __slots__ = ("msg_id", "src", "dst", "payload", "tags", "send_time", "deliver_time", "dead")

    def __init__(
        self,
        src: str,
        dst: str,
        payload: Any,
        tags: Optional[frozenset] = None,
        send_time: float = 0.0,
        msg_id: Optional[int] = None,
    ) -> None:
        self.msg_id = msg_id if msg_id is not None else next(_msg_ids)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.tags = tags or frozenset()
        self.send_time = send_time
        self.deliver_time: Optional[float] = None
        self.dead = False

    def __repr__(self) -> str:
        flags = " dead" if self.dead else ""
        return f"<Message #{self.msg_id} {self.src}->{self.dst} {self.payload!r}{flags}>"


class Delivery:
    """Handle on a sent message; supports retraction at any point.

    Before delivery, :meth:`retract` cancels the scheduled delivery event.
    After delivery but before receipt, the message is marked dead and the
    mailbox drops it.  After receipt, marking it dead is still meaningful:
    the HOPE runtime checks ``message.dead`` when deciding whether a
    rolled-back receive should be redelivered.
    """

    __slots__ = ("message", "_event")

    def __init__(self, message: Message, event: Optional[ScheduledEvent]) -> None:
        self.message = message
        self._event = event

    def retract(self) -> None:
        self.message.dead = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def delivered(self) -> bool:
        return self.message.deliver_time is not None

    def __repr__(self) -> str:
        return f"Delivery({self.message!r})"


class _Waiter:
    """A task blocked on a mailbox, with an optional timeout timer.

    The waiter is its own unregistration callback (``__call__``), so
    registering the task-kill cleanup needs no per-recv lambda.
    """

    __slots__ = ("task", "timer", "predicate", "box")

    def __init__(self, task: Task, timer: Optional[ScheduledEvent], predicate, box) -> None:
        self.task = task
        self.timer = timer
        self.predicate = predicate
        self.box = box

    def __call__(self) -> None:
        self.box._remove_waiter(self)


class Mailbox:
    """FIFO of messages for one process, with blocking receivers.

    Receivers may pass a ``predicate`` to receive selectively (used by RPC
    reply matching); unmatched messages stay queued in order.
    """

    __slots__ = ("sim", "owner", "_queue", "_waiters", "delivered_count", "_timeout_label")

    def __init__(self, sim: Simulator, owner: str) -> None:
        self.sim = sim
        self.owner = owner
        self._queue: deque[Message] = deque()
        self._waiters: deque[_Waiter] = deque()
        self.delivered_count = 0
        self._timeout_label = "recv-timeout:" + owner

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put(self, message: Message) -> None:
        """Deliver a message: hand it to the first matching waiter or queue it."""
        if message.dead:
            return
        message.deliver_time = self.sim.now
        self.delivered_count += 1
        waiters = self._waiters
        if waiters and waiters[0].predicate is None:
            # Common case — an unconditional receiver at the head: no
            # snapshot of the wait list, no predicate calls.
            waiter = waiters.popleft()
            if waiter.timer is not None:
                waiter.timer.cancel()
            waiter.task.clear_cleanups()
            waiter.task.resume(message)
            return
        for waiter in list(waiters):
            if waiter.predicate is None or waiter.predicate(message):
                waiters.remove(waiter)
                if waiter.timer is not None:
                    waiter.timer.cancel()
                waiter.task.clear_cleanups()
                waiter.task.resume(message)
                return
        self._queue.append(message)

    def requeue_front(self, messages: Iterable[Message]) -> None:
        """Put messages back at the head, preserving their relative order.

        Used when a rollback un-receives messages whose senders survived:
        they must be redelivered in the original order.
        """
        for message in reversed(list(messages)):
            if not message.dead:
                self._queue.appendleft(message)
        self._wake_matching()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def register_receiver(
        self,
        task: Task,
        timeout: Optional[float] = None,
        predicate: Optional[Callable[[Message], bool]] = None,
    ) -> None:
        """Attach a blocked receiver; resumes with a Message or TIMED_OUT."""
        if self._queue:
            # dead-sweep and scan only when something is actually queued —
            # the hot path (ping-pong style alternation) always finds the
            # queue empty here.
            self._drop_dead()
            for idx, message in enumerate(self._queue):
                if predicate is None or predicate(message):
                    del self._queue[idx]
                    task.resume(message)
                    return
        waiter = _Waiter(task, None, predicate, self)
        if timeout is not None:
            waiter.timer = self.sim.schedule(
                timeout, self._timeout_waiter, waiter, label=self._timeout_label
            )
        self._waiters.append(waiter)
        task.add_cleanup(waiter)

    def register_waiter(self, waiter: _Waiter) -> None:
        """:meth:`register_receiver` for a caller-owned, timer-less waiter.

        A receiver that blocks on the same mailbox over and over (the HOPE
        recv bridge) keeps one ``_Waiter`` and re-registers it instead of
        allocating a fresh one per recv; the caller must have set
        ``predicate`` and left ``timer`` None.  Only legal while the
        waiter is not already enqueued (one outstanding recv at a time).
        """
        predicate = waiter.predicate
        if self._queue:
            self._drop_dead()
            for idx, message in enumerate(self._queue):
                if predicate is None or predicate(message):
                    del self._queue[idx]
                    waiter.task.resume(message)
                    return
        self._waiters.append(waiter)
        waiter.task.add_cleanup(waiter)

    def _timeout_waiter(self, waiter: _Waiter) -> None:
        if waiter in self._waiters:
            self._waiters.remove(waiter)
            waiter.task.clear_cleanups()
            waiter.task.resume(TIMED_OUT)

    def _remove_waiter(self, waiter: _Waiter) -> None:
        if waiter in self._waiters:
            self._waiters.remove(waiter)
        if waiter.timer is not None:
            waiter.timer.cancel()

    def _wake_matching(self) -> None:
        """After a requeue, hand queued messages to any compatible waiters."""
        progress = True
        while progress and self._queue and self._waiters:
            progress = False
            for waiter in list(self._waiters):
                delivered = None
                for idx, message in enumerate(self._queue):
                    if waiter.predicate is None or waiter.predicate(message):
                        delivered = idx
                        break
                if delivered is not None:
                    message = self._queue[delivered]
                    del self._queue[delivered]
                    self._waiters.remove(waiter)
                    if waiter.timer is not None:
                        waiter.timer.cancel()
                    waiter.task.clear_cleanups()
                    waiter.task.resume(message)
                    progress = True
                    break

    def _drop_dead(self) -> None:
        # Scan first: the common case is an all-live (usually empty)
        # queue, and rebuilding the deque on every register_receiver was
        # measurable allocator churn on the recv hot path.
        if any(m.dead for m in self._queue):
            self._queue = deque(m for m in self._queue if not m.dead)

    def purge(self) -> int:
        """Discard all queued messages (crash semantics: a dead node's
        buffered input is lost).  Returns how many were dropped."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def __len__(self) -> int:
        self._drop_dead()
        return len(self._queue)

    def peek_all(self) -> list[Message]:
        """Snapshot of queued (undelivered-to-task) live messages."""
        self._drop_dead()
        return list(self._queue)

    def __repr__(self) -> str:
        return f"<Mailbox {self.owner!r} queued={len(self._queue)} waiters={len(self._waiters)}>"


class UnknownEndpointError(SimulationError):
    """A message was addressed to a process the network has never seen."""


class Network:
    """Routes messages between named endpoints with modelled latency.

    Statistics (``messages_sent``, ``bytes_proxy``) feed the
    dependency-tracking-overhead benchmark (experiment TRACK).
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.0)
        self._mailboxes: dict[str, Mailbox] = {}
        self.messages_sent = 0
        self.tag_count_total = 0
        #: Tagged messages scheduled but not yet delivered, by msg_id —
        #: their tag keys must stay resolvable (fossil collection pins
        #: them).  Untagged messages never enter; retracted ones are
        #: swept lazily by :meth:`pinned_tag_keys`.
        self._inflight_tagged: dict[int, Message] = {}
        #: Optional arrival interceptor: called with each live message the
        #: instant it reaches the destination mailbox, before ``put``.
        #: Return False to suppress delivery (the reliable-delivery layer
        #: uses this for receiver-side dedup and to model a crashed node
        #: dropping arrivals).  None keeps the exact pre-hook fast path.
        self.deliver_hook: Optional[Callable[[Message], bool]] = None
        #: Cached per-link debug labels for delivery events (an f-string
        #: per send was measurable on the send hot path).
        self._labels: dict[tuple, str] = {}
        #: Same-tick delivery coalescing (see :meth:`send`): the most
        #: recently scheduled delivery as ``[event, entries, box, message,
        #: delivery]``; ``entries`` is None until a second delivery is
        #: merged into the event.  Only the exactly-once base transport
        #: coalesces — a subclassed ``_schedule_delivery`` (fault
        #: injection) or a priority tie-break stream disables it, since
        #: both hang per-event behaviour on each delivery owning an event.
        self._open_batch: Optional[list] = None
        #: The entries list of the sweep currently being delivered (None
        #: outside :meth:`_sweep_deliveries`) — appends are only legal
        #: into a still-pending event or a live iteration.
        self._sweep_live: Optional[list] = None
        self._can_batch = (
            type(self)._schedule_delivery is Network._schedule_delivery
            and sim._tie_breaker is None
            and sim._controller is None
        )

    def register(self, name: str) -> Mailbox:
        """Create (or fetch) the mailbox for endpoint ``name``."""
        box = self._mailboxes.get(name)
        if box is None:
            box = Mailbox(self.sim, name)
            self._mailboxes[name] = box
        return box

    def mailbox(self, name: str) -> Mailbox:
        box = self._mailboxes.get(name)
        if box is None:
            raise UnknownEndpointError(f"no endpoint named {name!r}")
        return box

    def has_endpoint(self, name: str) -> bool:
        return name in self._mailboxes

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        tags: Optional[frozenset] = None,
        latency_override: Optional[float] = None,
        msg_id: Optional[int] = None,
    ) -> Delivery:
        """Send ``payload`` from ``src`` to ``dst``; returns a retractable handle.

        ``msg_id`` lets a retransmission reuse the original id so the
        receiver can dedup; fresh sends leave it None for an auto id.

        Same-tick coalescing: when this delivery would fire at exactly the
        same virtual time as the previously scheduled one *and* no other
        event has been scheduled in between (``seq`` adjacency — so no
        event can possibly order between the two), the message rides the
        previous delivery's event as one sweep instead of paying its own
        scheduler round-trip.  Sequence numbers are allocated per
        ``schedule`` call, so adjacency makes the merged order provably
        identical to the unmerged one: traces stay byte-identical.  This
        is what turns an n-way same-latency fan-out into one event.
        """
        box = self.mailbox(dst)
        # message ids are per-network so equal seeds replay identically
        message = Message(
            src, dst, payload, tags,
            send_time=self.sim.now,
            msg_id=msg_id if msg_id is not None else self.messages_sent + 1,
        )
        delay = (
            latency_override
            if latency_override is not None
            else self.latency.sample(src, dst)
        )
        batch = self._open_batch
        if batch is not None:
            sim = self.sim
            levent = batch[0]
            if (
                sim._seq_next == levent.seq + 1
                and levent.time == sim._now + delay
                and delay >= 0.0
                and not levent.cancelled
            ):
                entries = batch[1]
                # The rider may only join a delivery that will still
                # happen: either the event is pending (``sim`` is detached
                # at pop — rewiring or appending before it fires is always
                # safe), or it is the sweep the network is delivering
                # *right now* (this send came from an inline trampoline
                # inside the loop, and list appends are picked up by the
                # ongoing iteration, in order).  Seq adjacency alone is
                # not enough: a zero-delay send issued after the event's
                # callback chain unwound (e.g. from top-level code between
                # ``run`` calls) can still satisfy it.
                if levent.sim is not None or (
                    entries is not None and self._sweep_live is entries
                ):
                    if entries is None:
                        # Second rider: upgrade the scheduled single
                        # delivery to a sweep.  The first message's
                        # Delivery handle stops owning the (now shared)
                        # event — retraction falls back to dead-marking,
                        # which the sweep honours.
                        entries = batch[1] = [(batch[2], batch[3])]
                        levent.fn = self._sweep_deliveries
                        levent.args = (entries,)
                        batch[4]._event = None
                    entries.append((box, message))
                    if message.tags:
                        self._inflight_tagged[message.msg_id] = message
                    self.messages_sent += 1
                    self.tag_count_total += len(message.tags)
                    return Delivery(message, None)
        event = self._schedule_delivery(box, message, delay)
        self.messages_sent += 1
        self.tag_count_total += len(message.tags)
        delivery = Delivery(message, event)
        if event is not None and self._can_batch:
            self._open_batch = [event, None, box, message, delivery]
        return delivery

    def _sweep_deliveries(self, entries: list) -> None:
        """Deliver a coalesced batch, in original (seq) schedule order.

        Per message this is exactly what the dedicated delivery callbacks
        (``box.put`` / :meth:`_put` / :meth:`_deliver_tagged`) would have
        done at the same instant."""
        inflight = self._inflight_tagged
        self._sweep_live = entries
        try:
            for box, message in entries:
                if message.tags:
                    inflight.pop(message.msg_id, None)
                hook = self.deliver_hook
                if hook is not None and not message.dead and not hook(message):
                    continue
                box.put(message)
        finally:
            self._sweep_live = None

    def _schedule_delivery(
        self, box: Mailbox, message: Message, delay: float
    ) -> Optional[ScheduledEvent]:
        """Schedule one delivery of ``message`` — the fault-injection seam.

        :class:`repro.sim.faults.FaultyNetwork` overrides this to drop,
        duplicate, reorder, and jitter; the base class delivers exactly
        once after ``delay``.
        """
        key = (message.src, message.dst)
        label = self._labels.get(key)
        if label is None:
            label = self._labels[key] = f"deliver:{message.src}->{message.dst}"
        if message.tags:
            self._inflight_tagged[message.msg_id] = message
            return self.sim.schedule(delay, self._deliver_tagged, box, message, label=label)
        if self.deliver_hook is not None:
            return self.sim.schedule(delay, self._put, box, message, label=label)
        return self.sim.schedule(delay, box.put, message, label=label)

    def _deliver_tagged(self, box: Mailbox, message: Message) -> None:
        self._inflight_tagged.pop(message.msg_id, None)
        self._put(box, message)

    def _put(self, box: Mailbox, message: Message) -> None:
        hook = self.deliver_hook
        if hook is not None and not message.dead and not hook(message):
            return
        box.put(message)

    def control_fate(self, src: str, dst: str) -> tuple[bool, float]:
        """Fate of a control datagram (ack/heartbeat) on the ``src -> dst``
        link: ``(lost, delay)``.  The reliable network never loses one;
        :class:`~repro.sim.faults.FaultyNetwork` applies its fault plan."""
        return (False, self.latency.sample(src, dst))

    def stats_entries(self) -> dict:
        """Named stats blocks this transport contributes to
        :meth:`repro.runtime.engine.HopeSystem.stats` — polymorphic, so
        the engine never type-checks its network.
        :class:`~repro.sim.faults.FaultyNetwork` adds ``{"faults": ...}``;
        the parallel shard transport adds its wire counters."""
        return {}

    def observe_gauges(self, spec) -> None:
        """Fill transport-specific gauges on the
        :class:`repro.obs.SpeculationMetrics` instrument set during a
        metrics snapshot.  The reliable base network has none."""

    def pinned_tag_keys(self) -> set:
        """Union of AID tag keys the network still needs resolvable:
        tagged messages in flight plus those queued in mailboxes (either
        may still reach :meth:`repro.core.machine.Machine.resolve_tag_keys`
        at a future delivery)."""
        dead = [
            mid for mid, message in self._inflight_tagged.items() if message.dead
        ]
        for mid in dead:
            del self._inflight_tagged[mid]
        pinned: set = set()
        for message in self._inflight_tagged.values():
            pinned.update(message.tags)
        for box in self._mailboxes.values():
            for message in box._queue:
                if message.tags and not message.dead:
                    pinned.update(message.tags)
        return pinned

    def endpoints(self) -> list[str]:
        return sorted(self._mailboxes)

    def __repr__(self) -> str:
        return f"<Network endpoints={len(self._mailboxes)} sent={self.messages_sent}>"
