"""The chaos harness: seeds × fault plans, with invariants and a twin check.

The paper's theorems (5.1–6.3) promise that optimism never corrupts
committed state — rollback makes speculation *transparent*.  This module
exercises that promise under an adversarial network: it sweeps seed ×
:class:`~repro.sim.FaultPlan` combinations over the chaos workloads in
:mod:`repro.bench.workloads`, attaches the
:mod:`repro.verify.invariants` monitors to every run, and checks that

* no invariant fires (ledger monotonicity, definite safety, quiescent
  resolution, machine algebra);
* every process finishes (faults cause delay and rollback, never a hang);
* the faulty run's **committed state equals its fault-free twin's** —
  the observable outcome is independent of what the network did;
* re-running a case reproduces a byte-identical trace fingerprint
  (faults are sampled from a seeded stream — chaos is replayable).

On failure the harness **shrinks** the fault plan — removing partitions,
zeroing and halving fault probabilities — to a minimal still-failing
reproducer and writes it to disk as JSON, runnable via
``python -m repro.cli chaos --repro <file>``.

Used by ``repro.cli chaos``, ``benchmarks/smoke_chaos.py`` (the CI
budget), and ``benchmarks/bench_chaos_resilience.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterable, Optional

from .bench.workloads import build_chaos_mesh, build_chaos_ring
from .runtime import DetectorConfig, HopeSystem, ReliableConfig
from .sim import ConstantLatency, EventLimitExceeded, FaultPlan, LinkFaults, Partition, Tracer
from .verify.invariants import InvariantViolation, attach_monitors, check_quiescent


class ChaosWorkload:
    """A named workload the harness can build into a fresh system."""

    __slots__ = ("name", "build", "max_events", "description")

    def __init__(
        self,
        name: str,
        build: Callable[[HopeSystem], None],
        max_events: int,
        description: str = "",
    ) -> None:
        self.name = name
        self.build = build
        self.max_events = max_events
        self.description = description


WORKLOADS: dict[str, ChaosWorkload] = {
    "mesh": ChaosWorkload(
        "mesh",
        build_chaos_mesh,
        max_events=200_000,
        description="3 speculative workers fan in to a validator that "
        "affirms/denies each round",
    ),
    "ring": ChaosWorkload(
        "ring",
        build_chaos_ring,
        max_events=200_000,
        description="a token circulates a 4-node ring of tagged "
        "speculative hops, with periodic denies",
    ),
}

#: Endpoint groups per workload, used to aim partitions at real links.
_PARTITION_SIDES = {
    "mesh": (("w0", "w1"), ("validator", "w2")),
    "ring": (("n0", "n1"), ("n2", "n3", "driver")),
}


def standard_plans(workload: str) -> dict[str, FaultPlan]:
    """The named fault plans the default matrix sweeps for ``workload``."""
    side_a, side_b = _PARTITION_SIDES[workload]
    return {
        "drop-light": FaultPlan(default=LinkFaults(drop=0.10)),
        "drop-heavy": FaultPlan(default=LinkFaults(drop=0.25)),
        "dup": FaultPlan(default=LinkFaults(duplicate=0.25)),
        "reorder": FaultPlan(default=LinkFaults(reorder=0.35, reorder_window=6.0)),
        "jitter": FaultPlan(default=LinkFaults(jitter=4.0)),
        "storm": FaultPlan(
            default=LinkFaults(
                drop=0.15, duplicate=0.15, reorder=0.2, reorder_window=5.0, jitter=2.0
            )
        ),
        "partition": FaultPlan(
            default=LinkFaults(drop=0.05),
            partitions=(Partition(side_a, side_b, start=5.0, heal_at=25.0),),
        ),
    }


def committed_state(system: HopeSystem) -> dict[str, tuple]:
    """Canonical committed-output multiset per process.

    Sorted because fault plans legitimately permute *when* outputs
    commit; the twin check compares *what* was committed.
    """
    return {
        name: tuple(sorted(repr(value) for value in system.committed_outputs(name)))
        for name in system.procs
    }


class CaseResult:
    """Outcome of one (workload, seed, plan) run."""

    __slots__ = (
        "workload",
        "seed",
        "plan_name",
        "plan",
        "failure",
        "fingerprint",
        "committed",
        "final_time",
        "stats",
    )

    def __init__(self, workload, seed, plan_name, plan, failure, fingerprint,
                 committed, final_time, stats) -> None:
        self.workload = workload
        self.seed = seed
        self.plan_name = plan_name
        self.plan = plan
        self.failure = failure
        self.fingerprint = fingerprint
        self.committed = committed
        self.final_time = final_time
        self.stats = stats

    @property
    def ok(self) -> bool:
        return self.failure is None

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "plan_name": self.plan_name,
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "failure": self.failure,
            "fingerprint": self.fingerprint,
            "final_time": self.final_time,
        }

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"FAIL({self.failure})"
        return f"<Case {self.workload} seed={self.seed} plan={self.plan_name}: {verdict}>"


def run_case(
    workload: ChaosWorkload,
    seed: int,
    plan: Optional[FaultPlan],
    plan_name: str = "custom",
    reliable: Any = True,
    detector: Any = False,
    twin: Optional[dict[str, tuple]] = None,
    max_events: Optional[int] = None,
    kernel: str = "wheel",
) -> CaseResult:
    """Run one chaos case with monitors attached; never raises.

    ``plan=None`` is the fault-free configuration (used for twins).
    ``twin`` is the fault-free committed state to compare against; pass
    None to skip the comparison (e.g. when producing the twin itself).
    ``kernel`` selects the event-queue kernel ("wheel"/"heap"); traces
    must be byte-identical either way, which the differential tests in
    tests/sim/test_wheel_kernel.py and tests/chaos assert.
    """
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        faults=plan,
        reliable=ReliableConfig() if reliable is True else reliable,
        failure_detector=(
            DetectorConfig() if detector is True else detector
        ),
        kernel=kernel,
    )
    attach_monitors(system)
    workload.build(system)
    failure: Optional[str] = None
    final_time = 0.0
    try:
        final_time = system.run(
            max_events=max_events if max_events is not None else workload.max_events
        )
        check_quiescent(system)
        stuck = sorted(
            name
            for name, proc in system.procs.items()
            if not proc.done and not proc.crashed
        )
        if stuck:
            failure = f"stuck processes at quiescence: {stuck}"
    except InvariantViolation as exc:
        failure = f"invariant violation: {exc}"
    except EventLimitExceeded as exc:
        failure = f"livelock: {exc}"
    committed = committed_state(system)
    if failure is None and twin is not None and committed != twin:
        diff = sorted(
            name for name in set(committed) | set(twin)
            if committed.get(name) != twin.get(name)
        )
        failure = f"committed state diverged from fault-free twin for {diff}"
    return CaseResult(
        workload.name,
        seed,
        plan_name,
        plan,
        failure,
        tracer.fingerprint(),
        committed,
        final_time,
        system.stats(),
    )


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def _shrink_candidates(plan: FaultPlan) -> Iterable[tuple[str, FaultPlan]]:
    """Structurally smaller plans, most aggressive first."""
    # 1. drop each partition outright
    for index in range(len(plan.partitions)):
        kept = plan.partitions[:index] + plan.partitions[index + 1 :]
        yield (f"-partition[{index}]", FaultPlan(plan.default, plan.links, kept))
    # 2. zero each nonzero knob (default first, then per-link entries)
    entries: list[tuple[Optional[tuple[str, str]], LinkFaults]] = [(None, plan.default)]
    entries.extend(plan.links.items())
    for key, faults in entries:
        where = "default" if key is None else f"{key[0]}->{key[1]}"
        for field in ("drop", "duplicate", "jitter"):
            if getattr(faults, field) > 0.0:
                yield (
                    f"{where}.{field}=0",
                    _with_link(plan, key, faults.replace(**{field: 0.0})),
                )
        if faults.reorder > 0.0:
            yield (
                f"{where}.reorder=0",
                _with_link(plan, key, faults.replace(reorder=0.0, reorder_window=0.0)),
            )
    # 3. halve each nonzero knob
    for key, faults in entries:
        where = "default" if key is None else f"{key[0]}->{key[1]}"
        for field in ("drop", "duplicate", "reorder", "jitter"):
            value = getattr(faults, field)
            if value > 0.0:
                yield (
                    f"{where}.{field}/2",
                    _with_link(plan, key, faults.replace(**{field: value / 2.0})),
                )


def _with_link(
    plan: FaultPlan, key: Optional[tuple[str, str]], faults: LinkFaults
) -> FaultPlan:
    if key is None:
        return FaultPlan(faults, plan.links, plan.partitions)
    links = dict(plan.links)
    links[key] = faults
    return FaultPlan(plan.default, links, plan.partitions)


def shrink_plan(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    max_runs: int = 40,
) -> tuple[FaultPlan, int]:
    """Greedy shrink: repeatedly adopt the first structurally smaller
    plan that still fails, until none does (or the run budget is spent).
    Returns the minimal plan found and how many candidate runs it cost."""
    runs = 0
    current = plan
    progress = True
    while progress and runs < max_runs:
        progress = False
        for _label, candidate in _shrink_candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current, runs


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------
def run_matrix(
    workloads: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = (1, 2, 3),
    plans: Optional[dict[str, FaultPlan]] = None,
    reliable: Any = True,
    detector: Any = False,
    repro_dir: str = "chaos-repros",
    verify_determinism: bool = True,
    max_events: Optional[int] = None,
) -> dict:
    """Sweep seeds × fault plans × workloads; returns the report dict.

    Each faulty case is compared against its fault-free twin (same seed,
    same workload, ``faults=None`` — computed once per pair).  Failures
    are shrunk to minimal reproducers written under ``repro_dir``.
    """
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    seeds = list(seeds)
    results: list[CaseResult] = []
    repro_files: list[str] = []
    determinism_checked = 0
    for wname in names:
        workload = WORKLOADS[wname]
        plan_table = plans if plans is not None else standard_plans(wname)
        twins: dict[int, dict[str, tuple]] = {}
        for seed in seeds:
            twin_case = run_case(
                workload, seed, None, plan_name="fault-free",
                reliable=reliable, detector=detector, max_events=max_events,
            )
            if twin_case.failure is not None:
                raise InvariantViolation(
                    f"fault-free twin failed ({wname}, seed={seed}): "
                    f"{twin_case.failure}"
                )
            twins[seed] = twin_case.committed
        for plan_name, plan in plan_table.items():
            for seed in seeds:
                result = run_case(
                    workload, seed, plan, plan_name=plan_name,
                    reliable=reliable, detector=detector,
                    twin=twins[seed], max_events=max_events,
                )
                results.append(result)
                if verify_determinism and result.ok and seed == seeds[0]:
                    rerun = run_case(
                        workload, seed, plan, plan_name=plan_name,
                        reliable=reliable, detector=detector,
                        twin=twins[seed], max_events=max_events,
                    )
                    determinism_checked += 1
                    if rerun.fingerprint != result.fingerprint:
                        result.failure = (
                            "nondeterministic: re-run produced a different "
                            "trace fingerprint"
                        )
                if not result.ok:
                    repro_files.append(
                        _write_reproducer(
                            result, workload, reliable, detector,
                            twins[seed], repro_dir,
                        )
                    )
    failures = [r for r in results if not r.ok]
    return {
        "cases": results,
        "total": len(results),
        "passed": len(results) - len(failures),
        "failures": failures,
        "determinism_checked": determinism_checked,
        "repro_files": repro_files,
    }


def _write_reproducer(
    result: CaseResult,
    workload: ChaosWorkload,
    reliable: Any,
    detector: Any,
    twin: dict[str, tuple],
    repro_dir: str,
) -> str:
    """Shrink the failing plan and write the minimal reproducer to disk."""
    def still_fails(candidate: FaultPlan) -> bool:
        probe = run_case(
            workload, result.seed, candidate, plan_name="shrink-probe",
            reliable=reliable, detector=detector, twin=twin,
        )
        return probe.failure is not None

    minimal, shrink_runs = (
        shrink_plan(result.plan, still_fails)
        if result.plan is not None
        else (None, 0)
    )
    path = os.path.join(
        repro_dir,
        f"chaos-repro-{result.workload}-{result.plan_name}-seed{result.seed}.json",
    )
    payload = {
        "workload": result.workload,
        "seed": result.seed,
        "failure": result.failure,
        "plan": minimal.to_dict() if minimal is not None else None,
        "original_plan": result.plan.to_dict() if result.plan is not None else None,
        "shrink_runs": shrink_runs,
        "command": (
            f"python -m repro.cli chaos --repro {path}"
        ),
    }
    write_reproducer(path, payload)
    return path


def write_reproducer(path: str, payload: dict) -> str:
    """Write one JSON reproducer; the shared writer for every harness.

    Both the chaos matrix and the DPOR explorer (:mod:`repro.verify.dpor`)
    emit their minimal counterexamples through this function, so
    reproducer files share one on-disk format: a stable, sorted,
    indented JSON object whose ``command`` field replays it.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def run_reproducer(path: str) -> CaseResult:
    """Re-run a reproducer file written by :func:`run_matrix`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    workload = WORKLOADS[payload["workload"]]
    plan = FaultPlan.from_dict(payload["plan"]) if payload.get("plan") else None
    twin_case = run_case(workload, payload["seed"], None, plan_name="fault-free")
    return run_case(
        workload, payload["seed"], plan,
        plan_name="repro", twin=twin_case.committed,
    )


def format_report(report: dict) -> str:
    """Human-readable matrix summary (what the CLI prints)."""
    lines = [
        f"chaos matrix: {report['passed']}/{report['total']} cases passed, "
        f"{report['determinism_checked']} determinism re-runs"
    ]
    for result in report["cases"]:
        stats = result.stats
        fault_info = stats.get("faults", {})
        lines.append(
            f"  {result.workload:<5} seed={result.seed} plan={result.plan_name:<11} "
            f"{'ok' if result.ok else 'FAIL':<4} "
            f"t={result.final_time:8.2f} rollbacks={stats.get('rollbacks', 0):<3} "
            f"dropped={fault_info.get('dropped', 0) + fault_info.get('partition_dropped', 0):<3} "
            f"retries={stats.get('reliable', {}).get('retries', 0)}"
        )
        if not result.ok:
            lines.append(f"        failure: {result.failure}")
    for path in report["repro_files"]:
        lines.append(f"  reproducer written: {path}")
    return "\n".join(lines)
