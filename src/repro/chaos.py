"""The chaos harness: seeds × fault plans, with invariants and a twin check.

The paper's theorems (5.1–6.3) promise that optimism never corrupts
committed state — rollback makes speculation *transparent*.  This module
exercises that promise under an adversarial network: it sweeps seed ×
:class:`~repro.sim.FaultPlan` combinations over the chaos workloads in
:mod:`repro.bench.workloads`, attaches the
:mod:`repro.verify.invariants` monitors to every run, and checks that

* no invariant fires (ledger monotonicity, definite safety, quiescent
  resolution, machine algebra);
* every process finishes (faults cause delay and rollback, never a hang);
* the faulty run's **committed state equals its fault-free twin's** —
  the observable outcome is independent of what the network did;
* re-running a case reproduces a byte-identical trace fingerprint
  (faults are sampled from a seeded stream — chaos is replayable).

On failure the harness **shrinks** the fault plan — removing partitions,
zeroing and halving fault probabilities — to a minimal still-failing
reproducer and writes it to disk as JSON, runnable via
``python -m repro.cli chaos --repro <file>``.

Used by ``repro.cli chaos``, ``benchmarks/smoke_chaos.py`` (the CI
budget), and ``benchmarks/bench_chaos_resilience.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Any, Callable, Iterable, Optional

from .bench.workloads import build_chaos_mesh, build_chaos_ring, build_durable_counter
from .runtime import DetectorConfig, HopeSystem, ReliableConfig
from .sim import ConstantLatency, EventLimitExceeded, FaultPlan, LinkFaults, Partition, Tracer
from .verify.invariants import InvariantViolation, attach_monitors, check_quiescent


class ChaosWorkload:
    """A named workload the harness can build into a fresh system."""

    __slots__ = ("name", "build", "max_events", "description")

    def __init__(
        self,
        name: str,
        build: Callable[[HopeSystem], None],
        max_events: int,
        description: str = "",
    ) -> None:
        self.name = name
        self.build = build
        self.max_events = max_events
        self.description = description


WORKLOADS: dict[str, ChaosWorkload] = {
    "mesh": ChaosWorkload(
        "mesh",
        build_chaos_mesh,
        max_events=200_000,
        description="3 speculative workers fan in to a validator that "
        "affirms/denies each round",
    ),
    "ring": ChaosWorkload(
        "ring",
        build_chaos_ring,
        max_events=200_000,
        description="a token circulates a 4-node ring of tagged "
        "speculative hops, with periodic denies",
    ),
}

#: Workloads for the kill/resume (host-crash) mode: the standard chaos
#: pair plus the commit-point counter, all deterministic in their
#: committed outputs so the resumed run must reconverge byte-identically.
KILL_RESUME_WORKLOADS: dict[str, ChaosWorkload] = {
    "mesh": WORKLOADS["mesh"],
    "ring": WORKLOADS["ring"],
    "counter": ChaosWorkload(
        "counter",
        build_durable_counter,
        max_events=200_000,
        description="commit-point counters judged centrally — exercises "
        "base-aware snapshots and fossil-trimmed WALs",
    ),
}

#: Endpoint groups per workload, used to aim partitions at real links.
_PARTITION_SIDES = {
    "mesh": (("w0", "w1"), ("validator", "w2")),
    "ring": (("n0", "n1"), ("n2", "n3", "driver")),
}

#: One-line descriptions of the standard fault plans (``--list-plans``).
PLAN_DESCRIPTIONS: dict[str, str] = {
    "drop-light": "10% uniform message drop on every link",
    "drop-heavy": "25% uniform message drop on every link",
    "dup": "25% duplicate delivery per message",
    "reorder": "35% of messages reordered within a 6s window",
    "jitter": "up to 4s uniform extra latency per message",
    "storm": "drop + duplicate + reorder + jitter combined",
    "partition": "two-sided partition from t=5 to t=25 over 5% background drop",
}


def standard_plans(workload: str) -> dict[str, FaultPlan]:
    """The named fault plans the default matrix sweeps for ``workload``."""
    side_a, side_b = _PARTITION_SIDES[workload]
    return {
        "drop-light": FaultPlan(default=LinkFaults(drop=0.10)),
        "drop-heavy": FaultPlan(default=LinkFaults(drop=0.25)),
        "dup": FaultPlan(default=LinkFaults(duplicate=0.25)),
        "reorder": FaultPlan(default=LinkFaults(reorder=0.35, reorder_window=6.0)),
        "jitter": FaultPlan(default=LinkFaults(jitter=4.0)),
        "storm": FaultPlan(
            default=LinkFaults(
                drop=0.15, duplicate=0.15, reorder=0.2, reorder_window=5.0, jitter=2.0
            )
        ),
        "partition": FaultPlan(
            default=LinkFaults(drop=0.05),
            partitions=(Partition(side_a, side_b, start=5.0, heal_at=25.0),),
        ),
    }


def committed_state(system: HopeSystem) -> dict[str, tuple]:
    """Canonical committed-output multiset per process.

    Sorted because fault plans legitimately permute *when* outputs
    commit; the twin check compares *what* was committed.
    """
    return {
        name: tuple(sorted(repr(value) for value in system.committed_outputs(name)))
        for name in system.procs
    }


class CaseResult:
    """Outcome of one (workload, seed, plan) run."""

    __slots__ = (
        "workload",
        "seed",
        "plan_name",
        "plan",
        "failure",
        "fingerprint",
        "committed",
        "final_time",
        "stats",
    )

    def __init__(self, workload, seed, plan_name, plan, failure, fingerprint,
                 committed, final_time, stats) -> None:
        self.workload = workload
        self.seed = seed
        self.plan_name = plan_name
        self.plan = plan
        self.failure = failure
        self.fingerprint = fingerprint
        self.committed = committed
        self.final_time = final_time
        self.stats = stats

    @property
    def ok(self) -> bool:
        return self.failure is None

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "plan_name": self.plan_name,
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "failure": self.failure,
            "fingerprint": self.fingerprint,
            "final_time": self.final_time,
        }

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"FAIL({self.failure})"
        return f"<Case {self.workload} seed={self.seed} plan={self.plan_name}: {verdict}>"


def run_case(
    workload: ChaosWorkload,
    seed: int,
    plan: Optional[FaultPlan],
    plan_name: str = "custom",
    reliable: Any = True,
    detector: Any = False,
    twin: Optional[dict[str, tuple]] = None,
    max_events: Optional[int] = None,
    kernel: str = "wheel",
) -> CaseResult:
    """Run one chaos case with monitors attached; never raises.

    ``plan=None`` is the fault-free configuration (used for twins).
    ``twin`` is the fault-free committed state to compare against; pass
    None to skip the comparison (e.g. when producing the twin itself).
    ``kernel`` selects the event-queue kernel ("wheel"/"heap"); traces
    must be byte-identical either way, which the differential tests in
    tests/sim/test_wheel_kernel.py and tests/chaos assert.
    """
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        faults=plan,
        reliable=ReliableConfig() if reliable is True else reliable,
        failure_detector=(
            DetectorConfig() if detector is True else detector
        ),
        kernel=kernel,
    )
    attach_monitors(system)
    workload.build(system)
    failure: Optional[str] = None
    final_time = 0.0
    try:
        final_time = system.run(
            max_events=max_events if max_events is not None else workload.max_events
        )
        check_quiescent(system)
        stuck = sorted(
            name
            for name, proc in system.procs.items()
            if not proc.done and not proc.crashed
        )
        if stuck:
            failure = f"stuck processes at quiescence: {stuck}"
    except InvariantViolation as exc:
        failure = f"invariant violation: {exc}"
    except EventLimitExceeded as exc:
        failure = f"livelock: {exc}"
    committed = committed_state(system)
    if failure is None and twin is not None and committed != twin:
        diff = sorted(
            name for name in set(committed) | set(twin)
            if committed.get(name) != twin.get(name)
        )
        failure = f"committed state diverged from fault-free twin for {diff}"
    return CaseResult(
        workload.name,
        seed,
        plan_name,
        plan,
        failure,
        tracer.fingerprint(),
        committed,
        final_time,
        system.stats(),
    )


# ---------------------------------------------------------------------------
# kill/resume (host-crash) mode — repro.durable's chaos harness
# ---------------------------------------------------------------------------

#: Durable options for chaos runs: snapshot on every fossil pass so even
#: early kill points have sealed state to recover.
_KILL_DURABLE_OPTS = {"snapshot_every": 1}
_KILL_FOSSIL_INTERVAL = 4
#: Default seeded crash points, as fractions of the twin's event count.
KILL_FRACS = (0.25, 0.55, 0.85)
#: Child exit codes: the kill landed as planned / the child errored.
_KILLED_OK = 37
_CHILD_ERROR = 41


class KillResumeResult:
    """Outcome of one host-crash case: kill at a seeded point, resume,
    compare committed state against the uninterrupted twin."""

    __slots__ = ("workload", "seed", "kill_events", "frac", "corrupt",
                 "corrupted_path", "failure", "durable_stats", "run_dir")

    def __init__(self, workload, seed, kill_events, frac, corrupt,
                 corrupted_path, failure, durable_stats, run_dir) -> None:
        self.workload = workload
        self.seed = seed
        self.kill_events = kill_events
        self.frac = frac
        self.corrupt = corrupt
        self.corrupted_path = corrupted_path
        self.failure = failure
        self.durable_stats = durable_stats
        self.run_dir = run_dir

    @property
    def ok(self) -> bool:
        return self.failure is None

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"FAIL({self.failure})"
        extra = f" corrupt={self.corrupt}" if self.corrupt else ""
        return (
            f"<KillResume {self.workload} seed={self.seed} "
            f"kill@{self.kill_events}{extra}: {verdict}>"
        )


def _durable_system(workload: ChaosWorkload, seed: int, run_dir: str,
                    kernel: str, durable_opts: dict) -> HopeSystem:
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        kernel=kernel,
        fossil_collect=True,
        fossil_interval=_KILL_FOSSIL_INTERVAL,
        durable_dir=run_dir,
        durable_opts=dict(durable_opts),
    )
    workload.build(system)
    return system


def _run_child_until_kill(workload: ChaosWorkload, seed: int, run_dir: str,
                          kill_events: int, kernel: str,
                          durable_opts: dict) -> None:
    system = _durable_system(workload, seed, run_dir, kernel, durable_opts)
    try:
        system.run(max_events=kill_events)
    except EventLimitExceeded:
        # This *is* the crash point: die without any orderly shutdown —
        # no durable sync, no flush beyond the last sealed batch.
        pass


def run_kill_resume_case(
    workload,
    seed: int,
    kill_frac: float = 0.5,
    *,
    kill_events: Optional[int] = None,
    corrupt: Optional[str] = None,
    kernel: str = "wheel",
    run_dir: Optional[str] = None,
    keep_dir: bool = False,
    in_process: bool = False,
) -> KillResumeResult:
    """One host-crash chaos case.

    Runs the workload durably in a child process killed (``os._exit``,
    no cleanup) once ``kill_events`` simulator events have fired, then
    resumes from the run directory and requires the committed-state
    fingerprint to match an uninterrupted fault-free twin byte for byte.
    ``corrupt`` ("envelope" | "wal") additionally flips bytes in the
    newest envelope / WAL tail before resuming and requires recovery to
    *detect* the damage (counted rejections/discards) and still
    converge via one-generation fallback.  ``in_process=True`` skips the
    fork and simply abandons the recording system mid-run — same
    recovery path, available on platforms without ``os.fork``.
    The run directory is deleted on success unless ``keep_dir``.
    """
    if isinstance(workload, str):
        workload = KILL_RESUME_WORKLOADS[workload]
    twin = run_case(workload, seed, None, plan_name="fault-free", reliable=False)
    if twin.failure is not None:
        return KillResumeResult(
            workload.name, seed, 0, kill_frac, corrupt, None,
            f"uninterrupted twin failed: {twin.failure}", {}, run_dir,
        )
    total_events = twin.stats["sim_events"]
    durable_opts = dict(_KILL_DURABLE_OPTS)
    if corrupt == "wal":
        # Keep every record in wal-0 (no mid-run envelopes), so the
        # corrupted tail is provably on the recovery replay path.
        durable_opts["snapshot_every"] = 1_000_000_000
    if kill_events is None:
        if corrupt is not None:
            # As late as possible: corruption needs sealed state to damage.
            kill_events = max(2, total_events - 1)
        else:
            kill_events = max(2, int(total_events * kill_frac))
    own_dir = run_dir is None
    if own_dir:
        run_dir = tempfile.mkdtemp(
            prefix=f"hope-durable-{workload.name}-s{seed}-"
        )
    err_path = os.path.join(run_dir, "child-error.txt")
    failure: Optional[str] = None
    use_fork = hasattr(os, "fork") and not in_process
    if use_fork:
        pid = os.fork()
        if pid == 0:
            code = _KILLED_OK
            try:
                _run_child_until_kill(
                    workload, seed, run_dir, kill_events, kernel, durable_opts
                )
            except BaseException:
                import traceback

                with open(err_path, "w", encoding="utf-8") as fh:
                    traceback.print_exc(file=fh)
                code = _CHILD_ERROR
            finally:
                # A host crash, not an exit: skip atexit/stdio/GC entirely.
                os._exit(code)
        _, wstatus = os.waitpid(pid, 0)
        code = os.waitstatus_to_exitcode(wstatus)
        if code != _KILLED_OK:
            detail = ""
            if os.path.exists(err_path):
                with open(err_path, encoding="utf-8") as fh:
                    tail = fh.read().strip().splitlines()
                detail = tail[-1] if tail else ""
            failure = f"child exited {code} before the kill point: {detail}"
    else:
        try:
            _run_child_until_kill(
                workload, seed, run_dir, kill_events, kernel, durable_opts
            )
        except Exception as exc:  # abandoned, never synced — a soft crash
            failure = f"recording run raised: {exc!r}"
    corrupted_path = None
    if failure is None and corrupt is not None:
        from .durable import corrupt_latest_envelope, corrupt_wal_tail

        if corrupt == "envelope":
            corrupted_path = corrupt_latest_envelope(run_dir)
        elif corrupt == "wal":
            corrupted_path = corrupt_wal_tail(run_dir)
        else:
            raise ValueError(f"corrupt must be 'envelope' or 'wal', got {corrupt!r}")
        if corrupted_path is None:
            # Nothing on disk to damage means the case proves nothing —
            # surface that instead of green-lighting a no-op.
            failure = (
                f"nothing to corrupt for mode {corrupt!r} at "
                f"kill_events={kill_events} — pick a later kill point"
            )
    durable_stats: dict = {}
    if failure is None:
        try:
            resumed = HopeSystem.resume(
                run_dir, workload.build, seed=seed,
                latency=ConstantLatency(1.0), kernel=kernel,
                fossil_collect=True, fossil_interval=_KILL_FOSSIL_INTERVAL,
                durable_opts=dict(durable_opts),
            )
            resumed.run(max_events=workload.max_events)
            durable_stats = resumed.stats()["durable"]
            stuck = sorted(
                name for name, proc in resumed.procs.items() if not proc.done
            )
            committed = committed_state(resumed)
            if stuck:
                failure = f"stuck processes after resume: {stuck}"
            elif committed != twin.committed:
                diff = sorted(
                    name for name in set(committed) | set(twin.committed)
                    if committed.get(name) != twin.committed.get(name)
                )
                failure = (
                    f"resumed committed state diverged from twin for {diff}"
                )
            elif corrupted_path is not None:
                detected = (
                    durable_stats.get("envelopes_rejected", 0)
                    if corrupt == "envelope"
                    else durable_stats.get("wal_records_discarded", 0)
                )
                if detected <= 0:
                    failure = (
                        f"{corrupt} corruption was not detected by recovery "
                        "(silent acceptance of damaged state)"
                    )
        except EventLimitExceeded as exc:
            failure = f"livelock after resume: {exc}"
        except Exception as exc:
            failure = f"resume failed: {exc!r}"
    if own_dir and failure is None and not keep_dir:
        shutil.rmtree(run_dir, ignore_errors=True)
        run_dir = None
    return KillResumeResult(
        workload.name, seed, kill_events, kill_frac, corrupt,
        corrupted_path, failure, durable_stats, run_dir,
    )


def run_kill_resume_matrix(
    workloads: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = (1, 2, 3),
    fracs: Iterable[float] = KILL_FRACS,
    *,
    corruption_cases: bool = True,
    kernel: str = "wheel",
    in_process: bool = False,
) -> dict:
    """Sweep workloads × seeds × seeded crash points (plus one envelope-
    and one WAL-corruption case per workload); returns a report dict."""
    names = list(workloads) if workloads is not None else list(KILL_RESUME_WORKLOADS)
    seeds = list(seeds)
    fracs = list(fracs)
    results: list[KillResumeResult] = []
    for wname in names:
        for seed in seeds:
            for frac in fracs:
                results.append(run_kill_resume_case(
                    wname, seed, frac, kernel=kernel, in_process=in_process,
                ))
        if corruption_cases:
            # Late kill points so there is sealed state to damage.
            for mode in ("envelope", "wal"):
                results.append(run_kill_resume_case(
                    wname, seeds[0], max(fracs), corrupt=mode,
                    kernel=kernel, in_process=in_process,
                ))
    failures = [r for r in results if not r.ok]
    return {
        "cases": results,
        "total": len(results),
        "passed": len(results) - len(failures),
        "failures": failures,
    }


def format_kill_report(report: dict) -> str:
    """Human-readable kill/resume summary (what ``chaos --kill-at`` prints)."""
    lines = [
        f"kill/resume matrix: {report['passed']}/{report['total']} cases passed"
    ]
    for result in report["cases"]:
        ds = result.durable_stats or {}
        mode = f"corrupt={result.corrupt}" if result.corrupt else f"frac={result.frac:g}"
        lines.append(
            f"  {result.workload:<7} seed={result.seed} kill@{result.kill_events:<6} "
            f"{mode:<16} {'ok' if result.ok else 'FAIL':<4} "
            f"gen={ds.get('resumed_generation')} "
            f"injected={ds.get('injected_messages', 0)} "
            f"rejected={ds.get('envelopes_rejected', 0)} "
            f"torn={ds.get('wal_records_discarded', 0)}"
        )
        if not result.ok:
            lines.append(f"        failure: {result.failure}")
            if result.run_dir:
                lines.append(f"        run dir kept: {result.run_dir}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def _shrink_candidates(plan: FaultPlan) -> Iterable[tuple[str, FaultPlan]]:
    """Structurally smaller plans, most aggressive first."""
    # 1. drop each partition outright
    for index in range(len(plan.partitions)):
        kept = plan.partitions[:index] + plan.partitions[index + 1 :]
        yield (f"-partition[{index}]", FaultPlan(plan.default, plan.links, kept))
    # 2. zero each nonzero knob (default first, then per-link entries)
    entries: list[tuple[Optional[tuple[str, str]], LinkFaults]] = [(None, plan.default)]
    entries.extend(plan.links.items())
    for key, faults in entries:
        where = "default" if key is None else f"{key[0]}->{key[1]}"
        for field in ("drop", "duplicate", "jitter"):
            if getattr(faults, field) > 0.0:
                yield (
                    f"{where}.{field}=0",
                    _with_link(plan, key, faults.replace(**{field: 0.0})),
                )
        if faults.reorder > 0.0:
            yield (
                f"{where}.reorder=0",
                _with_link(plan, key, faults.replace(reorder=0.0, reorder_window=0.0)),
            )
    # 3. halve each nonzero knob
    for key, faults in entries:
        where = "default" if key is None else f"{key[0]}->{key[1]}"
        for field in ("drop", "duplicate", "reorder", "jitter"):
            value = getattr(faults, field)
            if value > 0.0:
                yield (
                    f"{where}.{field}/2",
                    _with_link(plan, key, faults.replace(**{field: value / 2.0})),
                )


def _with_link(
    plan: FaultPlan, key: Optional[tuple[str, str]], faults: LinkFaults
) -> FaultPlan:
    if key is None:
        return FaultPlan(faults, plan.links, plan.partitions)
    links = dict(plan.links)
    links[key] = faults
    return FaultPlan(plan.default, links, plan.partitions)


def shrink_plan(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    max_runs: int = 40,
) -> tuple[FaultPlan, int]:
    """Greedy shrink: repeatedly adopt the first structurally smaller
    plan that still fails, until none does (or the run budget is spent).
    Returns the minimal plan found and how many candidate runs it cost."""
    runs = 0
    current = plan
    progress = True
    while progress and runs < max_runs:
        progress = False
        for _label, candidate in _shrink_candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current, runs


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------
def run_matrix(
    workloads: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = (1, 2, 3),
    plans: Optional[dict[str, FaultPlan]] = None,
    reliable: Any = True,
    detector: Any = False,
    repro_dir: str = "chaos-repros",
    verify_determinism: bool = True,
    max_events: Optional[int] = None,
) -> dict:
    """Sweep seeds × fault plans × workloads; returns the report dict.

    Each faulty case is compared against its fault-free twin (same seed,
    same workload, ``faults=None`` — computed once per pair).  Failures
    are shrunk to minimal reproducers written under ``repro_dir``.
    """
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    seeds = list(seeds)
    results: list[CaseResult] = []
    repro_files: list[str] = []
    determinism_checked = 0
    for wname in names:
        workload = WORKLOADS[wname]
        plan_table = plans if plans is not None else standard_plans(wname)
        twins: dict[int, dict[str, tuple]] = {}
        for seed in seeds:
            twin_case = run_case(
                workload, seed, None, plan_name="fault-free",
                reliable=reliable, detector=detector, max_events=max_events,
            )
            if twin_case.failure is not None:
                raise InvariantViolation(
                    f"fault-free twin failed ({wname}, seed={seed}): "
                    f"{twin_case.failure}"
                )
            twins[seed] = twin_case.committed
        for plan_name, plan in plan_table.items():
            for seed in seeds:
                result = run_case(
                    workload, seed, plan, plan_name=plan_name,
                    reliable=reliable, detector=detector,
                    twin=twins[seed], max_events=max_events,
                )
                results.append(result)
                if verify_determinism and result.ok and seed == seeds[0]:
                    rerun = run_case(
                        workload, seed, plan, plan_name=plan_name,
                        reliable=reliable, detector=detector,
                        twin=twins[seed], max_events=max_events,
                    )
                    determinism_checked += 1
                    if rerun.fingerprint != result.fingerprint:
                        result.failure = (
                            "nondeterministic: re-run produced a different "
                            "trace fingerprint"
                        )
                if not result.ok:
                    repro_files.append(
                        _write_reproducer(
                            result, workload, reliable, detector,
                            twins[seed], repro_dir,
                        )
                    )
    failures = [r for r in results if not r.ok]
    return {
        "cases": results,
        "total": len(results),
        "passed": len(results) - len(failures),
        "failures": failures,
        "determinism_checked": determinism_checked,
        "repro_files": repro_files,
    }


def _write_reproducer(
    result: CaseResult,
    workload: ChaosWorkload,
    reliable: Any,
    detector: Any,
    twin: dict[str, tuple],
    repro_dir: str,
) -> str:
    """Shrink the failing plan and write the minimal reproducer to disk."""
    def still_fails(candidate: FaultPlan) -> bool:
        probe = run_case(
            workload, result.seed, candidate, plan_name="shrink-probe",
            reliable=reliable, detector=detector, twin=twin,
        )
        return probe.failure is not None

    minimal, shrink_runs = (
        shrink_plan(result.plan, still_fails)
        if result.plan is not None
        else (None, 0)
    )
    path = os.path.join(
        repro_dir,
        f"chaos-repro-{result.workload}-{result.plan_name}-seed{result.seed}.json",
    )
    payload = {
        "workload": result.workload,
        "seed": result.seed,
        "failure": result.failure,
        "plan": minimal.to_dict() if minimal is not None else None,
        "original_plan": result.plan.to_dict() if result.plan is not None else None,
        "shrink_runs": shrink_runs,
        "command": (
            f"python -m repro.cli chaos --repro {path}"
        ),
    }
    write_reproducer(path, payload)
    return path


def write_reproducer(path: str, payload: dict) -> str:
    """Write one JSON reproducer; the shared writer for every harness.

    Both the chaos matrix and the DPOR explorer (:mod:`repro.verify.dpor`)
    emit their minimal counterexamples through this function, so
    reproducer files share one on-disk format: a stable, sorted,
    indented JSON object whose ``command`` field replays it.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def load_reproducer(path: str) -> tuple[ChaosWorkload, int, Optional[FaultPlan]]:
    """Parse and validate a reproducer file; every error names the
    offending field so a hand-edited file fails with a pointer, not a
    stack trace."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object, got {type(payload).__name__}")
    if "workload" not in payload:
        raise ValueError(f"{path}: field 'workload' is missing")
    wname = payload["workload"]
    if wname not in WORKLOADS:
        raise ValueError(
            f"{path}: field 'workload': unknown workload {wname!r} "
            f"(expected one of {sorted(WORKLOADS)})"
        )
    if "seed" not in payload:
        raise ValueError(f"{path}: field 'seed' is missing")
    seed = payload["seed"]
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(
            f"{path}: field 'seed': expected an integer, got {type(seed).__name__}"
        )
    plan = None
    if payload.get("plan") is not None:
        try:
            plan = FaultPlan.from_dict(payload["plan"])
        except (ValueError, TypeError, KeyError) as exc:
            raise ValueError(f"{path}: field 'plan': {exc}") from None
    return WORKLOADS[wname], seed, plan


def run_reproducer(path: str) -> CaseResult:
    """Re-run a reproducer file written by :func:`run_matrix`."""
    workload, seed, plan = load_reproducer(path)
    twin_case = run_case(workload, seed, None, plan_name="fault-free")
    return run_case(
        workload, seed, plan,
        plan_name="repro", twin=twin_case.committed,
    )


def format_report(report: dict) -> str:
    """Human-readable matrix summary (what the CLI prints)."""
    lines = [
        f"chaos matrix: {report['passed']}/{report['total']} cases passed, "
        f"{report['determinism_checked']} determinism re-runs"
    ]
    for result in report["cases"]:
        stats = result.stats
        fault_info = stats.get("faults", {})
        lines.append(
            f"  {result.workload:<5} seed={result.seed} plan={result.plan_name:<11} "
            f"{'ok' if result.ok else 'FAIL':<4} "
            f"t={result.final_time:8.2f} rollbacks={stats.get('rollbacks', 0):<3} "
            f"dropped={fault_info.get('dropped', 0) + fault_info.get('partition_dropped', 0):<3} "
            f"retries={stats.get('reliable', {}).get('retries', 0)}"
        )
        if not result.ok:
            lines.append(f"        failure: {result.failure}")
    for path in report["repro_files"]:
        lines.append(f"  reproducer written: {path}")
    return "\n".join(lines)
