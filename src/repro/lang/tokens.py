"""Token definitions for the mini-HOPE language."""

from __future__ import annotations

from dataclasses import dataclass

# token kinds
NAME = "NAME"
NUMBER = "NUMBER"
STRING = "STRING"
KEYWORD = "KEYWORD"
OP = "OP"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "process", "func", "var", "if", "else", "while", "return", "skip",
        "true", "false", "nil",
    }
)

#: multi-character operators first so the lexer can match greedily
OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||",
    "(", ")", "{", "}", "[", "]", ",", ";", "=",
    "<", ">", "+", "-", "*", "/", "%", "!",
)

#: the built-in functions of the language; HOPE primitives are just calls
BUILTINS = frozenset(
    {
        "guess", "affirm", "deny", "free_of", "aid_init",
        "send", "recv", "reply", "call", "emit", "compute", "now", "random",
        "payload", "sender", "tuple", "len", "nth", "str",
    }
)

#: expected argument counts (None = variadic); checked statically
BUILTIN_ARITY = {
    "guess": 1,
    "affirm": 1,
    "deny": 1,
    "free_of": 1,
    "aid_init": (0, 1),
    "send": 2,
    "recv": (0, 1),
    "reply": 2,
    "call": 2,
    "emit": 1,
    "compute": 1,
    "now": 0,
    "random": 0,
    "payload": 1,
    "sender": 1,
    "tuple": None,
    "len": 1,
    "nth": 2,
    "str": 1,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/col)."""

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r} @{self.line}:{self.col})"
