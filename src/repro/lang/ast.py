"""AST node classes for the mini-HOPE language.

Plain dataclasses; every node carries its source line for error
reporting.  The interpreter walks these directly (no bytecode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Node:
    line: int


# ---------------------------------------------------------------- expressions
@dataclass(frozen=True)
class Literal(Node):
    value: object


@dataclass(frozen=True)
class Var(Node):
    name: str


@dataclass(frozen=True)
class Unary(Node):
    op: str                  # '!' or '-'
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str                  # arithmetic / comparison / logic
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class CallExpr(Node):
    """A builtin invocation — HOPE primitives included."""

    func: str
    args: tuple


@dataclass(frozen=True)
class Index(Node):
    base: "Expr"
    index: "Expr"


Expr = object  # union of the above, kept loose for the tree-walker


# ---------------------------------------------------------------- statements
@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    init: Optional[Expr]


@dataclass(frozen=True)
class Assign(Node):
    name: str
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr


@dataclass(frozen=True)
class If(Node):
    cond: Expr
    then: tuple
    otherwise: tuple


@dataclass(frozen=True)
class While(Node):
    cond: Expr
    body: tuple


@dataclass(frozen=True)
class Return(Node):
    value: Optional[Expr]


@dataclass(frozen=True)
class Skip(Node):
    pass


# ---------------------------------------------------------------- top level
@dataclass(frozen=True)
class ProcessDef(Node):
    name: str
    params: tuple
    body: tuple


@dataclass(frozen=True)
class FuncDef(Node):
    """A user-defined function, callable from any process (may use effects)."""

    name: str
    params: tuple
    body: tuple


@dataclass(frozen=True)
class Program(Node):
    processes: tuple = field(default_factory=tuple)
    functions: tuple = field(default_factory=tuple)

    def process(self, name: str) -> ProcessDef:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise KeyError(f"no process named {name!r}")

    def function(self, name: str) -> FuncDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def names(self) -> list[str]:
        return [proc.name for proc in self.processes]

    def function_names(self) -> list[str]:
        return [fn.name for fn in self.functions]
