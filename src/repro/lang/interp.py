"""Tree-walking interpreter: mini-HOPE processes as HOPE runtime bodies.

Each ``process`` definition compiles (by closure, not codegen) to a
generator function suitable for :meth:`repro.runtime.HopeSystem.spawn`.
Effectful builtins (``guess``, ``recv``, ``call``, ...) yield the
corresponding runtime effects; everything else evaluates locally.

Determinism note: the interpreter's state is ordinary Python locals built
from the effect results, so replay-based rollback works for interpreted
programs exactly as it does for hand-written bodies.
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime import HopeSystem, call as rpc_call
from . import ast
from .check import check_program
from .parser import parse


class HopeLangError(Exception):
    """Runtime failure inside an interpreted program."""


class _ReturnSignal(Exception):
    """Internal: unwinds the interpreter on ``return``."""

    def __init__(self, value: Any) -> None:
        self.value = value


class _Env:
    """A mutable variable scope (one per process instance)."""

    def __init__(self, initial: Optional[dict] = None) -> None:
        self.values: dict[str, Any] = dict(initial or {})

    def get(self, name: str, line: int) -> Any:
        if name not in self.values:
            raise HopeLangError(f"undefined variable {name!r} (line {line})")
        return self.values[name]

    def set(self, name: str, value: Any) -> None:
        self.values[name] = value


def compile_program(source: str) -> "CompiledProgram":
    """Parse + statically check + wrap a mini-HOPE program."""
    program = parse(source)
    report = check_program(program)
    report.raise_on_error()
    return CompiledProgram(program, report.warnings)


class _Ctx:
    """Interpreter context: the HOPE facade, the program's functions, and
    the per-process RPC correlation counter (deterministic under replay)."""

    __slots__ = ("p", "funcs", "_corr")

    def __init__(self, p, funcs: dict) -> None:
        self.p = p
        self.funcs = funcs
        self._corr = 0

    def next_corr(self) -> int:
        value = self._corr
        self._corr += 1
        return value


class CompiledProgram:
    """A checked program whose processes can be spawned on a HopeSystem."""

    def __init__(self, program: ast.Program, warnings: list) -> None:
        self.program = program
        self.warnings = warnings
        self.funcs = {fn.name: fn for fn in program.functions}

    def names(self) -> list[str]:
        return self.program.names()

    def body(self, process_name: str):
        """The generator function implementing ``process_name``."""
        definition = self.program.process(process_name)
        funcs = self.funcs

        def run(p, *args):
            if len(args) != len(definition.params):
                raise HopeLangError(
                    f"process {process_name!r} expects {len(definition.params)} "
                    f"argument(s), got {len(args)}"
                )
            ctx = _Ctx(p, funcs)
            env = _Env(dict(zip(definition.params, args)))
            try:
                yield from _exec_block(ctx, env, definition.body)
            except _ReturnSignal as signal:
                return signal.value
            return None

        run.__name__ = f"hope_lang_{process_name}"
        return run

    def spawn(self, system: HopeSystem, instance: str, process_name: str, *args):
        """Spawn an instance of ``process_name`` under the name ``instance``."""
        return system.spawn(instance, self.body(process_name), *args)


# ---------------------------------------------------------------------------
# statement execution
# ---------------------------------------------------------------------------
def _exec_block(ctx: _Ctx, env: _Env, body: tuple):
    for stmt in body:
        yield from _exec_stmt(ctx, env, stmt)


def _exec_stmt(ctx: _Ctx, env: _Env, stmt):
    if isinstance(stmt, ast.VarDecl):
        value = None
        if stmt.init is not None:
            value = yield from _eval(ctx, env, stmt.init)
        env.set(stmt.name, value)
    elif isinstance(stmt, ast.Assign):
        value = yield from _eval(ctx, env, stmt.value)
        env.set(stmt.name, value)
    elif isinstance(stmt, ast.ExprStmt):
        yield from _eval(ctx, env, stmt.expr)
    elif isinstance(stmt, ast.If):
        cond = yield from _eval(ctx, env, stmt.cond)
        if cond:
            yield from _exec_block(ctx, env, stmt.then)
        else:
            yield from _exec_block(ctx, env, stmt.otherwise)
    elif isinstance(stmt, ast.While):
        while True:
            cond = yield from _eval(ctx, env, stmt.cond)
            if not cond:
                break
            yield from _exec_block(ctx, env, stmt.body)
    elif isinstance(stmt, ast.Return):
        value = None
        if stmt.value is not None:
            value = yield from _eval(ctx, env, stmt.value)
        raise _ReturnSignal(value)
    elif isinstance(stmt, ast.Skip):
        pass
    else:  # pragma: no cover - parser produces only the above
        raise HopeLangError(f"unknown statement {stmt!r}")


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------
def _eval(ctx: _Ctx, env: _Env, expr):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Var):
        return env.get(expr.name, expr.line)
    if isinstance(expr, ast.Unary):
        value = yield from _eval(ctx, env, expr.operand)
        if expr.op == "!":
            return not value
        if expr.op == "-":
            return -value
        raise HopeLangError(f"unknown unary {expr.op!r}")
    if isinstance(expr, ast.Binary):
        return (yield from _eval_binary(ctx, env, expr))
    if isinstance(expr, ast.Index):
        base = yield from _eval(ctx, env, expr.base)
        index = yield from _eval(ctx, env, expr.index)
        try:
            return base[index]
        except (TypeError, KeyError, IndexError) as exc:
            raise HopeLangError(f"bad index (line {expr.line}): {exc}") from exc
    if isinstance(expr, ast.CallExpr):
        return (yield from _eval_call(ctx, env, expr))
    raise HopeLangError(f"unknown expression {expr!r}")


def _eval_binary(ctx: _Ctx, env: _Env, expr: ast.Binary):
    if expr.op == "&&":
        left = yield from _eval(ctx, env, expr.left)
        if not left:
            return False
        right = yield from _eval(ctx, env, expr.right)
        return bool(right)
    if expr.op == "||":
        left = yield from _eval(ctx, env, expr.left)
        if left:
            return True
        right = yield from _eval(ctx, env, expr.right)
        return bool(right)
    left = yield from _eval(ctx, env, expr.left)
    right = yield from _eval(ctx, env, expr.right)
    ops = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "%": lambda a, b: a % b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    try:
        return ops[expr.op](left, right)
    except TypeError as exc:
        raise HopeLangError(
            f"bad operands for {expr.op!r} (line {expr.line}): {exc}"
        ) from exc


def _eval_call(ctx: _Ctx, env: _Env, expr: ast.CallExpr):
    func = expr.func
    args = []
    for arg in expr.args:
        value = yield from _eval(ctx, env, arg)
        args.append(value)
    # --- user-defined functions (may themselves use effects) ---
    definition = ctx.funcs.get(func)
    if definition is not None:
        if len(args) != len(definition.params):
            raise HopeLangError(
                f"{func}() takes {len(definition.params)} argument(s), "
                f"got {len(args)} (line {expr.line})"
            )
        frame = _Env(dict(zip(definition.params, args)))
        try:
            yield from _exec_block(ctx, frame, definition.body)
        except _ReturnSignal as signal:
            return signal.value
        return None
    p = ctx.p
    # --- HOPE primitives ---
    if func == "aid_init":
        name = args[0] if args else "aid"
        return (yield p.aid_init(name))
    if func == "guess":
        return (yield p.guess(args[0]))
    if func == "affirm":
        return (yield p.affirm(args[0]))
    if func == "deny":
        return (yield p.deny(args[0]))
    if func == "free_of":
        return (yield p.free_of(args[0]))
    # --- communication ---
    if func == "send":
        return (yield p.send(args[0], args[1]))
    if func == "recv":
        timeout = args[0] if args else None
        return (yield p.recv(timeout=timeout))
    if func == "payload":
        # Servers see RPC requests unwrapped to their body; reply() still
        # takes the original message object.
        inner = args[0].payload
        from ..runtime.messages import RpcRequest

        return inner.body if isinstance(inner, RpcRequest) else inner
    if func == "sender":
        return args[0].src
    if func == "reply":
        return (yield p.reply(args[0], args[1]))
    if func == "call":
        return (yield from rpc_call(p, args[0], args[1], ctx.next_corr()))
    # --- local ---
    if func == "emit":
        return (yield p.emit(args[0]))
    if func == "compute":
        return (yield p.compute(float(args[0])))
    if func == "now":
        return (yield p.now())
    if func == "random":
        return (yield p.random())
    if func == "tuple":
        return tuple(args)
    if func == "len":
        return len(args[0])
    if func == "nth":
        return args[0][args[1]]
    if func == "str":
        return str(args[0])
    raise HopeLangError(f"unknown function {func!r} (line {expr.line})")
