"""Hand-written lexer for the mini-HOPE language."""

from __future__ import annotations

from .tokens import EOF, KEYWORD, KEYWORDS, NAME, NUMBER, OP, OPERATORS, STRING, Token


class LexError(SyntaxError):
    """Tokenization failure, with source position in the message."""


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token.

    Comments run from ``//`` to end of line.  Strings are double-quoted
    with ``\\"`` and ``\\\\`` escapes.
    """
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = KEYWORD if word in KEYWORDS else NAME
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(Token(NUMBER, source[start:i], line, col))
            col += i - start
            continue
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise LexError(f"unterminated string at {start_line}:{start_col}")
                c = source[i]
                if c == "\n":
                    raise LexError(f"newline in string at {start_line}:{start_col}")
                if c == "\\":
                    if i + 1 >= n:
                        raise LexError(f"dangling escape at {line}:{col}")
                    escape = source[i + 1]
                    mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    if escape not in mapping:
                        raise LexError(f"unknown escape \\{escape} at {line}:{col}")
                    chunks.append(mapping[escape])
                    i += 2
                    col += 2
                    continue
                if c == '"':
                    i += 1
                    col += 1
                    break
                chunks.append(c)
                i += 1
                col += 1
            tokens.append(Token(STRING, "".join(chunks), start_line, start_col))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(OP, op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at {line}:{col}")
    tokens.append(Token(EOF, "", line, col))
    return tokens
