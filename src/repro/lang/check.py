"""Static checks for mini-HOPE programs.

Checked before interpretation:

* duplicate process names;
* use of undeclared variables, assignment to undeclared variables;
* unknown functions and wrong builtin arity;
* ``recv``/``guess``-style primitives used as bare names;
* (warning) more than one ``affirm``/``deny``/``free_of`` of the same AID
  variable along one straight-line path — §5.2 calls that a user error,
  and it is the kind of bug static scanning can often catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .tokens import BUILTIN_ARITY, BUILTINS


class CheckError(Exception):
    """A static error that would make the program meaningless."""


@dataclass
class CheckReport:
    """Outcome of a static check: hard errors plus advisory warnings."""

    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise CheckError("; ".join(self.errors))


def check_program(program: ast.Program) -> CheckReport:
    """Run all static checks; returns a :class:`CheckReport`."""
    report = CheckReport()
    user_funcs = {}
    for fn in program.functions:
        if fn.name in BUILTINS:
            report.errors.append(
                f"function {fn.name!r} shadows a builtin (line {fn.line})"
            )
        if fn.name in user_funcs:
            report.errors.append(
                f"duplicate function name {fn.name!r} (line {fn.line})"
            )
        user_funcs[fn.name] = len(fn.params)
    seen = set()
    for proc in program.processes:
        if proc.name in seen:
            report.errors.append(f"duplicate process name {proc.name!r} (line {proc.line})")
        seen.add(proc.name)
        _check_body(proc.name, proc.params, proc.body, report, user_funcs)
    for fn in program.functions:
        _check_body(f"func {fn.name}", fn.params, fn.body, report, user_funcs)
    return report


def _check_body(owner, params, body, report: CheckReport, user_funcs: dict) -> None:
    declared = set(params)
    _check_block(body, declared, report, owner, resolved=set(), user_funcs=user_funcs)


def _check_block(
    body: tuple,
    declared: set,
    report: CheckReport,
    proc_name: str,
    resolved: set,
    user_funcs: dict,
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                _check_expr(stmt.init, declared, report, proc_name, resolved, user_funcs)
            if stmt.name in declared:
                report.warnings.append(
                    f"{proc_name}: 'var {stmt.name}' shadows an existing "
                    f"variable (line {stmt.line})"
                )
            declared.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if stmt.name not in declared:
                report.errors.append(
                    f"{proc_name}: assignment to undeclared variable "
                    f"{stmt.name!r} (line {stmt.line})"
                )
            _check_expr(stmt.value, declared, report, proc_name, resolved, user_funcs)
        elif isinstance(stmt, ast.ExprStmt):
            _check_expr(stmt.expr, declared, report, proc_name, resolved, user_funcs)
        elif isinstance(stmt, ast.If):
            _check_expr(stmt.cond, declared, report, proc_name, resolved, user_funcs)
            # branches get copies: straight-line resolution tracking only
            _check_block(stmt.then, set(declared), report, proc_name, set(resolved), user_funcs)
            _check_block(stmt.otherwise, set(declared), report, proc_name, set(resolved), user_funcs)
        elif isinstance(stmt, ast.While):
            _check_expr(stmt.cond, declared, report, proc_name, resolved, user_funcs)
            _check_block(stmt.body, set(declared), report, proc_name, set(resolved), user_funcs)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _check_expr(stmt.value, declared, report, proc_name, resolved, user_funcs)
        elif isinstance(stmt, ast.Skip):
            pass
        else:  # pragma: no cover - parser produces only the above
            report.errors.append(f"{proc_name}: unknown statement {stmt!r}")


def _check_expr(expr, declared, report, proc_name, resolved, user_funcs) -> None:
    if isinstance(expr, ast.Literal):
        return
    if isinstance(expr, ast.Var):
        if expr.name not in declared:
            report.errors.append(
                f"{proc_name}: use of undeclared variable {expr.name!r} "
                f"(line {expr.line})"
            )
        return
    if isinstance(expr, ast.Unary):
        _check_expr(expr.operand, declared, report, proc_name, resolved, user_funcs)
        return
    if isinstance(expr, ast.Binary):
        _check_expr(expr.left, declared, report, proc_name, resolved, user_funcs)
        _check_expr(expr.right, declared, report, proc_name, resolved, user_funcs)
        return
    if isinstance(expr, ast.Index):
        _check_expr(expr.base, declared, report, proc_name, resolved, user_funcs)
        _check_expr(expr.index, declared, report, proc_name, resolved, user_funcs)
        return
    if isinstance(expr, ast.CallExpr):
        if expr.func in user_funcs:
            if len(expr.args) != user_funcs[expr.func]:
                report.errors.append(
                    f"{proc_name}: {expr.func}() takes {user_funcs[expr.func]} "
                    f"argument(s), got {len(expr.args)} (line {expr.line})"
                )
        elif expr.func not in BUILTINS:
            report.errors.append(
                f"{proc_name}: unknown function {expr.func!r} (line {expr.line})"
            )
        else:
            arity = BUILTIN_ARITY[expr.func]
            count = len(expr.args)
            bad = (
                (isinstance(arity, int) and count != arity)
                or (isinstance(arity, tuple) and count not in arity)
            )
            if bad:
                report.errors.append(
                    f"{proc_name}: {expr.func}() takes {arity} argument(s), "
                    f"got {count} (line {expr.line})"
                )
        if expr.func in ("affirm", "deny", "free_of") and expr.args:
            target = expr.args[0]
            if isinstance(target, ast.Var):
                if target.name in resolved:
                    report.warnings.append(
                        f"{proc_name}: {expr.func}({target.name}) after the AID "
                        f"was already resolved on this path (line {expr.line}) — "
                        "§5.2 calls repeated resolution a user error"
                    )
                resolved.add(target.name)
        for arg in expr.args:
            _check_expr(arg, declared, report, proc_name, resolved, user_funcs)
        return
    report.errors.append(f"{proc_name}: unknown expression {expr!r}")
