"""Pretty-printer (unparser) for mini-HOPE ASTs.

``pretty(parse(src))`` produces canonical source that re-parses to a
structurally identical program — the round-trip property the fuzz tests
check.  Useful for emitting generated programs and for diffing programs
structurally.
"""

from __future__ import annotations

from . import ast

_INDENT = "    "

#: binary operator precedence, matching the parser
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def pretty(program: ast.Program) -> str:
    """Render a whole program (functions first, then processes)."""
    chunks = []
    for keyword, definitions in (
        ("func", program.functions),
        ("process", program.processes),
    ):
        for definition in definitions:
            params = ", ".join(definition.params)
            chunks.append(f"{keyword} {definition.name}({params}) {{")
            chunks.extend(_stmts(definition.body, 1))
            chunks.append("}")
            chunks.append("")
    return "\n".join(chunks).rstrip() + "\n"


def _stmts(body: tuple, depth: int) -> list:
    lines = []
    pad = _INDENT * depth
    for stmt in body:
        lines.extend(_stmt(stmt, depth, pad))
    return lines


def _stmt(stmt, depth: int, pad: str) -> list:
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is None:
            return [f"{pad}var {stmt.name};"]
        return [f"{pad}var {stmt.name} = {_expr(stmt.init)};"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {_expr(stmt.value)};"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{_expr(stmt.expr)};"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {_expr(stmt.value)};"]
    if isinstance(stmt, ast.Skip):
        return [f"{pad}skip;"]
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({_expr(stmt.cond)}) {{"]
        lines.extend(_stmts(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({_expr(stmt.cond)}) {{"]
        lines.extend(_stmts(stmt.then, depth + 1))
        if stmt.otherwise:
            lines.append(f"{pad}}} else {{")
            lines.extend(_stmts(stmt.otherwise, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot pretty-print statement {stmt!r}")


def _expr(expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_expr(expr.operand, 6)}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        # left-associative: the right child needs parens at equal precedence
        left = _expr(expr.left, prec)
        right = _expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Index):
        return f"{_expr(expr.base, 7)}[{_expr(expr.index)}]"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"cannot pretty-print expression {expr!r}")


def _literal(value) -> str:
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    return repr(value)


def ast_equal(a, b) -> bool:
    """Structural equality ignoring source positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, ast.Node):
        fields = [f for f in a.__dataclass_fields__ if f != "line"]
        return all(ast_equal(getattr(a, f), getattr(b, f)) for f in fields)
    return a == b
