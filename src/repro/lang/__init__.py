"""Mini-HOPE: a tiny language embedding the HOPE primitives.

HOPE "is a programming model for optimism, embodied as a set of
primitives designed to be embedded in some other programming language"
(§3).  This package is that embedding done twice over: a small imperative
language (lexer, parser, static checks, interpreter) whose programs run
as processes on the HOPE runtime — close enough to the paper's Figure 2
pseudocode to transcribe it almost verbatim::

    process Worker(total) {
        var PartPage = aid_init("PartPage");
        var Order = aid_init("Order");
        send("worrywart", tuple(PartPage, Order, total));
        if (guess(PartPage)) {
            skip;
        } else {
            call("server", tuple("newpage"));
        }
        guess(Order);
        send("server_oneway", tuple("print", "Summary", 1));
    }
"""

from .ast import Program
from .check import CheckError, CheckReport, check_program
from .interp import CompiledProgram, HopeLangError, compile_program
from .lexer import LexError, tokenize
from .parser import ParseError, parse

__all__ = [
    "tokenize",
    "parse",
    "compile_program",
    "check_program",
    "CompiledProgram",
    "Program",
    "CheckReport",
    "LexError",
    "ParseError",
    "CheckError",
    "HopeLangError",
]
