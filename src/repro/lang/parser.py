"""Recursive-descent parser for the mini-HOPE language.

Grammar (EBNF-ish)::

    program    := (processdef | funcdef)*
    processdef := "process" NAME "(" [params] ")" block
    funcdef    := "func" NAME "(" [params] ")" block
    block      := "{" stmt* "}"
    stmt       := "var" NAME ["=" expr] ";"
                | NAME "=" expr ";"
                | "if" "(" expr ")" block ["else" (block | if-stmt)]
                | "while" "(" expr ")" block
                | "return" [expr] ";"
                | "skip" ";"
                | expr ";"
    expr       := or  (precedence: || < && < ! < cmp < add < mul < unary)
    primary    := NUMBER | STRING | true | false | nil
                | NAME | NAME "(" [args] ")" | "(" expr ")"
    postfix    := primary ("[" expr "]")*
"""

from __future__ import annotations

from . import ast
from .lexer import tokenize
from .tokens import EOF, KEYWORD, NAME, NUMBER, OP, STRING, Token


class ParseError(SyntaxError):
    """Parsing failure with source position."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- helpers
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def match(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r} but found {token.value or token.kind!r} "
                f"at {token.line}:{token.col}"
            )
        return self.advance()

    # ------------------------------------------------------------- program
    def program(self) -> ast.Program:
        processes = []
        functions = []
        first_line = self.peek().line
        while not self.check(EOF):
            if self.check(KEYWORD, "func"):
                functions.append(self.func_def())
            else:
                processes.append(self.process_def())
        return ast.Program(
            line=first_line,
            processes=tuple(processes),
            functions=tuple(functions),
        )

    def process_def(self) -> ast.ProcessDef:
        start = self.expect(KEYWORD, "process")
        name, params, body = self._def_tail()
        return ast.ProcessDef(line=start.line, name=name, params=params, body=body)

    def func_def(self) -> ast.FuncDef:
        start = self.expect(KEYWORD, "func")
        name, params, body = self._def_tail()
        return ast.FuncDef(line=start.line, name=name, params=params, body=body)

    def _def_tail(self) -> tuple:
        name = self.expect(NAME).value
        self.expect(OP, "(")
        params = []
        if not self.check(OP, ")"):
            params.append(self.expect(NAME).value)
            while self.match(OP, ","):
                params.append(self.expect(NAME).value)
        self.expect(OP, ")")
        body = self.block()
        return name, tuple(params), body

    def block(self) -> tuple:
        self.expect(OP, "{")
        statements = []
        while not self.check(OP, "}"):
            statements.append(self.statement())
        self.expect(OP, "}")
        return tuple(statements)

    # ------------------------------------------------------------ statements
    def statement(self):
        token = self.peek()
        if self.check(KEYWORD, "var"):
            return self.var_decl()
        if self.check(KEYWORD, "if"):
            return self.if_stmt()
        if self.check(KEYWORD, "while"):
            return self.while_stmt()
        if self.check(KEYWORD, "return"):
            self.advance()
            value = None
            if not self.check(OP, ";"):
                value = self.expression()
            self.expect(OP, ";")
            return ast.Return(line=token.line, value=value)
        if self.check(KEYWORD, "skip"):
            self.advance()
            self.expect(OP, ";")
            return ast.Skip(line=token.line)
        if self.check(NAME) and self.tokens[self.pos + 1].kind == OP \
                and self.tokens[self.pos + 1].value == "=":
            name = self.advance().value
            self.advance()  # '='
            value = self.expression()
            self.expect(OP, ";")
            return ast.Assign(line=token.line, name=name, value=value)
        expr = self.expression()
        self.expect(OP, ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def var_decl(self) -> ast.VarDecl:
        start = self.expect(KEYWORD, "var")
        name = self.expect(NAME).value
        init = None
        if self.match(OP, "="):
            init = self.expression()
        self.expect(OP, ";")
        return ast.VarDecl(line=start.line, name=name, init=init)

    def if_stmt(self) -> ast.If:
        start = self.expect(KEYWORD, "if")
        self.expect(OP, "(")
        cond = self.expression()
        self.expect(OP, ")")
        then = self.block()
        otherwise: tuple = ()
        if self.match(KEYWORD, "else"):
            if self.check(KEYWORD, "if"):
                otherwise = (self.if_stmt(),)
            else:
                otherwise = self.block()
        return ast.If(line=start.line, cond=cond, then=then, otherwise=otherwise)

    def while_stmt(self) -> ast.While:
        start = self.expect(KEYWORD, "while")
        self.expect(OP, "(")
        cond = self.expression()
        self.expect(OP, ")")
        body = self.block()
        return ast.While(line=start.line, cond=cond, body=body)

    # ------------------------------------------------------------ expressions
    def expression(self):
        return self.or_expr()

    def or_expr(self):
        left = self.and_expr()
        while self.check(OP, "||"):
            op = self.advance()
            right = self.and_expr()
            left = ast.Binary(line=op.line, op="||", left=left, right=right)
        return left

    def and_expr(self):
        left = self.comparison()
        while self.check(OP, "&&"):
            op = self.advance()
            right = self.comparison()
            left = ast.Binary(line=op.line, op="&&", left=left, right=right)
        return left

    def comparison(self):
        left = self.additive()
        while self.peek().kind == OP and self.peek().value in ("==", "!=", "<", "<=", ">", ">="):
            op = self.advance()
            right = self.additive()
            left = ast.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def additive(self):
        left = self.multiplicative()
        while self.peek().kind == OP and self.peek().value in ("+", "-"):
            op = self.advance()
            right = self.multiplicative()
            left = ast.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def multiplicative(self):
        left = self.unary()
        while self.peek().kind == OP and self.peek().value in ("*", "/", "%"):
            op = self.advance()
            right = self.unary()
            left = ast.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def unary(self):
        if self.check(OP, "!") or self.check(OP, "-"):
            op = self.advance()
            operand = self.unary()
            return ast.Unary(line=op.line, op=op.value, operand=operand)
        return self.postfix()

    def postfix(self):
        expr = self.primary()
        while self.check(OP, "["):
            bracket = self.advance()
            index = self.expression()
            self.expect(OP, "]")
            expr = ast.Index(line=bracket.line, base=expr, index=index)
        return expr

    def primary(self):
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            text = token.value
            value = float(text) if "." in text else int(text)
            return ast.Literal(line=token.line, value=value)
        if token.kind == STRING:
            self.advance()
            return ast.Literal(line=token.line, value=token.value)
        if token.kind == KEYWORD and token.value in ("true", "false", "nil"):
            self.advance()
            value = {"true": True, "false": False, "nil": None}[token.value]
            return ast.Literal(line=token.line, value=value)
        if token.kind == NAME:
            self.advance()
            if self.check(OP, "("):
                self.advance()
                args = []
                if not self.check(OP, ")"):
                    args.append(self.expression())
                    while self.match(OP, ","):
                        args.append(self.expression())
                self.expect(OP, ")")
                return ast.CallExpr(line=token.line, func=token.value, args=tuple(args))
            return ast.Var(line=token.line, name=token.value)
        if self.match(OP, "("):
            expr = self.expression()
            self.expect(OP, ")")
            return expr
        raise ParseError(
            f"unexpected token {token.value or token.kind!r} at {token.line}:{token.col}"
        )


def parse(source: str) -> ast.Program:
    """Parse mini-HOPE source text into a :class:`repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).program()
