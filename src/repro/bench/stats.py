"""Small numeric helpers for the benchmark harness."""

from __future__ import annotations

from typing import Optional, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def speedup(baseline: float, improved: float) -> float:
    """Fractional improvement: (baseline - improved) / baseline."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (baseline - improved) / baseline


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def find_crossover(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> Optional[float]:
    """First x where series A stops beating series B, linearly interpolated.

    Used to locate the assumption-success probability below which
    optimism no longer pays (experiment SWEEP-P).  Returns None when one
    series dominates throughout.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("series must have equal length")
    for i in range(1, len(xs)):
        d_prev = ys_a[i - 1] - ys_b[i - 1]
        d_here = ys_a[i] - ys_b[i]
        if d_prev == 0:
            return xs[i - 1]
        if (d_prev < 0) != (d_here < 0):
            # linear interpolation of the zero crossing
            t = abs(d_prev) / (abs(d_prev) + abs(d_here))
            return xs[i - 1] + t * (xs[i] - xs[i - 1])
    return None
