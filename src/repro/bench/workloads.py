"""Workload generators shared by the benchmark suite."""

from __future__ import annotations

from typing import Optional

from ..apps.call_streaming import CallStreamConfig
from ..apps.virtual_time import Job, VtWorkload
from ..baselines.timewarp import Emission
from ..sim import RandomStreams


def streaming_config(
    n_reports: int = 10,
    latency: float = 25.0,
    page_size: int = 10_000,
    n_warts: Optional[int] = None,
    local_compute: float = 1.0,
    summary_prep: float = 2.0,
    rollback_overhead: float = 0.0,
) -> CallStreamConfig:
    """A happy-path call-streaming workload (pages never fill)."""
    if n_warts is None:
        n_warts = n_reports           # fully pipelined verification
    return CallStreamConfig(
        report_lines=tuple([10] * n_reports),
        page_size=page_size,
        latency=latency,
        n_warts=n_warts,
        local_compute=local_compute,
        summary_prep=summary_prep,
        rollback_overhead=rollback_overhead,
    )


def probabilistic_config(
    n_reports: int,
    success_probability: float,
    seed: int = 0,
    latency: float = 25.0,
    rollback_overhead: float = 0.0,
    n_warts: Optional[int] = None,
) -> CallStreamConfig:
    """A call-streaming workload where each report fills the page (the
    PartPage assumption fails) with probability ``1 - success_probability``.

    Report heights are derived by tracking the server's line counter, so
    each report's outcome is exactly the drawn one regardless of history:
    successes add a single line; failures add exactly enough to exceed
    the page (which then resets via S2's newpage).
    """
    if not 0.0 <= success_probability <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {success_probability}")
    page_size = max(1000, 4 * n_reports)
    summary_lines = 1
    stream = RandomStreams(seed)["pageload"]
    lines = []
    line = 0
    for _ in range(n_reports):
        if stream.bernoulli(success_probability):
            lines.append(1)                       # line stays within the page
            line += 1 + summary_lines
        else:
            lines.append(page_size - line + 10)   # exceeds: S2 fires
            line = summary_lines                  # newpage, then the summary
    if n_warts is None:
        n_warts = n_reports
    return CallStreamConfig(
        report_lines=tuple(lines),
        page_size=page_size,
        summary_lines=summary_lines,
        latency=latency,
        n_warts=n_warts,
        rollback_overhead=rollback_overhead,
    )


def vt_workload(
    n_senders: int,
    jobs_per_sender: int,
    vt_step: float = 3.0,
    spacing: float = 1.5,
) -> VtWorkload:
    """Interleaved timestamp streams for the Time Warp comparison."""
    streams = []
    for s in range(n_senders):
        jobs = tuple(
            Job(0.5 + s * (vt_step / (n_senders + 1)) + vt_step * i, s * 1000 + i)
            for i in range(jobs_per_sender)
        )
        streams.append(jobs)
    return VtWorkload(streams=tuple(streams), send_spacing=spacing)


# ---------------------------------------------------------------------------
# chaos workloads (repro.chaos)
#
# Built for twin-equality checking under faults: every emission is
# *branch-symmetric* — the speculative (guess=True) and pessimistic
# (guess=False after a deny) executions emit the same values — which is
# the paper's own correctness contract for optimistic programs (§2: the
# guess only changes *when* work happens, not *what* is computed).  The
# committed-output multiset of a faulty run therefore has to match its
# fault-free twin's, whatever the fault plan did to message timing.
# ---------------------------------------------------------------------------


def chaos_deny_predicate(name: str, round_index: int) -> bool:
    """Deterministic affirm/deny choice (no salted ``hash()`` — this must
    be identical across interpreter runs for twin equality)."""
    return (sum(ord(c) for c in name) + 3 * round_index) % 3 == 0


def chaos_worker(p, validator: str, rounds: int):
    """Guesses an assumption per round, ships it to the validator, and
    emits a branch-symmetric record; the validator resolves the AID."""
    for i in range(rounds):
        x = yield p.aid_init(f"{p.name}-r{i}")
        yield p.guess(x)
        yield p.send(validator, ("check", x, p.name, i))
        yield p.compute(1.0)
        yield p.emit((p.name, i))
    return rounds


def chaos_validator(p, total: int):
    """Resolves each worker assumption by the deterministic predicate.

    Dead messages (retracted by a rollback upstream) never reach the
    body, so the loop index only advances on live deliveries — each
    worker round completes exactly once however often it was replayed.
    """
    for _ in range(total):
        msg = yield p.recv()
        _kind, x, name, i = msg.payload
        if chaos_deny_predicate(name, i):
            yield p.deny(x)
        else:
            yield p.affirm(x)
        yield p.emit(("checked", name, i))
    return total


def build_chaos_mesh(system, workers: int = 3, rounds: int = 3) -> None:
    """Fan-in mesh: N speculative workers against one validator.

    Exercises tagged sends, implicit guesses, definite denies with
    cross-process cascades, and speculative affirms — under whatever the
    fault plan throws at the links.
    """
    system.spawn("validator", chaos_validator, workers * rounds)
    for w in range(workers):
        system.spawn(f"w{w}", chaos_worker, "validator", rounds)


def chaos_ring_node(p, nxt: str, visits: int):
    """One ring node: receive the token, guess, emit, forward, affirm.

    Every 7th hop is denied instead of affirmed, forcing a rollback
    cascade down the ring; the re-execution forwards the same token, so
    the committed hop log is unchanged.
    """
    for _ in range(visits):
        msg = yield p.recv()
        hops = msg.payload
        x = yield p.aid_init(f"h{hops}")
        yield p.guess(x)
        yield p.emit(("hop", hops))
        if hops > 1:
            yield p.send(nxt, hops - 1)
        if hops % 7 == 0:
            yield p.deny(x)
        else:
            yield p.affirm(x)
    return visits


def chaos_ring_driver(p, first: str, total: int):
    yield p.send(first, total)
    return total


def build_chaos_ring(system, nodes: int = 4, laps: int = 2) -> None:
    """Token ring: a token circulates ``laps`` times over ``nodes``
    speculative hops, each tagged with the forwarding node's assumption."""
    names = [f"n{i}" for i in range(nodes)]
    total = nodes * laps
    for i, name in enumerate(names):
        system.spawn(name, chaos_ring_node, names[(i + 1) % nodes], laps)
    system.spawn("driver", chaos_ring_driver, names[0], total)


def counter_worker(p, judge: str, rounds: int, resume=None):
    """Commit-point worker for the durable kill/resume workload.

    Deterministic end to end (the judge's verdict is a pure function of
    the round index, and no ``p.random()`` is drawn), so the committed
    outputs are independent of crash timing — the property the durable
    twin check relies on.  ``resume=`` receives the last ``commit_point``
    state after a fossil rebase, exactly like the fossil-runtime tests.
    """
    state = resume if resume is not None else {"round": 0, "acc": 0}
    while state["round"] < rounds:
        i = state["round"]
        a = yield p.aid_init(f"{p.name}-c{i}")
        yield p.send(judge, (a, p.name, i))
        if (yield p.guess(a)):
            yield p.compute(1.0)
            state["acc"] += 3
        else:
            yield p.compute(2.0)
            state["acc"] -= 1
        yield p.emit((p.name, i, state["acc"]))
        state["round"] += 1
        yield p.commit_point(dict(state))
    return state["acc"]


def counter_judge(p, total: int, resume=None):
    """Affirms/denies each counter round by the deterministic predicate,
    snapshotting its own progress at every commit point."""
    state = resume if resume is not None else {"seen": 0}
    while state["seen"] < total:
        msg = yield p.recv()
        a, name, i = msg.payload
        yield p.compute(0.3)
        if chaos_deny_predicate(name, i):
            yield p.deny(a)
        else:
            yield p.affirm(a)
        state["seen"] += 1
        yield p.emit(("judged", name, i))
        yield p.commit_point(dict(state))
    return state["seen"]


def build_durable_counter(system, workers: int = 2, rounds: int = 4) -> None:
    """Commit-point counters judged centrally: the durable subsystem's
    reference workload (base-aware snapshots, fossil-trimmed WALs)."""
    system.spawn("judge", counter_judge, workers * rounds)
    for w in range(workers):
        system.spawn(f"c{w}", counter_worker, "judge", rounds)


def build_fanout(system, pairs: int = 4, rounds: int = 3) -> None:
    """Fan-out: ``pairs`` independent worker/validator couples.

    The parallel backend's best case — no cross-pair traffic, so shards
    proceed almost independently (the scaling benchmark co-locates each
    pair with a placement override; the oracle tests leave the default
    round-robin, which splits every pair across shards and stresses the
    cross-worker tag/resolve path instead)."""
    for i in range(pairs):
        system.spawn(f"fv{i}", chaos_validator, rounds)
        system.spawn(f"fw{i}", chaos_worker, f"fv{i}", rounds)


def repl_primary(p, replicas, updates: int):
    """Optimistic replication primary: guess each update applies
    everywhere, broadcast it tagged, emit a branch-symmetric record."""
    for i in range(updates):
        x = yield p.aid_init(f"u{i}")
        yield p.guess(x)
        for name in replicas:
            yield p.send(name, ("apply", x, i))
        yield p.compute(1.0)
        yield p.emit(("primary", i))
    return updates


def repl_replica(p, resolver: bool, updates: int):
    """Applies updates; the designated resolver replica also decides each
    update's fate by the deterministic chaos predicate.  A denied update
    is retransmitted by the primary's pessimistic re-execution (untagged,
    and the repeated deny is a no-op), so each update commits exactly
    once — the same convergence shape as :func:`chaos_validator`."""
    applied = 0
    for _ in range(updates):
        msg = yield p.recv()
        _kind, x, i = msg.payload
        if resolver:
            if chaos_deny_predicate(p.name, i):
                yield p.deny(x)
            else:
                yield p.affirm(x)
        applied += 1
        yield p.emit((p.name, "applied", i))
    return applied


def build_replication(system, replicas: int = 3, updates: int = 4) -> None:
    """Replication: one primary broadcasting speculative updates to
    ``replicas`` replicas — every message crosses shard boundaries under
    round-robin placement, the parallel backend's worst case."""
    names = [f"rep{r}" for r in range(replicas)]
    system.spawn("primary", repl_primary, tuple(names), updates)
    for r, name in enumerate(names):
        system.spawn(name, repl_replica, r == 0, updates)


def counting_ring_handler(state, vt, payload):
    """The Time Warp ring workload handler (pure & deterministic)."""
    state["count"] += 1
    state["checksum"] = (state["checksum"] * 131 + int(vt * 100) + payload) % 999_983
    hops = payload
    if hops > 0:
        return [Emission(state["next"], state["delay"], hops - 1)]
    return []


def build_tw_ring(engine_or_oracle, n_lps: int, hops: int, delay: float = 1.7) -> None:
    """Install the counting ring on a TimeWarpEngine or SequentialOracle."""
    names = [f"lp{i}" for i in range(n_lps)]
    for index, name in enumerate(names):
        state = {
            "count": 0,
            "checksum": 7,
            "next": names[(index + 1) % n_lps],
            "delay": delay,
        }
        engine_or_oracle.add_lp(name, counting_ring_handler, state)
    engine_or_oracle.inject("lp0", 1.0, hops)
