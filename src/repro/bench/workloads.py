"""Workload generators shared by the benchmark suite."""

from __future__ import annotations

from typing import Optional

from ..apps.call_streaming import CallStreamConfig
from ..apps.virtual_time import Job, VtWorkload
from ..baselines.timewarp import Emission
from ..sim import RandomStreams


def streaming_config(
    n_reports: int = 10,
    latency: float = 25.0,
    page_size: int = 10_000,
    n_warts: Optional[int] = None,
    local_compute: float = 1.0,
    summary_prep: float = 2.0,
    rollback_overhead: float = 0.0,
) -> CallStreamConfig:
    """A happy-path call-streaming workload (pages never fill)."""
    if n_warts is None:
        n_warts = n_reports           # fully pipelined verification
    return CallStreamConfig(
        report_lines=tuple([10] * n_reports),
        page_size=page_size,
        latency=latency,
        n_warts=n_warts,
        local_compute=local_compute,
        summary_prep=summary_prep,
        rollback_overhead=rollback_overhead,
    )


def probabilistic_config(
    n_reports: int,
    success_probability: float,
    seed: int = 0,
    latency: float = 25.0,
    rollback_overhead: float = 0.0,
    n_warts: Optional[int] = None,
) -> CallStreamConfig:
    """A call-streaming workload where each report fills the page (the
    PartPage assumption fails) with probability ``1 - success_probability``.

    Report heights are derived by tracking the server's line counter, so
    each report's outcome is exactly the drawn one regardless of history:
    successes add a single line; failures add exactly enough to exceed
    the page (which then resets via S2's newpage).
    """
    if not 0.0 <= success_probability <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {success_probability}")
    page_size = max(1000, 4 * n_reports)
    summary_lines = 1
    stream = RandomStreams(seed)["pageload"]
    lines = []
    line = 0
    for _ in range(n_reports):
        if stream.bernoulli(success_probability):
            lines.append(1)                       # line stays within the page
            line += 1 + summary_lines
        else:
            lines.append(page_size - line + 10)   # exceeds: S2 fires
            line = summary_lines                  # newpage, then the summary
    if n_warts is None:
        n_warts = n_reports
    return CallStreamConfig(
        report_lines=tuple(lines),
        page_size=page_size,
        summary_lines=summary_lines,
        latency=latency,
        n_warts=n_warts,
        rollback_overhead=rollback_overhead,
    )


def vt_workload(
    n_senders: int,
    jobs_per_sender: int,
    vt_step: float = 3.0,
    spacing: float = 1.5,
) -> VtWorkload:
    """Interleaved timestamp streams for the Time Warp comparison."""
    streams = []
    for s in range(n_senders):
        jobs = tuple(
            Job(0.5 + s * (vt_step / (n_senders + 1)) + vt_step * i, s * 1000 + i)
            for i in range(jobs_per_sender)
        )
        streams.append(jobs)
    return VtWorkload(streams=tuple(streams), send_spacing=spacing)


def counting_ring_handler(state, vt, payload):
    """The Time Warp ring workload handler (pure & deterministic)."""
    state["count"] += 1
    state["checksum"] = (state["checksum"] * 131 + int(vt * 100) + payload) % 999_983
    hops = payload
    if hops > 0:
        return [Emission(state["next"], state["delay"], hops - 1)]
    return []


def build_tw_ring(engine_or_oracle, n_lps: int, hops: int, delay: float = 1.7) -> None:
    """Install the counting ring on a TimeWarpEngine or SequentialOracle."""
    names = [f"lp{i}" for i in range(n_lps)]
    for index, name in enumerate(names):
        state = {
            "count": 0,
            "checksum": 7,
            "next": names[(index + 1) % n_lps],
            "delay": delay,
        }
        engine_or_oracle.add_lp(name, counting_ring_handler, state)
    engine_or_oracle.inject("lp0", 1.0, hops)
