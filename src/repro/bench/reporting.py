"""Plain-text tables and series for benchmark output.

Every experiment prints the rows it regenerates (the analogue of the
paper's figures) and can persist them under ``benchmarks/results/`` so
EXPERIMENTS.md can quote exact numbers.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Sequence


def machine_context() -> dict:
    """The machine a benchmark ran on, for the BENCH_*.json documents.

    Wall-clock numbers are meaningless without the box they came from:
    the committed JSON files quote milliseconds measured on *some*
    machine, and a reader comparing against their own run needs to know
    whether the gap is a regression or a different CPU.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table with a title rule."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def results_dir() -> str:
    """The directory benchmark tables are persisted into."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(name: str, text: str, echo: bool = True) -> str:
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""
    if echo:
        print()
        print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return path


def repo_root() -> str:
    """The repository root (parent of ``benchmarks/``)."""
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))


def emit_json(name: str, section: str, payload: Any) -> str:
    """Merge ``payload`` under key ``section`` into ``<repo_root>/<name>.json``.

    Machine-readable companion to :func:`emit`: several experiments can
    contribute sections to one document (e.g. ``BENCH_1.json`` collects
    the tracking-overhead and rollback-cascade sweeps) without clobbering
    each other.  The file is rewritten atomically-enough for a bench run
    (read-modify-write; a corrupt or missing file starts fresh).  Every
    write refreshes the document's ``machine`` section with
    :func:`machine_context`, so each BENCH_*.json records the box its
    newest numbers were measured on.
    """
    path = os.path.join(repo_root(), f"{name}.json")
    document: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, ValueError):
            document = {}
    document[section] = payload
    document["machine"] = machine_context()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
