"""Parameter sweeps: the generic engine behind every figure-style bench."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class SweepResult:
    """One swept table: parameter values and per-metric series."""

    parameter: str
    values: list = field(default_factory=list)
    series: dict = field(default_factory=dict)     # metric -> list

    def column(self, metric: str) -> list:
        return self.series[metric]

    def rows(self, metrics: Sequence[str]) -> list:
        out = []
        for index, value in enumerate(self.values):
            out.append([value] + [self.series[m][index] for m in metrics])
        return out

    def headers(self, metrics: Sequence[str]) -> list:
        return [self.parameter] + list(metrics)


def sweep(
    parameter: str,
    values: Sequence,
    run: Callable[[object], dict],
) -> SweepResult:
    """Run ``run(value)`` for each value; collect the returned metric dicts.

    Every invocation must return the same metric keys; missing keys are a
    harness bug and raise immediately rather than producing ragged tables.
    """
    result = SweepResult(parameter=parameter)
    keys: list[str] | None = None
    for value in values:
        metrics = run(value)
        if keys is None:
            keys = list(metrics)
            for key in keys:
                result.series[key] = []
        elif list(metrics) != keys:
            raise ValueError(
                f"sweep metrics changed at {parameter}={value!r}: "
                f"{list(metrics)} != {keys}"
            )
        result.values.append(value)
        for key in keys:
            result.series[key].append(metrics[key])
    return result
