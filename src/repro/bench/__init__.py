"""Benchmark support: workload generators, sweeps, tables, statistics."""

from .reporting import (
    emit,
    emit_json,
    format_table,
    machine_context,
    repo_root,
    results_dir,
)
from .stats import find_crossover, mean, percentile, speedup
from .sweeps import SweepResult, sweep
from .workloads import (
    build_tw_ring,
    counting_ring_handler,
    probabilistic_config,
    streaming_config,
    vt_workload,
)

__all__ = [
    "sweep",
    "SweepResult",
    "format_table",
    "emit",
    "emit_json",
    "repo_root",
    "results_dir",
    "machine_context",
    "mean",
    "speedup",
    "percentile",
    "find_crossover",
    "streaming_config",
    "probabilistic_config",
    "vt_workload",
    "build_tw_ring",
    "counting_ring_handler",
]
