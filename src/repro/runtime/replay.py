"""Replay-based checkpointing: the effect log.

The paper's prototype takes state checkpoints at every guess ("simple and
fairly portable, but not particularly efficient", §7).  Python generators
cannot be snapshotted mid-frame, so we substitute *deterministic replay*:
the engine logs every effect result; a checkpoint is just an index into
that log.  Restoring a checkpoint = restarting the process function and
feeding it the logged results up to the index — the process deterministically
re-reaches the exact pre-guess state without touching the outside world.

The substitution is behaviour-preserving because a HOPE process's state is
a pure function of its effect results (all nondeterminism — time, messages,
randomness — flows through effects).  It is also *measurable*: the CKPT
benchmark charges real wall-clock for replays, matching the paper's remark
that their checkpointing is the inefficiency to optimize.

Checkpointed partial replay (``HopeSystem(fast_rollback=True)``) closes
that inefficiency for rollback: a :class:`ShadowCheckpoint` is a replica
incarnation of the process parked at the newest guess boundary, advanced
incrementally as checkpoints are taken.  A rollback whose truncation
point is at or after the shadow's position promotes the replica to be
the live incarnation instead of replaying the whole log from entry 0 —
restoring a checkpoint costs only the log delta since the shadow, i.e.
O(work since the rolled-back guess), not O(full history).  See
docs/PERFORMANCE.md for the exact contract (bodies must be effect-pure).
"""

from __future__ import annotations

from functools import partial
from typing import Any, NamedTuple

from ..core.errors import HopeError


class ReplayDivergenceError(HopeError):
    """The re-executed process yielded a different effect than the log.

    This means the process body is not deterministic given its effect
    results (e.g. it consulted global mutable state or an unlogged RNG) —
    replay-based rollback is unsound for such a process, so we fail loudly.
    """


class LogEntry(NamedTuple):
    """One performed effect and its result.

    A ``NamedTuple`` rather than a slotted class: one entry is appended
    per effect on the hot path, and tuple allocation is markedly cheaper
    than instance creation + two attribute stores.
    """

    kind: str
    result: Any

    def __repr__(self) -> str:
        return f"LogEntry({self.kind}, {self.result!r})"


#: C-level LogEntry constructor: ``tuple.__new__`` pre-bound to the class
#: via partial, skipping both the generated namedtuple ``__new__`` frame
#: and the ``_make`` classmethod wrapper frame — two entries are appended
#: per message round-trip and the extra frames were measurable.
_make_entry = partial(tuple.__new__, LogEntry)


class Checkpoint:
    """A guess-point checkpoint: a log position plus the virtual time.

    Stored in the interval's ``A.PS`` slot (Eq 1).  ``log_index`` is the
    number of log entries that precede the guess — replay feeds exactly
    that many results, then the process re-executes live from the guess
    statement.
    """

    __slots__ = ("log_index", "time")

    def __init__(self, log_index: int, time: float) -> None:
        self.log_index = log_index
        self.time = time

    def __repr__(self) -> str:
        return f"Checkpoint(log_index={self.log_index}, t={self.time:.4f})"


class RebasePoint:
    """A committed restart state: ``body(resume=state)`` reproduces the
    process as it stood just after log entry ``log_index - 1``.

    Captured by a :class:`~repro.runtime.effects.CommitPointEffect`
    (``log_index`` is the log length *after* the commit entry, so a
    resumed incarnation's first yield lines up with ``entries[log_index]``).
    Once the commit frontier passes ``log_index``, fossil collection
    promotes the point to be the log's base and drops the prefix.
    """

    __slots__ = ("log_index", "state", "time")

    def __init__(self, log_index: int, state: Any, time: float) -> None:
        self.log_index = log_index
        self.state = state
        self.time = time

    def __repr__(self) -> str:
        return f"RebasePoint(log_index={self.log_index}, t={self.time:.4f})"


class EffectLog:
    """The per-process effect journal with a replay cursor.

    Live execution appends entries; after a rollback the engine truncates
    to the checkpoint and the new incarnation consumes entries via
    :meth:`feed` until the cursor reaches the end, at which point the
    process is live again.

    All indices (``cursor``, checkpoint/truncation/replay positions) are
    **absolute** journal positions, stable across fossil collection.
    ``base`` counts entries dropped from the front by :meth:`drop_prefix`
    — physically, ``entries`` holds positions ``[base, base+len(entries))``.
    A fresh incarnation replays from ``base`` (the engine rebuilds the
    pre-base state from the promoted :class:`RebasePoint`), so dropping
    the prefix is only sound once a rebase point at ``base`` exists.
    """

    __slots__ = (
        "entries",
        "base",
        "cursor",
        "pending",
        "replay_count",
        "replayed_entries_total",
        "skipped_entries_total",
        "shadow_feeds_total",
        "fossil_dropped_total",
    )

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []
        #: Absolute position of ``entries[0]`` (entries dropped in front).
        self.base = 0
        self.cursor = 0
        #: Entries still to be re-fed before the process is live again —
        #: always ``base + len(entries) - cursor``, maintained explicitly
        #: because the engine consults it once per live effect (the replay
        #: fast-forward guard) and the three-load arithmetic was
        #: measurable there.
        self.pending = 0
        self.replay_count = 0
        self.replayed_entries_total = 0
        #: Entries a rollback did NOT re-feed because a shadow checkpoint
        #: already covered them (see :class:`ShadowCheckpoint`).
        self.skipped_entries_total = 0
        #: Entries fed into shadow replicas (checkpoint-maintenance work).
        self.shadow_feeds_total = 0
        #: Entries dropped from the front by fossil collection.
        self.fossil_dropped_total = 0

    # ------------------------------------------------------------------
    # live side
    # ------------------------------------------------------------------
    def append(self, kind: str, result: Any) -> None:
        self.entries.append(_make_entry((kind, result)))
        # Live appends keep the cursor at the tail (the live-side
        # invariant ``cursor == base + len(entries)``, so += 1 suffices);
        # only begin_replay rewinds it.
        self.cursor += 1

    def __len__(self) -> int:
        """Absolute journal length (including the dropped prefix)."""
        return self.base + len(self.entries)

    def entry_at(self, index: int) -> LogEntry:
        """The entry at absolute position ``index``."""
        return self.entries[index - self.base]

    # ------------------------------------------------------------------
    # replay side
    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        return self.pending > 0

    def begin_replay(self) -> None:
        """Reset the cursor for a fresh incarnation.

        The incarnation starts at ``base``: positions below it were
        fossil-collected, and the engine reconstructs that prefix from
        the promoted rebase state instead of re-feeding it.
        """
        self.cursor = self.base
        self.pending = len(self.entries)
        if self.entries:
            self.replay_count += 1

    def begin_replay_at(self, index: int) -> None:
        """Resume an incarnation whose prefix is vouched for externally.

        Used when a :class:`ShadowCheckpoint` is promoted: the replica
        already consumed everything below ``index``, so the cursor starts
        there and only the remainder (normally nothing — the truncation
        point IS the checkpoint) is re-fed.
        """
        if index > len(self) or index < self.base:
            raise HopeError(
                f"replay start index {index} outside log window "
                f"[{self.base}, {len(self)}]"
            )
        self.cursor = index
        self.pending = len(self) - index
        self.skipped_entries_total += index - self.base
        if self.cursor < len(self):
            self.replay_count += 1

    def feed(self, kind: str) -> Any:
        """Return the logged result for the next effect, checking its kind."""
        entry = self.entries[self.cursor - self.base]
        if entry.kind != kind:
            raise ReplayDivergenceError(
                f"replay divergence at entry {self.cursor}: process yielded "
                f"{kind!r} but the log recorded {entry.kind!r} — the process "
                "body is not deterministic in its effect results"
            )
        self.cursor += 1
        self.pending -= 1
        self.replayed_entries_total += 1
        return entry.result

    def truncate(self, index: int) -> int:
        """Drop entries from absolute position ``index`` on.

        Returns how many were dropped.  ``index == 0`` is a crash-style
        full reset and also clears the fossil base (the restarted
        incarnation begins at program entry; any rebase state is volatile
        and the engine discards it alongside).  A truncation *into* the
        dropped prefix otherwise is impossible — it would mean a rollback
        crossed the commit frontier, contradicting Theorem 6.1.
        """
        if index == 0:
            dropped = self.base + len(self.entries)
            self.entries.clear()
            self.base = 0
            self.cursor = 0
            self.pending = 0
            return dropped
        if index < self.base:
            raise HopeError(
                f"log truncation at {index} crosses the fossil base "
                f"{self.base} — rollback behind the commit frontier"
            )
        dropped = self.base + len(self.entries) - index
        if dropped < 0:
            raise HopeError(
                f"log truncation index {index} beyond log length {len(self)}"
            )
        del self.entries[index - self.base :]
        if self.cursor > index:
            self.cursor = index
        self.pending = self.base + len(self.entries) - self.cursor
        return dropped

    def drop_prefix(self, index: int) -> int:
        """Fossil-collect entries below absolute position ``index``.

        The caller must hold a :class:`RebasePoint` at exactly ``index``
        and must not drop past the replay cursor (an in-flight replay
        still needs those entries).  Returns the number dropped.
        """
        if index <= self.base:
            return 0
        if index > self.cursor:
            raise HopeError(
                f"drop_prefix({index}) past the replay cursor {self.cursor}"
            )
        dropped = index - self.base
        del self.entries[:dropped]
        self.base = index
        self.fossil_dropped_total += dropped
        return dropped

    def __repr__(self) -> str:
        return (
            f"<EffectLog {self.cursor}/{len(self)} base={self.base} "
            f"replays={self.replay_count}>"
        )


class ShadowCheckpoint:
    """A replica incarnation parked at a guess boundary.

    Python generators cannot be copied, so a checkpoint cannot literally
    snapshot the live frame.  Instead the engine keeps one *replica*
    generator per process: at every checkpoint it is advanced by feeding
    it the logged effect results up to the checkpoint's log index — each
    log entry is fed to the replica at most once between rebuilds, so
    maintenance is incremental, O(new entries since the last checkpoint).
    A rollback that truncates at or after the replica's position promotes
    it to be the live incarnation: the restart replays only the delta
    instead of rewinding to log entry 0.

    Soundness contract: the process body must be *effect-pure* — all of
    its observable behaviour flows through yielded effects (the same
    determinism replay already requires, strengthened to "no out-of-band
    side effects", because the replica re-executes the prefix eagerly).
    A kind mismatch while feeding marks the shadow invalid and the
    engine falls back to full replay; semantics never depend on it.
    """

    __slots__ = ("gen", "pos", "pending_effect", "valid")

    def __init__(self, gen, pos: int = 0) -> None:
        self.gen = gen
        #: Absolute log position the replica has consumed up to.  A
        #: replica built from a rebase point starts at the log's base.
        self.pos = pos
        #: The effect the replica is suspended on (yielded, not yet fed).
        self.pending_effect: Any = None
        self.valid = True

    def advance(self, log: EffectLog, target: int) -> bool:
        """Feed logged results until ``pos`` reaches ``target``.

        Returns False (and invalidates the shadow) on any divergence —
        the replica yielding a different effect kind than the log, or
        finishing early.  Feeds are charged to ``log.shadow_feeds_total``.
        """
        if (
            not self.valid
            or target > len(log)
            or target < self.pos
            or self.pos < log.base
        ):
            # pos < base: fossil collection dropped entries this replica
            # would still need to feed — it can never catch up again.
            self.invalidate()
            return False
        try:
            if self.pending_effect is None:
                self.pending_effect = self.gen.send(None)
            while self.pos < target:
                entry = log.entry_at(self.pos)
                if entry.kind != getattr(self.pending_effect, "kind", None):
                    self.invalidate()
                    return False
                self.pending_effect = self.gen.send(entry.result)
                self.pos += 1
                log.shadow_feeds_total += 1
        except StopIteration:
            self.invalidate()
            return False
        except Exception:
            # A replica crash must never take down the live run; the
            # shadow is an optimization, so fall back to full replay.
            self.invalidate()
            return False
        return True

    def invalidate(self) -> None:
        self.valid = False
        if self.gen is not None:
            self.gen.close()
            self.gen = None

    def __repr__(self) -> str:
        state = "valid" if self.valid else "invalid"
        return f"<ShadowCheckpoint pos={self.pos} {state}>"
