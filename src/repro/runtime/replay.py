"""Replay-based checkpointing: the effect log.

The paper's prototype takes state checkpoints at every guess ("simple and
fairly portable, but not particularly efficient", §7).  Python generators
cannot be snapshotted mid-frame, so we substitute *deterministic replay*:
the engine logs every effect result; a checkpoint is just an index into
that log.  Restoring a checkpoint = restarting the process function and
feeding it the logged results up to the index — the process deterministically
re-reaches the exact pre-guess state without touching the outside world.

The substitution is behaviour-preserving because a HOPE process's state is
a pure function of its effect results (all nondeterminism — time, messages,
randomness — flows through effects).  It is also *measurable*: the CKPT
benchmark charges real wall-clock for replays, matching the paper's remark
that their checkpointing is the inefficiency to optimize.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import HopeError


class ReplayDivergenceError(HopeError):
    """The re-executed process yielded a different effect than the log.

    This means the process body is not deterministic given its effect
    results (e.g. it consulted global mutable state or an unlogged RNG) —
    replay-based rollback is unsound for such a process, so we fail loudly.
    """


class LogEntry:
    """One performed effect and its result."""

    __slots__ = ("kind", "result")

    def __init__(self, kind: str, result: Any) -> None:
        self.kind = kind
        self.result = result

    def __repr__(self) -> str:
        return f"LogEntry({self.kind}, {self.result!r})"


class Checkpoint:
    """A guess-point checkpoint: a log position plus the virtual time.

    Stored in the interval's ``A.PS`` slot (Eq 1).  ``log_index`` is the
    number of log entries that precede the guess — replay feeds exactly
    that many results, then the process re-executes live from the guess
    statement.
    """

    __slots__ = ("log_index", "time")

    def __init__(self, log_index: int, time: float) -> None:
        self.log_index = log_index
        self.time = time

    def __repr__(self) -> str:
        return f"Checkpoint(log_index={self.log_index}, t={self.time:.4f})"


class EffectLog:
    """The per-process effect journal with a replay cursor.

    Live execution appends entries; after a rollback the engine truncates
    to the checkpoint and the new incarnation consumes entries via
    :meth:`feed` until the cursor reaches the end, at which point the
    process is live again.
    """

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []
        self.cursor = 0
        self.replay_count = 0
        self.replayed_entries_total = 0

    # ------------------------------------------------------------------
    # live side
    # ------------------------------------------------------------------
    def append(self, kind: str, result: Any) -> None:
        self.entries.append(LogEntry(kind, result))
        # Live appends keep the cursor at the tail so ``replaying`` stays
        # False; only begin_replay rewinds it.
        self.cursor = len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # replay side
    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        return self.cursor < len(self.entries)

    def begin_replay(self) -> None:
        """Reset the cursor for a fresh incarnation."""
        self.cursor = 0
        if self.entries:
            self.replay_count += 1

    def feed(self, kind: str) -> Any:
        """Return the logged result for the next effect, checking its kind."""
        entry = self.entries[self.cursor]
        if entry.kind != kind:
            raise ReplayDivergenceError(
                f"replay divergence at entry {self.cursor}: process yielded "
                f"{kind!r} but the log recorded {entry.kind!r} — the process "
                "body is not deterministic in its effect results"
            )
        self.cursor += 1
        self.replayed_entries_total += 1
        return entry.result

    def truncate(self, index: int) -> int:
        """Drop entries from ``index`` on; returns how many were dropped."""
        dropped = len(self.entries) - index
        if dropped < 0:
            raise HopeError(
                f"log truncation index {index} beyond log length {len(self.entries)}"
            )
        del self.entries[index:]
        if self.cursor > index:
            self.cursor = index
        return dropped

    def __repr__(self) -> str:
        return f"<EffectLog {self.cursor}/{len(self.entries)} replays={self.replay_count}>"
