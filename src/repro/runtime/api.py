"""The user-facing HOPE API: the process facade and AID handles.

A HOPE process body is a generator function ``def body(p, *args)`` whose
``p`` is a :class:`HopeProcess`.  Every interaction with the world is a
``yield`` of one of ``p``'s effect constructors::

    def worker(p):
        x = yield p.aid_init("page-not-full")
        yield p.send("worrywart", ("check", x))
        if (yield p.guess(x)):
            yield p.compute(2.0)        # optimistic path
        else:
            yield p.compute(8.0)        # pessimistic path (after rollback)

Idiomatically — exactly as §3 prescribes — ``guess`` sits in an ``if``:
the True branch is the optimistic algorithm, the False branch the
pessimistic one, and the runtime re-executes from the ``guess`` with
False when the assumption is denied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from .effects import (
    AffirmEffect,
    AidInitEffect,
    CommitPointEffect,
    ComputeEffect,
    DenyEffect,
    EmitEffect,
    FreeOfEffect,
    GuessEffect,
    NowEffect,
    RandomEffect,
    RecvEffect,
    SendEffect,
    SpawnEffect,
)
from .messages import ReceivedMessage, RpcReply, RpcRequest


@dataclass(frozen=True)
class AidHandle:
    """A user-space reference to an assumption identifier.

    Handles are plain immutable values: they can be stored, compared, and
    sent inside message payloads to other processes (which is how Figure 2
    hands ``PartPage`` and ``Order`` to the WorryWart).
    """

    key: str
    name: str

    # Handles are immutable values, so copying them as identity is
    # semantically free — and load-bearing for fossil collection: the
    # engine pins an AID against retirement while *this object* is
    # reachable (weak-value handle table), and commit-point states are
    # deep-copied.  A copy that produced a fresh object would silently
    # drop the pin when the original died.
    def __copy__(self) -> "AidHandle":
        return self

    def __deepcopy__(self, memo) -> "AidHandle":
        return self

    def __repr__(self) -> str:
        return f"AID<{self.key}>"


AidRef = Union[AidHandle, str]


def aid_key(ref: AidRef) -> str:
    """Accept an :class:`AidHandle` or a raw key string."""
    if isinstance(ref, AidHandle):
        return ref.key
    return ref


class HopeProcess:
    """Effect-constructor facade handed to every HOPE process body.

    Thin by design: each method builds an effect for the engine; no state
    lives here except identity, so user code cannot accidentally bypass
    the effect log.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    # the five HOPE primitives (§3)
    # ------------------------------------------------------------------
    def aid_init(self, name: str = "aid") -> AidInitEffect:
        """Create an assumption identifier; resumes with an :class:`AidHandle`."""
        return AidInitEffect(name)

    def guess(self, aid: AidRef) -> GuessEffect:
        """Make the optimistic assumption ``aid``; resumes with True, or
        False when re-executed after the assumption is denied."""
        return GuessEffect(aid_key(aid))

    def affirm(self, aid: AidRef) -> AffirmEffect:
        """Assert the assumption identified by ``aid`` is true."""
        return AffirmEffect(aid_key(aid))

    def deny(self, aid: AidRef) -> DenyEffect:
        """Assert the assumption identified by ``aid`` is false."""
        return DenyEffect(aid_key(aid))

    def free_of(self, aid: AidRef) -> FreeOfEffect:
        """Assert this computation is (and will stay) causally free of ``aid``."""
        return FreeOfEffect(aid_key(aid))

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any) -> SendEffect:
        """Asynchronously send ``payload``; automatically tagged with the
        sender's current assumption dependencies (§7)."""
        # Built via __new__ + slot stores rather than the constructor:
        # one effect is allocated per send and skipping the __init__
        # frame is measurable on the message hot path.
        effect = _new_effect(SendEffect)
        effect.dst = dst
        effect.payload = payload
        return effect

    def recv(
        self,
        timeout: Optional[float] = None,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> RecvEffect:
        """Receive the next message; resumes with a :class:`ReceivedMessage`
        (or :data:`repro.sim.TIMED_OUT`).  Tagged messages first apply the
        implicit guesses of §3."""
        if timeout is None and predicate is None:
            return _RECV_ANY  # immutable: the common case shares one object
        return RecvEffect(timeout, predicate)

    def reply(self, request: ReceivedMessage, body: Any) -> SendEffect:
        """Answer an :class:`RpcRequest` carried by ``request``."""
        payload = request.payload
        if not isinstance(payload, RpcRequest):
            raise TypeError(f"reply() needs an RpcRequest payload, got {payload!r}")
        return SendEffect(payload.reply_to, RpcReply(body, payload.corr))

    # ------------------------------------------------------------------
    # local computation & environment
    # ------------------------------------------------------------------
    def compute(self, duration: float) -> ComputeEffect:
        """Model ``duration`` time units of local CPU work."""
        return ComputeEffect(duration)

    def now(self) -> NowEffect:
        """Read the virtual clock (replay-safe)."""
        return _NOW

    def random(self) -> RandomEffect:
        """Uniform float in [0,1) from this process's stream (replay-safe)."""
        return _RANDOM

    def emit(self, value: Any) -> EmitEffect:
        """Produce an output value under the output-commit discipline:
        withdrawn on rollback, committed once all assumptions resolve.
        Read results with :meth:`HopeSystem.outputs` /
        :meth:`HopeSystem.committed_outputs`."""
        return EmitEffect(value)

    def spawn(self, name: str, fn: Callable, *args: Any) -> SpawnEffect:
        """Start another HOPE process; resumes with its name."""
        return SpawnEffect(name, fn, *args)

    def commit_point(self, state: Any) -> CommitPointEffect:
        """Declare that ``state`` fully captures this process here.

        The engine deep-copies ``state`` and, once the commit frontier
        passes this point (all guesses taken before it are finalized),
        fossil-collects the effect-log prefix behind it: future restarts
        call the body with ``resume=<copy of state>`` instead of
        replaying from program entry, so long-running processes stop
        accumulating journal entries.

        Contract — the body must support resumption::

            def worker(p, resume=None):
                state = resume if resume is not None else make_initial_state()
                if resume is None:
                    ... one-time setup effects ...
                while True:
                    ... one round of work mutating state ...
                    yield p.commit_point(state)

        Everything the body carries across the commit point must live in
        ``state`` (locals not derivable from it are lost on a rebased
        restart), and ``state`` must be deep-copyable.  A no-op when the
        system runs without ``fossil_collect=True`` (the effect is still
        logged, so traces match between modes).  Resumes with ``None``.
        """
        return CommitPointEffect(state)

    def __repr__(self) -> str:
        return f"HopeProcess({self.name!r})"


#: Shared instances for the stateless effects (they are immutable and
#: handlers only read them, so one object serves every yield — the
#: allocation per message round-trip was measurable in TRACK).
_RECV_ANY = RecvEffect(None, None)
_new_effect = object.__new__
_NOW = NowEffect()
_RANDOM = RandomEffect()


def call(p: HopeProcess, dst: str, body: Any, corr: int):
    """Sub-generator implementing a synchronous RPC (Figure 1's semantics).

    Usage::

        reply = yield from call(p, "printer", ("print", text), corr)

    ``corr`` must be unique per outstanding request within the caller —
    the :class:`CorrelationCounter` below provides replay-safe ids.
    """
    yield p.send(dst, RpcRequest(body, p.name, corr))
    message = yield p.recv(
        predicate=lambda m: isinstance(m.payload, RpcReply) and m.payload.corr == corr
    )
    return message.payload.body


class CorrelationCounter:
    """Replay-safe correlation ids.

    Because process bodies re-execute deterministically during replay, a
    plain local counter inside the body reproduces the same ids — this
    helper just makes the idiom explicit.
    """

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value
