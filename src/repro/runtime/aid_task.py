"""Control planes: how HOPE primitives reach the dependency tracker.

The paper's prototype implements "assumption identifiers ... as AID
tasks, and the HOPE dependency tracking algorithms ... using PVM
messages", with the key property that "the implementation never forces a
user process to wait for a HOPE dependency tracking message before
proceeding" (§7).

Two control planes implement that contract at different fidelities:

* :class:`RegistryControlPlane` — the idealized centralized registry:
  primitives take effect instantly and atomically.  This is the default;
  it matches the abstract machine exactly and is what the semantics tests
  verify against.
* :class:`AidTaskControlPlane` — the distributed AID-task protocol:
  every ``guess`` sends an asynchronous DEPEND registration, every
  ``affirm``/``deny``/``free_of`` is a control message that takes
  ``control_latency`` to reach the AID task, and each rollback costs one
  NOTIFY message (plus its latency) per victim before the victim's
  restart begins.  The caller *never blocks* — it continues speculating
  until consequences catch up with it, exactly like the prototype.

The AIDMODE benchmark measures the gap between the two: extra control
traffic, delayed resolution, and slower rollback recovery.

Convergence argument: delayed application commutes with the lenient
resolution-conflict policy (duplicate resolutions no-op; a control
message from a rolled-back statement re-applies idempotently), so both
planes reach the same final AID statuses and committed outputs; only
timing and wasted work differ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import AssumptionId

if TYPE_CHECKING:  # pragma: no cover
    from .engine import HopeSystem


class RegistryControlPlane:
    """Instant, atomic primitives — the centralized idealization."""

    name = "registry"

    def __init__(self, engine: "HopeSystem") -> None:
        self.engine = engine
        self.control_messages = 0

    def issue(self, kind: str, pid: str, aid: AssumptionId) -> None:
        """Apply a resolution primitive immediately."""
        machine = self.engine.machine
        if kind == "affirm":
            machine.affirm(pid, aid)
        elif kind == "deny":
            machine.deny(pid, aid)
        elif kind == "free_of":
            machine.free_of(pid, aid)
        else:  # pragma: no cover - dispatch guarded by the engine
            raise ValueError(f"unknown resolution kind {kind!r}")

    def note_guess(self, pid: str, n_aids: int) -> None:
        """Dependency registration is local bookkeeping here."""

    def notify_delay(self) -> float:
        """Extra restart delay per rollback victim."""
        return 0.0


class AidTaskControlPlane(RegistryControlPlane):
    """The distributed AID-task protocol: asynchronous, message-counted.

    ``control_latency`` is the one-way latency of a dependency-tracking
    message (user process -> AID task, and AID task -> victim).
    """

    name = "aid_task"

    def __init__(self, engine: "HopeSystem", control_latency: float = 1.0) -> None:
        super().__init__(engine)
        if control_latency < 0:
            raise ValueError(f"control_latency must be >= 0, got {control_latency}")
        self.control_latency = control_latency
        self._applying = False

    def issue(self, kind: str, pid: str, aid: AssumptionId) -> None:
        """Send the resolution to the AID task; apply on arrival.

        The caller resumes immediately (never waits); the resolution's
        global effects — shedding dependents, rolling back victims —
        happen one control hop later.
        """
        self.control_messages += 1
        self.engine.sim.schedule(
            self.control_latency,
            self._apply,
            kind,
            pid,
            aid,
            label=f"aidctl:{kind}:{aid.key}",
        )

    def _apply(self, kind: str, pid: str, aid: AssumptionId) -> None:
        self._applying = True
        try:
            super().issue(kind, pid, aid)
        finally:
            self._applying = False

    def note_guess(self, pid: str, n_aids: int) -> None:
        """Each new dependency sends an async DEPEND registration."""
        self.control_messages += n_aids

    def notify_delay(self) -> float:
        """Rollback notifications travel AID task -> victim."""
        if self._applying:
            self.control_messages += 1          # the NOTIFY message
            return self.control_latency
        return 0.0
