"""The HOPE runtime: the paper's prototype system rebuilt on the simulator.

``HopeSystem`` wires together the four substrates:

* the discrete-event simulator (:mod:`repro.sim`) — processes + messages;
* the abstract machine (:mod:`repro.core`) — all IDO/DOM/IHD bookkeeping;
* the effect log (:mod:`repro.runtime.replay`) — replay-based checkpoints;
* the network (:mod:`repro.sim.channel`) — tagged, retractable messages.

Responsibilities mirror §7 of the paper:

* every send is automatically tagged with the sender's current assumption
  dependencies;
* receiving a tagged message automatically applies the implicit guesses
  *before* the message reaches user-accessible state;
* a denial rolls back every causal descendant: histories are truncated
  (task restart + log replay), messages sent from discarded intervals are
  retracted, and messages consumed by discarded intervals are redelivered;
* dependency tracking never blocks a user process — all bookkeeping here
  is synchronous metadata on an otherwise asynchronous message flow (the
  distributed AID-task mode in :mod:`repro.runtime.aid_task` relaxes even
  that, at the cost of latency in rollback propagation).
"""

from __future__ import annotations

import copy
import weakref
from typing import Any, Callable, Generator, Optional

from ..core import (
    AidStatus,
    AssumptionId,
    FinalizeEvent,
    HopeError,
    Machine,
    MachineEvent,
    RollbackEvent,
)
from ..sim import (
    TIMED_OUT,
    ConstantLatency,
    FailureInjector,
    FaultPlan,
    FaultyNetwork,
    LatencyModel,
    Network,
    RandomStreams,
    Simulator,
    Span,
    Task,
    Timeline,
    Tracer,
)
from ..obs import MetricsRegistry, NullRegistry, SpanCollector, SpeculationMetrics
from ..sim.channel import Message, _Waiter
from ..sim.process import Effect
from .api import AidHandle, AidRef, HopeProcess, aid_key
from .effects import (
    AffirmEffect,
    AidInitEffect,
    CommitPointEffect,
    ComputeEffect,
    DenyEffect,
    EmitEffect,
    FreeOfEffect,
    GuessEffect,
    HopeEffect,
    NowEffect,
    RandomEffect,
    RecvEffect,
    SendEffect,
    SpawnEffect,
)
from functools import partial

from .messages import ReceivedMessage

#: C-level ReceivedMessage constructor (see replay._make_entry).
_new_received = partial(tuple.__new__, ReceivedMessage)
from .replay import (
    Checkpoint,
    EffectLog,
    RebasePoint,
    ShadowCheckpoint,
    _make_entry,
)
from .resilience import (
    DETECTOR_PID,
    DetectorConfig,
    HeartbeatDetector,
    ReliableConfig,
    ReliableTransport,
)


class SpeculativeSpawnError(HopeError):
    """Spawning a process from a speculative interval is not supported.

    The paper's model creates processes outside the optimistic machinery;
    spawn before guessing, or send a message to a pre-spawned worker (the
    message's tags carry the dependency instead).
    """


class OutputRecord:
    """One emitted output: the value, where in the log it happened, and the
    speculative interval (if any) whose fate it shares."""

    __slots__ = ("value", "log_index", "interval", "time")

    def __init__(self, value: Any, log_index: int, interval, time: float) -> None:
        self.value = value
        self.log_index = log_index
        self.interval = interval
        self.time = time

    @property
    def committed(self) -> bool:
        """An output is committed once it depends on no live speculation."""
        return self.interval is None or self.interval.definite

    def __repr__(self) -> str:
        state = "committed" if self.committed else "speculative"
        return f"<Output {self.value!r} {state}>"


class ProcessRuntime:
    """Per-process runtime state: body, effect log, current task incarnation."""

    __slots__ = (
        "name", "fn", "args", "facade", "log", "shadow", "task",
        "incarnation", "restarts", "done", "result", "crashed", "outputs",
        "track", "mailbox", "mproc", "bridge", "rebase", "rebase_candidates",
    )

    def __init__(self, name: str, fn: Callable[..., Generator], args: tuple) -> None:
        self.name = name
        self.fn = fn
        self.args = args
        self.facade = HopeProcess(name)
        self.log = EffectLog()
        #: Replica incarnation parked at the newest checkpoint (only when
        #: the system runs with fast_rollback=True).
        self.shadow: Optional[ShadowCheckpoint] = None
        self.task: Optional[Task] = None
        self.incarnation = 0
        self.restarts = 0
        self.done = False
        self.result: Any = None
        self.crashed = False
        self.outputs: list[OutputRecord] = []
        #: Cached timeline track and mailbox (assigned at spawn; hot-path
        #: marks and recv registrations skip the per-event name lookups).
        self.track = None
        self.mailbox = None
        #: Cached machine ProcessRecord (assigned at spawn — the machine
        #: never replaces a record, so send/recv/emit skip the dict hop).
        self.mproc = None
        #: Reusable recv bridge for the current incarnation (one recv is
        #: outstanding at a time, so one bridge serves them all; replaced
        #: on rollback because its captured incarnation goes stale).
        self.bridge: Optional["_RecvBridge"] = None
        #: The promoted rebase point — always at ``log.base`` (None means
        #: incarnations start from program entry; see commit_point).
        self.rebase: Optional[RebasePoint] = None
        #: Candidate rebase points not yet behind the commit frontier.
        self.rebase_candidates: list[RebasePoint] = []

    def body(self, env) -> Generator:
        """Adapter: the sim Task calls ``fn(env)``; HOPE bodies take the facade.

        A process with a promoted rebase point restarts *from the commit
        point*: the body is called with ``resume=<fresh deep copy>`` and
        must reconstruct itself from that state (the commit_point
        contract).  Each incarnation gets its own copy — a restarted body
        mutates the state it is handed.
        """
        if self.rebase is not None:
            return self.fn(
                self.facade, *self.args, resume=copy.deepcopy(self.rebase.state)
            )
        return self.fn(self.facade, *self.args)

    def __repr__(self) -> str:
        return f"<ProcessRuntime {self.name!r} inc={self.incarnation} restarts={self.restarts}>"


class _RecvBridge:
    """Stands in the mailbox wait queue on behalf of a HOPE task.

    The mailbox thinks it is resuming a task; the bridge routes the
    message through the engine first, so implicit guesses and dead-message
    filtering happen before the process sees anything (§7: tagged-message
    guesses precede delivery "into the user-accessible state").
    """

    __slots__ = (
        "engine", "proc", "effect", "incarnation", "sync", "on_kill",
        "waiter", "_cleanup",
    )

    def __init__(self, engine: "HopeSystem", proc: ProcessRuntime, effect: RecvEffect) -> None:
        self.engine = engine
        self.proc = proc
        self.effect = effect
        self.incarnation = proc.incarnation
        #: Pre-bound cleanup callback: the bridge is registered as the
        #: task's kill cleanup once per recv, and binding the method each
        #: time was measurable on the recv hot path.
        self.on_kill = self.cancel
        #: True only while the recv handler's registration call is on the
        #: stack — i.e. the task's dispatch trampoline is active, so a
        #: synchronous delivery (message already queued) may complete the
        #: effect via resume_now and drain the whole same-tick backlog in
        #: one flat dispatch loop.
        self.sync = False
        #: Reusable mailbox waiter: one recv is outstanding at a time, so
        #: timer-less recvs re-register this single object instead of
        #: allocating a _Waiter per message (register_waiter fast path).
        self.waiter = _Waiter(self, None, None, proc.mailbox)
        #: The mailbox-unregistration cleanup for the recv in flight.  At
        #: most one is ever registered (one outstanding recv), so a single
        #: slot replaces the list append/clear churn of the Task protocol.
        self._cleanup: Optional[Callable[[], None]] = None

    # Mailbox-facing protocol (duck-typed Task):
    def resume(self, value: Any) -> None:
        self.engine._deliver(self.proc, self.effect, value, self)

    def add_cleanup(self, fn: Callable[[], None]) -> None:
        self._cleanup = fn

    def clear_cleanups(self) -> None:
        self._cleanup = None

    def cancel(self) -> None:
        """Run the mailbox-removal cleanup (invoked when the real task dies)."""
        fn, self._cleanup = self._cleanup, None
        if fn is not None:
            fn()


#: Shared disabled registry: hands out no-op instruments, so one object
#: serves every unmetered system (the NullTracer sharing idiom).
_NULL_REGISTRY = NullRegistry()


class HopeSystem:
    """A complete HOPE world: spawn processes, run, inspect outcomes.

    Parameters
    ----------
    seed:
        Root seed for all randomness (latency, process streams, failures).
    latency:
        Network latency model for user messages (default: 0 — a perfect
        network; benchmarks pass explicit models).
    rollback_overhead:
        Virtual-time cost charged to a process when it restarts after a
        rollback (models checkpoint-restore cost; the paper's prototype
        calls its own mechanism "not particularly efficient").
    trace:
        Optional :class:`Tracer`; pass ``Tracer()`` to record everything.
    strict_aids:
        Forward the machine's strict resolution-conflict mode.  The
        runtime default is lenient because rollback legitimately
        re-executes resolution statements (see Figure 2's WorryWart).
    fast_rollback:
        Keep a :class:`ShadowCheckpoint` replica per process, advanced
        incrementally at guess boundaries, so a rollback restores the
        newest checkpoint at or before its truncation point instead of
        replaying the effect log from entry 0.  Off by default: it
        strengthens the body contract from "deterministic in effect
        results" to "no out-of-band side effects at all", because the
        replica re-executes the pre-checkpoint prefix eagerly (a body
        that appends to a closure list would observe the extra pass).
        All benchmarks and every paper program satisfy the stronger
        contract; see docs/PERFORMANCE.md.
    fossil_collect:
        Reclaim committed state behind the commit frontier (Theorem 6.1:
        finalized intervals never roll back).  Bounds long-run memory to
        O(active speculation window): machine history prefixes, retired
        AIDs, unreachable interned DepSets, effect-log prefixes behind a
        ``commit_point``, stale shadow replicas, and closed timeline
        spans are all dropped.  Semantics-neutral — traces are identical
        with it on or off; see docs/PERFORMANCE.md §4.
    fossil_interval:
        Collect after every N machine finalizes (default 64).  Lower =
        tighter memory, more collection overhead.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  When given, the
        engine feeds the standard speculation instrument set
        (:class:`repro.obs.SpeculationMetrics`) and builds per-interval
        lifecycle spans (:attr:`spans`) from machine events — guesses,
        rollback cascades, commit latency, wasted vs. useful time,
        fossil reclaim, cache hit rate.  Export with
        :mod:`repro.obs.export` after :meth:`metrics_snapshot`.  The
        default is a shared :class:`repro.obs.NullRegistry`: no listener
        is subscribed and every metered branch is skipped, so the
        disabled path costs nothing (the ``NullTracer`` contract);
        traces are byte-identical with metrics on or off.
    faults:
        Optional :class:`repro.sim.FaultPlan`.  When given, the network
        is a :class:`repro.sim.FaultyNetwork` applying the plan (drop /
        duplicate / reorder / jitter / timed partitions), with every
        probabilistic fate drawn from the dedicated seeded stream
        ``streams["faults"]`` — faulty runs replay from their seed, and
        enabling faults perturbs no other stream.  ``None`` (default)
        constructs the plain reliable :class:`repro.sim.Network`: the
        exact pre-fault-layer code path, byte-identical traces.
    reliable:
        ``True`` or a :class:`repro.runtime.resilience.ReliableConfig`
        enables reliable delivery for all HOPE sends: per-message acks,
        timeout-driven resend with capped exponential backoff, and
        receiver-side dedup by ``msg_id``.  ``Delivery.retract`` on a
        rolled-back sender kills in-flight copies and retries alike.
    failure_detector:
        ``True`` or a :class:`repro.runtime.resilience.DetectorConfig`
        enables the heartbeat failure detector: a suspected process's
        unresolved AIDs are denied (definite, by the ``__detector__``
        pseudo-process) so dependents roll back instead of hanging; a
        falsely suspected process is unsuspected on its next heartbeat
        and its later ``affirm`` of a detector-denied AID is reconciled
        to a no-op.
    kernel:
        Event-queue kernel for the simulator: ``"wheel"`` (default, the
        hierarchical timer wheel) or ``"heap"`` (the binary-heap oracle).
        Traces are byte-identical either way; see docs/PERFORMANCE.md §6.
    backend:
        Execution backend: ``"sim"`` (default — the deterministic
        single-process simulator, exactly the pre-backend code path) or
        ``"parallel"`` (real OS workers via :mod:`repro.parallel`, each
        hosting a shard of the processes; requires a positive
        :class:`~repro.sim.ConstantLatency` and supports a restricted
        option set — see docs/API.md and docs/LIMITATIONS.md).
    workers:
        Worker count for ``backend="parallel"`` (default 2).  Must be
        left None for the sim backend.
    transport:
        Optional transport factory ``f(sim, latency_model, streams) ->
        Network`` replacing the default :class:`~repro.sim.Network`.
        Mutually exclusive with ``faults`` (which implies the
        ``FaultyNetwork`` transport).  This is the seam the parallel
        backend's per-worker ``ShardTransport`` plugs into.
    parallel_opts:
        Extra options for the parallel backend (placement overrides,
        lookahead, crash injection for tests); see
        :class:`repro.parallel.ParallelBackend`.
    controller:
        Optional schedule controller: an object with
        ``choose(time, events) -> int`` consulted at every simulator pop
        with the batch of live same-time events — externally directed
        interleaving choice (the DPOR explorer in :mod:`repro.verify`).
        Mutually exclusive with ``shuffle_ties``; disables same-tick
        delivery coalescing so each delivery owns a choice point.
    """

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        rollback_overhead: float = 0.0,
        trace: Optional[Tracer] = None,
        strict_aids: bool = False,
        aid_mode: str = "registry",
        control_latency: float = 1.0,
        speculation: bool = True,
        shuffle_ties: bool = False,
        fast_rollback: bool = False,
        fossil_collect: bool = False,
        fossil_interval: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        reliable: Any = False,
        failure_detector: Any = False,
        kernel: str = "wheel",
        backend: str = "sim",
        workers: Optional[int] = None,
        transport: Optional[Callable[..., Network]] = None,
        parallel_opts: Optional[dict] = None,
        controller: Optional[Any] = None,
        durable: bool = False,
        durable_dir: Optional[str] = None,
        durable_opts: Optional[dict] = None,
    ) -> None:
        self.streams = RandomStreams(seed)
        if controller is not None:
            if shuffle_ties:
                raise HopeError(
                    "shuffle_ties and controller are mutually exclusive — "
                    "both decide same-time event order"
                )
            # Externally directed scheduling: at every pop the controller
            # picks which same-time event fires (the DPOR explorer in
            # repro.verify drives this seam; see ScheduleController).
            self.sim = Simulator(kernel=kernel, controller=controller)
        elif shuffle_ties:
            # Permute the order of same-virtual-time events (seeded):
            # genuinely concurrent events may fire in any order, and the
            # model checker sweeps seeds to explore those interleavings.
            tie_stream = self.streams["schedule-ties"]
            self.sim = Simulator(
                tie_breaker=lambda: tie_stream.randint(0, 1 << 30),
                kernel=kernel,
            )
        else:
            self.sim = Simulator(kernel=kernel)
        latency_model = latency if latency is not None else ConstantLatency(0.0)
        if transport is not None:
            if faults is not None:
                raise HopeError(
                    "transport and faults are mutually exclusive — a fault "
                    "plan implies the FaultyNetwork transport"
                )
            self.network: Network = transport(
                self.sim, latency_model, self.streams
            )
        elif faults is not None:
            # The faulty network draws every probabilistic fate from its
            # own named stream, so turning faults on perturbs none of the
            # other streams (latency, workload, ties, ...).
            self.network = FaultyNetwork(
                self.sim, latency_model, plan=faults,
                stream=self.streams["faults"],
            )
        else:
            self.network = Network(self.sim, latency_model)
        self.machine = Machine(strict=strict_aids)
        self.machine.subscribe(self._on_machine_event)
        #: Pre-bound effect-dispatch lookup and interned-empty DepSet —
        #: read once per effect / per definite send (see _handle_effect).
        self._handler_get = self._LIVE_HANDLERS.get
        self._empty_ido = self.machine.depsets.empty
        self.tracer = trace if trace is not None else Tracer(categories=())
        #: Hot-path guard: with a disabled tracer every per-effect record
        #: call is pure overhead, so the handlers skip them wholesale.
        self._tracing = not getattr(self.tracer, "_disabled", False)
        self.timeline = Timeline()
        self.failures = FailureInjector(self.sim)
        self.failures.attach(
            kill_fn=self.crash_process, restart_fn=self.restart_process
        )
        self.rollback_overhead = rollback_overhead
        #: speculation=False turns every guess into a *blocking wait* for
        #: the AID's resolution: the same program runs pessimistically —
        #: the universal ablation (see _do_guess).  Programs whose AIDs
        #: are resolved only by the guessing process itself would
        #: deadlock in this mode; that is inherent, not a bug.
        self.speculation = speculation
        self.fast_rollback = fast_rollback
        self.fossil_collect = fossil_collect
        if fossil_interval < 1:
            raise HopeError(f"fossil_interval must be >= 1, got {fossil_interval}")
        self.fossil_interval = fossil_interval
        #: Deferred-collection flag: finalize events fire mid-primitive
        #: (the machine is not quiescent), so listeners only raise this
        #: flag and the collection runs at the next effect-dispatch or
        #: delivery boundary.
        self._fossil_pending = False
        self._finalizes_since_collect = 0
        #: True while a rollback's message requeue is handing messages to
        #: waiting receivers: the machine is mid-primitive there, so
        #: deliveries fall back to scheduled resumes instead of stepping
        #: user code inline (which could re-enter the machine).
        self._defer_delivery = False
        self._aid_waiters: dict[str, list] = {}
        self.procs: dict[str, ProcessRuntime] = {}
        #: User-space AID handles by key.  Weak values: a handle that user
        #: code (or a log entry, message payload, or rebase state) still
        #: references pins its AID against retirement; one nothing holds
        #: lets the AID go once the machine is done with it.
        self._handles: "weakref.WeakValueDictionary[str, AidHandle]" = (
            weakref.WeakValueDictionary()
        )
        from .aid_task import AidTaskControlPlane, RegistryControlPlane

        if aid_mode == "registry":
            self.control = RegistryControlPlane(self)
        elif aid_mode == "aid_task":
            self.control = AidTaskControlPlane(self, control_latency)
        else:
            raise HopeError(f"unknown aid_mode {aid_mode!r}")
        # Observability: with a real registry, subscribe the metrics and
        # span collectors as extra machine listeners; with the default
        # NullRegistry subscribe nothing at all, so the disabled path is
        # exactly the pre-metrics hot path (the NullTracer pattern).
        self.metrics = metrics if metrics is not None else _NULL_REGISTRY
        self._metered = self.metrics.enabled
        if self._metered:
            self.spec_metrics: Optional[SpeculationMetrics] = SpeculationMetrics(
                self.metrics
            )
            self.spans: Optional[SpanCollector] = SpanCollector()
            self.machine.subscribe(self._observe_machine_event)
        else:
            self.spec_metrics = None
            self.spans = None
        # Resilience layers (opt-in; both None keeps the engine's hot
        # path and trace stream exactly as before).
        if reliable is True:
            reliable = ReliableConfig()
        self.reliable: Optional[ReliableTransport] = (
            ReliableTransport(self, reliable) if reliable else None
        )
        if failure_detector is True:
            failure_detector = DetectorConfig()
        #: AID key -> owning process name, tracked only when the detector
        #: is on (it needs to know whose AIDs to deny on suspicion).
        self._aid_owner: Optional[dict[str, str]] = (
            {} if failure_detector else None
        )
        #: AID keys the detector denied — a falsely suspected process's
        #: later affirm of one of these is reconciled to a no-op.
        self._detector_denied: set[str] = set()
        self.detector: Optional[HeartbeatDetector] = (
            HeartbeatDetector(self, failure_detector) if failure_detector else None
        )
        #: Remote-shard bridge, set only on a worker engine inside the
        #: parallel backend: observes aid_init (ownership reporting) and
        #: resolves unknown AID keys by adopting mirrors of remote AIDs.
        #: None on every standalone system — all remote branches skip.
        self.remote = None
        from .backend import SimBackend

        if backend == "sim":
            if workers is not None:
                raise HopeError(
                    "workers is a parallel-backend option; the sim backend "
                    "runs everything on one simulator"
                )
            self.backend: Any = SimBackend(self)
        elif backend == "parallel":
            from ..parallel import ParallelBackend

            self.backend = ParallelBackend(
                self,
                workers=2 if workers is None else workers,
                config={
                    "seed": seed,
                    "latency": latency,
                    "rollback_overhead": rollback_overhead,
                    "strict_aids": strict_aids,
                    "speculation": speculation,
                    "fast_rollback": fast_rollback,
                    "kernel": kernel,
                    "metered": self._metered,
                    # options rejected by the parallel backend (validated
                    # there so the error names every offender at once)
                    "trace": trace,
                    "aid_mode": aid_mode,
                    "shuffle_ties": shuffle_ties,
                    "controller": controller,
                    "fossil_collect": fossil_collect,
                    "faults": faults,
                    "reliable": reliable,
                    "failure_detector": failure_detector,
                    "transport": transport,
                },
                opts=parallel_opts,
            )
        else:
            raise HopeError(
                f"unknown backend {backend!r} (choose 'sim' or 'parallel')"
            )
        #: Resume support: True while HopeSystem.resume() rebuilds the
        #: process tree — spawns register everything but leave the initial
        #: tasks unscheduled so restored logs replay instead.
        self._defer_start = False
        #: Durable persistence (repro.durable) — None keeps every hot-path
        #: hook a single attribute test, and durable=False traces stay
        #: byte-identical to pre-durable builds.
        self._durable = None
        if durable or durable_dir is not None:
            if durable_dir is None:
                raise HopeError("durable=True needs durable_dir= (the run directory)")
            if backend != "sim":
                raise HopeError("durable runs require the sim backend")
            if self.reliable is not None or self.detector is not None:
                raise HopeError(
                    "durable runs do not compose with reliable delivery or "
                    "the failure detector yet (their transport state is not "
                    "persisted); see docs/DURABILITY.md"
                )
            if transport is not None or controller is not None:
                raise HopeError(
                    "durable runs do not compose with a custom transport or "
                    "schedule controller"
                )
            if aid_mode != "registry":
                raise HopeError("durable runs require aid_mode='registry'")
            # The WAL is flushed from fossil-collection passes; durable
            # without the commit frontier would persist nothing.
            self.fossil_collect = True
            from ..durable.recorder import DurableRecorder

            self._durable = DurableRecorder(
                self, durable_dir, seed=seed, opts=durable_opts
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def spawn(self, name: str, fn: Callable[..., Generator], *args: Any) -> ProcessRuntime:
        """Create and start a HOPE process running ``fn(p, *args)``."""
        return self.backend.spawn(name, fn, *args)

    def _spawn_sim(self, name: str, fn: Callable[..., Generator], *args: Any) -> ProcessRuntime:
        """Spawn on the local simulator (the SimBackend path; also used by
        each parallel worker for its own shard)."""
        if name in self.procs:
            raise HopeError(f"process {name!r} already exists")
        proc = ProcessRuntime(name, fn, args)
        proc.track = self.timeline.process(name)
        self.procs[name] = proc
        self.network.register(name)
        proc.mailbox = self.network.mailbox(name)
        proc.mproc = self.machine.create_process(name)
        if self.detector is not None:
            self.detector.on_spawn(name)
        if not self._defer_start:
            self._start_task(proc, delay=0.0)
        self.tracer.record(self.sim.now, "spawn", name)
        return proc

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the system to quiescence; returns the final virtual time."""
        return self.backend.run(until, max_events)

    def _run_sim(self, until: Optional[float], max_events: Optional[int]) -> float:
        final = self.sim.run(until=until, max_events=max_events)
        self.timeline.close_all(final)
        # Clean stop: flush the committed frontier and seal a consolidation
        # envelope.  A crash (exception, os._exit, EventLimitExceeded)
        # skips this on purpose — recovery then works from the last sealed
        # batch, which is the contract under test in the kill/resume mode.
        if self._durable is not None:
            self._durable_sync()
        return final

    @classmethod
    def resume(cls, durable_dir: str, build: Callable[["HopeSystem"], Any],
               *, durable_opts: Optional[dict] = None, **kwargs) -> "HopeSystem":
        """Reload a durable run from ``durable_dir`` and continue it.

        ``build(system)`` must recreate the same process tree (same
        ``spawn`` names, bodies, and arguments) the original run started
        with; the restored effect logs then replay each process's
        committed prefix — replay invokes no handlers, so committed
        effects happen exactly once across incarnations — and execution
        continues live from the frontier.  Construction kwargs
        (``seed``, ``latency``, ``kernel``, ``fossil_interval``, ...)
        must match the original run; the seed is verified against the
        envelope.  Recovery picks the newest envelope whose CRC, seal,
        and generation chain verify, applies the WAL suffix up to its
        last valid batch marker, and falls back one generation on a
        torn or corrupt tail — rejections are counted in
        ``stats()["durable"]``, never silently ignored.
        """
        opts = dict(durable_opts or {})
        opts["_resuming"] = True
        kwargs.pop("durable", None)
        kwargs.pop("durable_dir", None)
        system = cls(durable=True, durable_dir=durable_dir,
                     durable_opts=opts, **kwargs)
        recorder = system._durable
        image = recorder.load_image()
        if image is None:
            # Nothing restorable (fresh directory or a crash before the
            # first sealed batch): run from program entry, recording.
            recorder.begin_fresh()
            build(system)
            return system
        # Restore the clock first: the queue is empty, so this only
        # advances virtual time to where the image was sealed.
        system.sim.run(until=image["time"])
        system._defer_start = True
        try:
            build(system)
        finally:
            system._defer_start = False
        recorder.restore(image)
        return system

    def _durable_sync(self) -> None:
        """Flush every process's committed frontier and seal an envelope
        (the same frontier computation as a fossil pass, minus the
        collection)."""
        machine = self.machine
        for name, proc in self.procs.items():
            record = machine.processes.get(name)
            frontier_log = len(proc.log)
            if record is not None:
                for iv in record.speculative:
                    cp = iv.ps
                    if isinstance(cp, Checkpoint):
                        frontier_log = min(frontier_log, cp.log_index)
            self._durable.flush_proc(proc, min(frontier_log, proc.log.cursor))
        self._durable.end_pass(self.sim.now, force_snapshot=True)

    def aid(self, ref: AidRef) -> AssumptionId:
        """Resolve a handle/key to the underlying machine AID."""
        return self.machine.aid(aid_key(ref))

    def aid_status(self, ref: AidRef) -> AidStatus:
        status = self.backend.aid_status(aid_key(ref))
        if status is not None:
            return status
        return self.aid(ref).status

    def result_of(self, name: str) -> Any:
        proc = self.procs[name]
        if not proc.done:
            raise HopeError(f"process {name!r} has not finished (state: {proc.task.state if proc.task else '?'})")
        return proc.result

    def is_done(self, name: str) -> bool:
        return self.procs[name].done

    def crash_process(self, name: str) -> None:
        """Crash a process: kill its task and drop its volatile effect log.

        Used by failure injection (the optimistic-recovery application);
        the process's machine record survives (it models the global
        dependency state, which in the paper lives in AID bookkeeping,
        not in the crashed node's volatile memory).
        """
        if self._durable is not None:
            raise HopeError(
                "in-simulation crash_process() is not supported on a durable "
                "run: a volatile log reset would desynchronize the persisted "
                "committed prefix (use the kill/resume chaos mode for "
                "host-crash semantics instead; see docs/DURABILITY.md)"
            )
        proc = self.procs[name]
        if proc.task is not None and proc.task.alive:
            proc.task.kill("crash")
        proc.crashed = True
        proc.incarnation += 1
        forgotten = self.machine.forget_process(name)
        if self._metered:
            # A crash discards speculation without a RollbackEvent; keep
            # the open-guess table and span tree honest about it.
            self.spec_metrics.forget_intervals(forgotten)
            self.spans.discard(forgotten, self.sim.now)
        self.network.mailbox(name).purge()
        if self.reliable is not None:
            self.reliable.on_crash(name)
        # Rebase state is volatile memory: a crashed node restarts from
        # program entry, so the log resets fully (base included) and every
        # captured commit-point state dies with the incarnation.
        proc.rebase = None
        proc.rebase_candidates.clear()
        proc.log.truncate(0)
        # The shadow replica models volatile memory too: a crash loses it.
        if proc.shadow is not None:
            proc.shadow.invalidate()
            proc.shadow = None
        # Outputs from forgotten intervals are permanently uncommitted
        # (their intervals are now rolled back); drop them from the buffer.
        proc.outputs = [r for r in proc.outputs if r.committed]
        self.tracer.record(self.sim.now, "crash", name)

    def restart_process(self, name: str) -> None:
        """Restart a crashed process from scratch (volatile state lost)."""
        proc = self.procs[name]
        if not proc.crashed:
            raise HopeError(f"process {name!r} is not crashed")
        proc.crashed = False
        proc.done = False
        # Anything that landed while the node was down is lost too.
        self.network.mailbox(name).purge()
        self._start_task(proc, delay=0.0)
        self.tracer.record(self.sim.now, "restart_after_crash", name)

    def stats(self) -> dict:
        """Aggregate runtime statistics for benchmarks and tests."""
        override = self.backend.stats()
        if override is not None:
            return override
        machine = dict(self.machine.stats)
        statuses = {"pending": 0, "affirmed": 0, "denied": 0}
        for aid in self.machine.aids.values():
            statuses[aid.status.value] += 1
        return {
            **machine,
            # Retired AIDs left the table but still count toward the run's
            # totals (orphaned pending ones included), so collected and
            # uncollected runs agree.
            "aids_pending": statuses["pending"] + machine["aids_retired_pending"],
            "aids_affirmed": statuses["affirmed"] + machine["aids_retired_affirmed"],
            "aids_denied": statuses["denied"] + machine["aids_retired_denied"],
            "aid_mode": self.control.name,
            "control_messages": self.control.control_messages,
            "messages_sent": self.network.messages_sent,
            "tags_attached": self.network.tag_count_total,
            "sim_events": self.sim.events_processed,
            "restarts": sum(p.restarts for p in self.procs.values()),
            "replayed_effects": sum(p.log.replayed_entries_total for p in self.procs.values()),
            "replay_skipped_entries": sum(
                p.log.skipped_entries_total for p in self.procs.values()
            ),
            "shadow_feeds": sum(
                p.log.shadow_feeds_total for p in self.procs.values()
            ),
            "fossil_log_dropped": sum(
                p.log.fossil_dropped_total for p in self.procs.values()
            ),
            "heap_compactions": self.sim.heap_compactions,
            "wasted_time": self.timeline.aggregate(Span.WASTED),
            "busy_time": self.timeline.aggregate(Span.BUSY),
            # Transport-specific blocks (fault counters, parallel wire
            # stats, ...) are contributed polymorphically — the engine
            # never type-checks its network.
            **self.network.stats_entries(),
            **(
                {"reliable": self.reliable.stats.as_dict()}
                if self.reliable is not None
                else {}
            ),
            **(
                {"detector": self.detector.stats.as_dict()}
                if self.detector is not None
                else {}
            ),
            **(
                {"durable": self._durable.stats_entries()}
                if self._durable is not None
                else {}
            ),
        }

    def pending_aids(self) -> list[AssumptionId]:
        """AIDs never affirmed or denied — a smell for stuck programs."""
        return [a for a in self.machine.aids.values() if a.pending]

    # ------------------------------------------------------------------
    # failure-detector support
    # ------------------------------------------------------------------
    def _deny_owned_aids(self, name: str) -> int:
        """Issue a definite deny for every unresolved AID ``name`` owns
        (the detector's suspicion action).  Returns how many were denied.

        Denies are authored by the ``__detector__`` machine pseudo-process
        — never speculative, so they are definite and cascade (Eq 15/24),
        rolling dependents back instead of leaving them stranded.
        """
        if self._aid_owner is None:
            return 0
        denied = 0
        for key, owner in list(self._aid_owner.items()):
            if owner != name:
                continue
            aid = self.machine.aids.get(key)
            if aid is None:
                # Retired by fossil collection — prune the owner entry.
                del self._aid_owner[key]
                continue
            if not aid.pending:
                continue
            self._detector_denied.add(key)
            self.machine.deny(DETECTOR_PID, aid)
            denied += 1
            if self._tracing:
                self.tracer.record(
                    self.sim.now, "detector_deny", name, aid=key
                )
        return denied

    def _owner_has_pending_aids(self, name: str) -> bool:
        if self._aid_owner is None:
            return False
        for key, owner in self._aid_owner.items():
            if owner != name:
                continue
            aid = self.machine.aids.get(key)
            if aid is not None and aid.pending:
                return True
        return False

    # ------------------------------------------------------------------
    # observability (repro.obs)
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> MetricsRegistry:
        """Refresh the point-in-time gauges and return the registry.

        The event-fed counters and histograms are always current; this
        fills in the quantities only known by sampling — timeline busy /
        blocked totals, cache hit counts, message and event counts — so
        an export taken right after reflects the whole run.  Raises on an
        unmetered system (there is nothing to snapshot into).
        """
        if not self._metered:
            raise HopeError(
                "metrics are disabled — construct HopeSystem(metrics=MetricsRegistry())"
            )
        if self.backend.owns_metrics():
            return self.metrics
        spec = self.spec_metrics
        spec.busy_time.set(self.timeline.aggregate(Span.BUSY))
        spec.blocked_time.set(self.timeline.aggregate(Span.BLOCKED))
        machine_stats = self.machine.stats
        spec.resolve_cache_hits.set(machine_stats["resolve_cache_hits"])
        spec.resolve_cache_misses.set(machine_stats["resolve_cache_misses"])
        spec.messages_sent.set(self.network.messages_sent)
        spec.sim_events.set(self.sim.events_processed)
        self.network.observe_gauges(spec)
        if self.reliable is not None:
            rel = self.reliable.stats
            spec.retries.set(rel.retries)
            spec.acks_sent.set(rel.acks_sent)
            spec.dup_suppressed.set(rel.dup_suppressed)
            spec.retry_exhausted.set(rel.exhausted)
        if self.detector is not None:
            det = self.detector.stats
            spec.suspects.set(det.suspects)
            spec.false_suspicions.set(det.false_suspicions)
            spec.detector_denies.set(det.detector_denies)
            spec.reconciled_affirms.set(det.reconciled_affirms)
        if self._durable is not None:
            self._durable.observe_gauges(self.metrics)
        return self.metrics

    def export_metrics(self, fmt: str = "summary") -> str:
        """Snapshot and render the metrics in one of
        :data:`repro.obs.export.FORMATS` (what the CLI's
        ``--metrics-out`` writes)."""
        from ..obs.export import render

        self.metrics_snapshot()
        return render(fmt, self.metrics, spans=self.spans, spec=self.spec_metrics)

    def dependency_dot(self) -> str:
        """Graphviz source of the live dependency graph — delegates to
        :func:`repro.core.inspect.to_dot`, the same bipartite view the
        span tree's IDO links project onto."""
        from ..core.inspect import to_dot

        return to_dot(self.machine)

    # ------------------------------------------------------------------
    # shadow checkpoints (fast rollback)
    # ------------------------------------------------------------------
    def _note_checkpoint(self, proc: ProcessRuntime, checkpoint: Checkpoint) -> None:
        """Advance the process's shadow replica to the new guess boundary.

        Incremental: only the log delta since the previous checkpoint is
        fed.  A shadow that has diverged (effect-impure body) stays
        invalid as a tombstone so we never pay for it again; one that was
        consumed by a promotion is rebuilt from scratch here.
        """
        if not self.fast_rollback:
            return
        shadow = proc.shadow
        if shadow is None:
            # A rebuilt replica starts where fresh incarnations do: at the
            # log base, from the rebase state if one was promoted.
            shadow = proc.shadow = ShadowCheckpoint(proc.body(None), pos=proc.log.base)
        if shadow.valid:
            shadow.advance(proc.log, checkpoint.log_index)

    def _try_promote_shadow(self, proc: ProcessRuntime, log_index: int, delay: float) -> bool:
        """Restore a rollback checkpoint by promoting the shadow replica.

        Returns False (leaving a full replay to the caller) when there is
        no shadow, it diverged, or it sits past the truncation point —
        the shadow tracks the *newest* checkpoint, so a rollback to an
        older one falls back to replay from entry 0.
        """
        shadow = proc.shadow
        if shadow is None or not shadow.valid or shadow.pos > log_index:
            if shadow is not None and shadow.pos > log_index:
                shadow.invalidate()
                proc.shadow = None
            return False
        if not shadow.advance(proc.log, log_index):   # catch up the delta
            proc.shadow = None
            return False
        proc.shadow = None
        effect = shadow.pending_effect
        proc.log.begin_replay_at(log_index)
        task = Task(
            self.sim,
            proc.name,
            proc.body,
            handler=self._handle_effect,
            on_exit=self._on_task_exit,
            context=proc,
        )
        proc.task = task
        task.start_adopted(
            shadow.gen,
            delay,
            lambda t, e=effect: t.dispatch(e),
        )
        return True

    # ------------------------------------------------------------------
    # fossil collection (commit frontier)
    # ------------------------------------------------------------------
    def _run_fossil_collection(self) -> None:
        """One deferred collection pass (see the ``fossil_collect`` doc).

        Runs only at effect-dispatch and delivery boundaries: the machine
        is between primitives and the simulator between callbacks, so no
        half-applied transition can be observed.  Purely a memory
        operation — it schedules nothing, draws no randomness, and leaves
        the trace untouched, which is what keeps collected and
        uncollected runs byte-identical.
        """
        self._fossil_pending = False
        self._finalizes_since_collect = 0
        machine = self.machine
        for name, proc in self.procs.items():
            record = machine.processes.get(name)
            if record is None:
                continue
            # Per-process frontier: the oldest still-speculative guess's
            # checkpoint (log position + virtual time); with no live
            # speculation everything up to now is committed.
            frontier_log = len(proc.log)
            frontier_time = self.sim.now
            for iv in record.speculative:
                cp = iv.ps
                if isinstance(cp, Checkpoint):
                    frontier_log = min(frontier_log, cp.log_index)
                    frontier_time = min(frontier_time, cp.time)
            # Effect-log prefix: promote the newest rebase candidate at or
            # behind the frontier (and behind any in-flight replay cursor)
            # and drop the entries it makes unreachable.
            target = min(frontier_log, proc.log.cursor)
            # Durable flush first, while the entries below the frontier are
            # still in the log: everything the prefix-drop below may
            # reclaim has then already reached the WAL.
            if self._durable is not None:
                self._durable.flush_proc(proc, target)
            best: Optional[RebasePoint] = None
            for cand in proc.rebase_candidates:
                if cand.log_index <= target and (
                    best is None or cand.log_index > best.log_index
                ):
                    best = cand
            if best is not None and best.log_index > proc.log.base:
                proc.rebase = best
                proc.rebase_candidates = [
                    c for c in proc.rebase_candidates if c.log_index > best.log_index
                ]
                proc.log.drop_prefix(best.log_index)
                # A shadow replica parked before the new base can never
                # catch up (its feed entries are gone); the next guess
                # rebuilds one from the rebase state instead.
                if proc.shadow is not None and proc.shadow.pos < proc.log.base:
                    proc.shadow.invalidate()
                    proc.shadow = None
                if self._durable is not None:
                    self._durable.note_promotion(proc)
            proc.track.compact_before(frontier_time)
        fossil_stats = machine.fossil_collect(self._pinned_aid_keys())
        if self._durable is not None:
            # Durability point: the pass's WAL records become recoverable
            # here (sealed batch marker + fsync), and every Nth pass
            # consolidates into a fresh envelope, rotating the WAL.
            self._durable.end_pass(self.sim.now)
        if self._metered:
            spec = self.spec_metrics
            spec.fossil_collections.inc()
            spec.fossil_history_dropped.inc(fossil_stats.history_dropped)
            spec.fossil_intervals_dropped.inc(fossil_stats.intervals_dropped)
            spec.fossil_aids_retired.inc(fossil_stats.aids_retired)
            spec.fossil_depsets_dropped.inc(fossil_stats.depsets_dropped)

    def _pinned_aid_keys(self) -> frozenset:
        """AID keys that must survive retirement even if the machine is
        done with them: tags of messages still in flight or queued (their
        delivery resolves tags by key), tags of messages held by live
        speculative intervals (a rollback requeues them), and every
        handle user code still reaches (a late ``guess`` looks it up)."""
        pinned: set = set(self._handles.keys())
        pinned.update(self.network.pinned_tag_keys())
        if self.reliable is not None:
            pinned.update(self.reliable.pinned_tag_keys())
        for name, proc in self.procs.items():
            record = self.machine.processes.get(name)
            if record is None:
                continue
            for iv in record.speculative:
                for message in iv.meta.get("received", ()):
                    if not message.dead:
                        pinned.update(message.tags)
        return frozenset(pinned)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def _start_task(self, proc: ProcessRuntime, delay: float) -> None:
        proc.log.begin_replay()
        task = Task(
            self.sim,
            proc.name,
            proc.body,
            handler=self._handle_effect,
            on_exit=self._on_task_exit,
            context=proc,
        )
        proc.task = task
        task.start(delay=delay)

    def _on_task_exit(self, task: Task) -> None:
        proc: ProcessRuntime = task.env.context
        if task is not proc.task:
            return  # an old incarnation being killed
        if task.done:
            proc.done = True
            proc.result = task.result
            self.tracer.record(self.sim.now, "exit", proc.name)

    # ------------------------------------------------------------------
    # effect dispatch
    # ------------------------------------------------------------------
    def _handle_effect(self, task: Task, effect: Effect) -> None:
        if self._fossil_pending:
            # Deferred from a finalize listener: here the machine is
            # between primitives and the simulator between events, so
            # reclamation cannot observe a half-applied transition.
            self._run_fossil_collection()
        proc: ProcessRuntime = task.env.context
        # Handler lookup doubles as the type check: only HOPE effects are
        # registered, so a miss means a foreign (or subclassed) effect.
        # (_handler_get is _LIVE_HANDLERS.get pre-bound at __init__ — this
        # runs once per live effect, and the class-attribute walk plus
        # method bind were measurable.)
        handler = self._handler_get(type(effect))
        if handler is None:
            raise HopeError(
                f"HOPE process {proc.name!r} yielded non-HOPE effect {effect!r}; "
                "use the HopeProcess facade (p.compute / p.recv / ...) so the "
                "effect log stays replayable"
            )
        log = proc.log
        # Replay fast-forward: feed the whole logged prefix in one tight
        # loop (one simulator event total) instead of scheduling a resume
        # event per entry.  No virtual time passes during replay either
        # way, and the replaying task interacts with nothing live, so
        # collapsing the per-entry events is behaviour-preserving.
        # (log.pending is `log.replaying` as a maintained counter: this
        # guard runs once per live effect and the index arithmetic, let
        # alone the property call, was measurable.)
        while log.pending:
            result = log.feed(effect.kind)
            effect = task.drive(result)
            if effect is None:
                return  # the incarnation finished (or died) mid-replay
            handler = self._handler_get(type(effect))
            if handler is None:
                raise HopeError(
                    f"HOPE process {proc.name!r} yielded non-HOPE effect "
                    f"{effect!r} during replay"
                )
        handler(self, proc, task, effect)

    # ---- live handlers -------------------------------------------------
    def _do_aid_init(self, proc, task, effect: AidInitEffect) -> None:
        aid = self.machine.aid_init(effect.name)
        handle = AidHandle(aid.key, effect.name)
        self._handles[aid.key] = handle
        if self._aid_owner is not None:
            self._aid_owner[aid.key] = proc.name
        if self.remote is not None:
            # Shard-local AID: the coordinator learns ownership so a dead
            # worker's unresolved assumptions can be detector-denied.
            self.remote.note_aid_init(aid.key, proc.name)
        proc.log.append("aid_init", handle)
        if self._tracing:
            self.tracer.record(self.sim.now, "aid_init", proc.name, aid=aid.key)
        task.resume_now(handle)

    def _do_guess(self, proc, task, effect: GuessEffect) -> None:
        aid = self._lookup_aid(effect.aid_key)
        if not self.speculation and aid.pending:
            # Pessimistic mode: wait for the resolution instead of
            # speculating.  The process stays definite throughout.
            proc.track.mark(Span.BLOCKED, self.sim.now)
            self._aid_waiters.setdefault(aid.key, []).append(
                (proc, task, proc.incarnation)
            )
            if self._tracing:
                self.tracer.record(
                    self.sim.now, "guess_wait", proc.name, aid=aid.key
                )
            return
        checkpoint = Checkpoint(len(proc.log), self.sim.now)
        value = self.machine.guess(proc.name, aid, ps=checkpoint)
        if value and aid.pending:
            # A real speculative interval was opened: this checkpoint is
            # now a possible rollback target, so park the shadow on it.
            self._note_checkpoint(proc, checkpoint)
            self.control.note_guess(proc.name, 1)
        proc.log.append("guess", value)
        if self._tracing:
            self.tracer.record(
                self.sim.now, "guess", proc.name, aid=aid.key, value=value
            )
        task.resume_now(value)

    def _do_resolution(self, proc, task, effect) -> None:
        """affirm / deny / free_of share the may-roll-back-self pattern."""
        if self._detector_denied and effect.aid_key in self._detector_denied:
            if isinstance(effect, AffirmEffect):
                # False-suspicion reconciliation: the detector already
                # issued a definite deny for this AID, and definite
                # resolutions are immutable (§5) — the process was fenced
                # out.  Its affirm becomes a traced no-op rather than a
                # resolution conflict; it re-reached this statement via
                # the deny's own rollback, on the pessimistic branch.
                if self.detector is not None:
                    self.detector.stats.reconciled_affirms += 1
                if self._tracing:
                    self.tracer.record(
                        self.sim.now, "reconcile_affirm", proc.name,
                        aid=effect.aid_key,
                    )
                proc.log.append(effect.kind, None)
                task.resume_now(None)
                return
            if isinstance(effect, DenyEffect):
                # Same direction as the detector's deny: duplicate
                # resolutions are no-ops in lenient mode, and harmless to
                # short-circuit in strict mode too.
                proc.log.append(effect.kind, None)
                if self._tracing:
                    self.tracer.record(
                        self.sim.now, effect.kind, proc.name,
                        aid=effect.aid_key, status="denied",
                    )
                task.resume_now(None)
                return
        aid = self._lookup_aid(effect.aid_key)
        before = proc.incarnation
        if isinstance(effect, AffirmEffect):
            self.control.issue("affirm", proc.name, aid)
        elif isinstance(effect, DenyEffect):
            self.control.issue("deny", proc.name, aid)
        else:
            self.control.issue("free_of", proc.name, aid)
        if self._tracing:
            self.tracer.record(
                self.sim.now, effect.kind, proc.name, aid=aid.key, status=aid.status.value
            )
        if proc.incarnation != before:
            # The primitive rolled back its own executor (e.g. a free_of
            # violation).  A restart is already scheduled; the statement's
            # log entry died in the truncation, so neither log nor resume.
            return
        proc.log.append(effect.kind, None)
        if self._durable is not None:
            self._durable.note_resolution(proc.name, proc.log.cursor - 1, aid.key)
        task.resume_now(None)

    def _do_send(self, proc, task, effect: SendEffect) -> None:
        current = proc.mproc.current
        ido = current.ido if current is not None else self._empty_ido
        tags = ido.tag_keys           # interned: O(1) after the first send
        if self.reliable is not None:
            msg_id, delivery = self.reliable.send(
                proc.name, effect.dst, effect.payload, tags
            )
        else:
            delivery = self.network.send(
                proc.name, effect.dst, effect.payload, tags=tags
            )
            msg_id = delivery.message.msg_id
        if current is not None:
            current.meta.setdefault("sent", []).append(delivery)
        # log.append inlined (hot path: one entry per send): the live-side
        # invariant is cursor == base + len(entries), so += 1 suffices.
        log = proc.log
        log.entries.append(_make_entry(("send", msg_id)))
        log.cursor += 1
        if self._durable is not None:
            self._durable.note_send(
                proc.name, log.cursor - 1, msg_id, effect.dst, effect.payload, tags
            )
        if self._tracing:
            self.tracer.record(
                self.sim.now, "send", proc.name, dst=effect.dst, tags=len(tags)
            )
        task.resume_now(msg_id)

    def _do_recv(self, proc, task, effect: RecvEffect) -> None:
        bridge = proc.bridge
        if bridge is None or bridge.incarnation != proc.incarnation:
            proc.bridge = bridge = _RecvBridge(self, proc, effect)
        else:
            # One recv is outstanding at a time, so the incarnation's
            # bridge is reusable — only the effect (predicate/timeout)
            # changes between recvs.
            bridge.effect = effect
        task._cleanups.append(bridge.on_kill)
        track = proc.track
        open_span = track._open
        if open_span is None or open_span.kind != Span.BLOCKED:
            # Inlined mark() early-return: in steady-state message loops
            # the track is already BLOCKED and the call was pure overhead.
            track.mark(Span.BLOCKED, self.sim._now)
        # Inside the dispatch trampoline: a synchronous delivery (message
        # already queued) completes the effect via resume_now, so a
        # process draining a same-tick backlog re-enters the trampoline,
        # DepSet propagation, and obs hooks once per (process, tick)
        # instead of once per message.
        bridge.sync = True
        try:
            if effect.timeout is None:
                # Timer-less recv (the hot path): re-register the bridge's
                # reusable waiter instead of allocating one per message.
                waiter = bridge.waiter
                waiter.predicate = effect.predicate
                proc.mailbox.register_waiter(waiter)
            else:
                proc.mailbox.register_receiver(
                    bridge, effect.timeout, effect.predicate
                )
        finally:
            bridge.sync = False

    def _register_bridge(self, bridge: _RecvBridge) -> None:
        effect = bridge.effect
        if effect.timeout is None:
            waiter = bridge.waiter
            waiter.predicate = effect.predicate
            bridge.proc.mailbox.register_waiter(waiter)
        else:
            bridge.proc.mailbox.register_receiver(
                bridge, effect.timeout, effect.predicate
            )

    def _do_compute(self, proc, task, effect: ComputeEffect) -> None:
        proc.track.mark(Span.BUSY, self.sim.now)
        task._pending = self.sim.schedule(
            effect.duration,
            self._finish_compute,
            proc,
            task,
            label=f"compute:{proc.name}",
        )

    def _finish_compute(self, proc: ProcessRuntime, task: Task) -> None:
        proc.track.mark(Span.BLOCKED, self.sim.now)
        proc.log.append("compute", None)
        task.resume_inline(None)

    def _do_now(self, proc, task, effect: NowEffect) -> None:
        value = self.sim.now
        proc.log.append("now", value)
        task.resume_now(value)

    def _do_random(self, proc, task, effect: RandomEffect) -> None:
        value = self.streams[f"proc:{proc.name}"].random()
        proc.log.append("random", value)
        task.resume_now(value)

    def _do_emit(self, proc, task, effect: EmitEffect) -> None:
        current = proc.mproc.current
        record = OutputRecord(effect.value, len(proc.log), current, self.sim.now)
        proc.outputs.append(record)
        proc.log.append("emit", None)
        if self._tracing:
            self.tracer.record(
                self.sim.now,
                "emit",
                proc.name,
                value=repr(effect.value),
                speculative=current is not None,
            )
        task.resume_now(None)

    #: Rebase candidates per process are thinned once they exceed this
    #: (every other one dropped, oldest and newest kept) so a stalled
    #: frontier cannot make the candidate list itself unbounded.
    _MAX_REBASE_CANDIDATES = 32

    def _do_commit_point(self, proc, task, effect: CommitPointEffect) -> None:
        proc.log.append("commit", None)
        if self.fossil_collect:
            # Candidate position = log length *after* the commit entry: a
            # body resumed from this state next yields the effect that
            # follows the commit_point, i.e. the entry at that position.
            state = copy.deepcopy(effect.state)
            proc.rebase_candidates.append(
                RebasePoint(len(proc.log), state, self.sim.now)
            )
            if len(proc.rebase_candidates) > self._MAX_REBASE_CANDIDATES:
                del proc.rebase_candidates[1::2]
        if self._tracing:
            self.tracer.record(self.sim.now, "commit_point", proc.name)
        task.resume_now(None)

    def _do_spawn(self, proc, task, effect: SpawnEffect) -> None:
        if proc.mproc.current is not None:
            raise SpeculativeSpawnError(
                f"{proc.name!r} tried to spawn {effect.name!r} while speculative"
            )
        if self._durable is not None:
            # Replay never re-invokes handlers, so a committed spawn entry
            # could not recreate its child at resume; durable runs must
            # build their whole tree up front.
            raise HopeError(
                "dynamic p.spawn is not supported on a durable run — spawn "
                "every process from build() (see docs/DURABILITY.md)"
            )
        self.spawn(effect.name, effect.fn, *effect.args)
        proc.log.append("spawn", effect.name)
        task.resume_now(effect.name)

    def _lookup_aid(self, key: str) -> AssumptionId:
        """Resolve an AID key for a primitive.

        Standalone systems hit the machine directly (unknown keys raise,
        as ever).  A parallel worker falls back to the remote bridge: a
        key minted on another shard — whose handle arrived inside a
        message payload — is adopted as a pending mirror, to be resolved
        by relayed definite affirms/denies from its owner.
        """
        if self.remote is not None:
            return self.remote.lookup_aid(key)
        return self.machine.aid(key)

    _LIVE_HANDLERS = {
        AidInitEffect: _do_aid_init,
        GuessEffect: _do_guess,
        AffirmEffect: _do_resolution,
        DenyEffect: _do_resolution,
        FreeOfEffect: _do_resolution,
        SendEffect: _do_send,
        RecvEffect: _do_recv,
        ComputeEffect: _do_compute,
        NowEffect: _do_now,
        RandomEffect: _do_random,
        EmitEffect: _do_emit,
        CommitPointEffect: _do_commit_point,
        SpawnEffect: _do_spawn,
    }

    # ------------------------------------------------------------------
    # outputs (output-commit discipline)
    # ------------------------------------------------------------------
    def outputs(self, name: str) -> list[Any]:
        """All currently standing outputs of ``name`` (speculative included)."""
        return [record.value for record in self.procs[name].outputs]

    def committed_outputs(self, name: str) -> list[Any]:
        """Outputs that no live speculation can withdraw anymore."""
        return [r.value for r in self.procs[name].outputs if r.committed]

    # ------------------------------------------------------------------
    # message delivery (via bridges)
    # ------------------------------------------------------------------
    def _deliver(
        self,
        proc: ProcessRuntime,
        effect: RecvEffect,
        value: Any,
        bridge: _RecvBridge,
    ) -> None:
        if self._fossil_pending:
            self._run_fossil_collection()
        if proc.incarnation != bridge.incarnation:
            return  # stale delivery aimed at a rolled-back incarnation
        task = proc.task
        if value is TIMED_OUT:
            proc.log.append("recv", TIMED_OUT)
            if self._tracing:
                self.tracer.record(self.sim.now, "recv_timeout", proc.name)
            task.clear_cleanups()
            task.resume_inline(TIMED_OUT)
            return
        message: Message = value
        if message.dead:
            self._register_bridge(bridge)
            return
        if message.tags:
            live, deps = self._resolve_message_tags(message)
            if not live:
                if self._tracing:
                    self.tracer.record(
                        self.sim.now, "drop_dead_message", proc.name, msg=message.msg_id
                    )
                self._register_bridge(bridge)
                return
            if deps:
                checkpoint = Checkpoint(len(proc.log), self.sim.now)
                interval = self.machine.guess_many(proc.name, deps, ps=checkpoint)
                if interval is not None:
                    self._note_checkpoint(proc, checkpoint)
                    self.control.note_guess(proc.name, len(deps))
                    if self._tracing:
                        self.tracer.record(
                            self.sim.now,
                            "implicit_guess",
                            proc.name,
                            aids=tuple(sorted(a.key for a in deps)),
                        )
        # tuple.__new__ pre-bound to the class — skips the generated
        # namedtuple __new__ frame (one allocation per delivered message).
        received = _new_received((message.payload, message.src, message.msg_id))
        current = proc.mproc.current
        if current is not None:
            current.meta.setdefault("received", []).append(message)
        # log.append inlined, as in _do_send (one entry per delivery).
        log = proc.log
        log.entries.append(_make_entry(("recv", received)))
        log.cursor += 1
        if self._tracing:
            self.tracer.record(
                self.sim.now, "recv", proc.name, src=message.src, msg=message.msg_id
            )
        task._cleanups.clear()
        if bridge.sync:
            # Registration found the message already queued: the dispatch
            # trampoline is on the stack, so complete the recv flat.
            task.resume_now(received)
        elif self._defer_delivery:
            # Mid-rollback requeue: the machine is not quiescent, so keep
            # the pre-batching scheduled resume for this delivery.
            task.resume(received)
        else:
            # Delivery/timer event context: step the generator directly
            # instead of burning a resume event per message
            # (resume_inline, flattened — this runs once per delivery).
            task._pending = None
            follow = task._drive(received, False)
            if follow is not None:
                task.dispatch(follow)

    def _resolve_message_tags(self, message: Message):
        return self.machine.resolve_tag_keys(message.tags)

    # ------------------------------------------------------------------
    # rollback propagation
    # ------------------------------------------------------------------
    def _on_machine_event(self, event: MachineEvent) -> None:
        if isinstance(event, RollbackEvent):
            self._apply_rollback(event)
        elif isinstance(event, FinalizeEvent):
            if self._tracing:
                interval = event.interval
                self.tracer.record(
                    self.sim.now,
                    "finalize",
                    event.pid,
                    interval=interval.label,
                    aid=interval.aid.key if interval.aid is not None else None,
                )
            if self.fossil_collect:
                # Finalize is what advances the commit frontier (Eq 21), so
                # it is the natural collection trigger — but the machine is
                # mid-primitive here, so only raise the deferred flag.
                self._finalizes_since_collect += 1
                if self._finalizes_since_collect >= self.fossil_interval:
                    self._fossil_pending = True
        if self._aid_waiters:
            self._wake_aid_waiters()

    def _observe_machine_event(self, event: MachineEvent) -> None:
        """Second machine listener, subscribed only when metered: folds
        every event into the instrument set and the span collector.
        Purely reads — it must never schedule, trace, or mutate machine
        state, so metered and unmetered runs stay byte-identical."""
        now = self.sim.now
        self.spec_metrics.observe_event(event, now)
        self.spans.observe(event, now)

    def _wake_aid_waiters(self) -> None:
        """Resume pessimistic-mode guessers whose AIDs have resolved."""
        for key in list(self._aid_waiters):
            aid = self.machine.aids.get(key)
            if aid is None or aid.pending:
                continue
            waiters = self._aid_waiters.pop(key)
            for proc, task, incarnation in waiters:
                if proc.incarnation != incarnation or not task.alive:
                    continue
                value = self.machine.guess(proc.name, aid)  # guess_skip path
                proc.log.append("guess", value)
                if self._tracing:
                    self.tracer.record(
                        self.sim.now, "guess", proc.name, aid=aid.key, value=value
                    )
                task.resume(value)

    def _apply_rollback(self, event: RollbackEvent) -> None:
        proc = self.procs.get(event.pid)
        if proc is None:
            # A process known to the machine but not the runtime (pure
            # machine users, e.g. the oracle) — bookkeeping only.
            return
        checkpoint: Checkpoint = event.resume_interval.ps
        redeliver: list[Message] = []
        for dead in event.discarded:
            for delivery in dead.meta.get("sent", ()):
                delivery.retract()
            for message in dead.meta.get("received", ()):
                if not message.dead:
                    redeliver.append(message)
        self.tracer.record(
            self.sim.now,
            "rollback",
            proc.name,
            to_log_index=checkpoint.log_index,
            discarded=len(event.discarded),
            cause=event.cause.key if event.cause is not None else None,
        )
        # Kill the current incarnation first so redelivered messages do not
        # reach its (now invalid) receive bridge.
        proc.incarnation += 1
        if proc.task is not None and proc.task.alive:
            proc.task.kill("rollback")
        proc.done = False
        proc.log.truncate(checkpoint.log_index)
        if self._durable is not None:
            self._durable.on_rollback(proc.name, checkpoint.log_index)
        if proc.rebase_candidates:
            # Candidates past the truncation point captured state from the
            # discarded execution; one exactly at it is still valid (its
            # state reflects only the surviving prefix).
            proc.rebase_candidates = [
                c for c in proc.rebase_candidates if c.log_index <= checkpoint.log_index
            ]
        # Withdraw speculative outputs produced after the checkpoint
        # (the output-commit discipline: uncommitted outputs die with the
        # speculation that produced them).
        proc.outputs = [
            r for r in proc.outputs if r.log_index < checkpoint.log_index
        ]
        wasted = proc.track.reclassify_since(
            checkpoint.time, Span.WASTED, self.sim.now
        )
        if redeliver:
            redeliver.sort(key=lambda m: (m.deliver_time, m.msg_id))
            prev = self._defer_delivery
            self._defer_delivery = True
            try:
                self.network.mailbox(proc.name).requeue_front(redeliver)
            finally:
                self._defer_delivery = prev
        proc.restarts += 1
        delay = self.rollback_overhead + self.control.notify_delay()
        promoted = self._try_promote_shadow(proc, checkpoint.log_index, delay)
        if not promoted:
            self._start_task(proc, delay)
        if self._metered:
            spec = self.spec_metrics
            spec.restarts.inc()
            spec.wasted_time.inc(wasted)
            spec.replay_entries.inc(0 if promoted else len(proc.log))
        self.tracer.record(
            self.sim.now,
            "restart",
            proc.name,
            replay=0 if promoted else len(proc.log),
            wasted=round(wasted, 6),
        )
