"""Runtime resilience: reliable delivery and a heartbeat failure detector.

Two opt-in layers that let HOPE programs survive the faults
:mod:`repro.sim.faults` injects:

* :class:`ReliableTransport` — per-message acks, timeout-driven resend
  with capped exponential backoff, and receiver-side dedup by ``msg_id``.
  A retransmission reuses the original message id, so the receiver
  suppresses copies it has already delivered; retraction
  (:meth:`ReliableDelivery.retract`) kills every in-flight copy *and*
  the retry timer, so a rolled-back sender's retries die with it.

* :class:`HeartbeatDetector` — each non-crashed process "sends" a
  heartbeat to a detector pseudo-endpoint every ``interval``; a process
  silent for longer than ``timeout`` is *suspected*, and every unresolved
  AID it owns is issued a definite ``deny`` — converting a crashed peer
  into the rollback the model was built for (Theorems 5.1–6.3) instead
  of stranding its speculative dependents.  Suspicion is unreliable by
  design (partitions and heartbeat loss produce false positives); a
  heartbeat from a suspected process *unsuspects* it, and the engine
  reconciles the false suspicion by treating the process's later
  ``affirm`` of a detector-denied AID as a no-op (the deny already won —
  the paper's lenient duplicate-resolution rule, §5).

Both layers draw any probabilistic fate (ack loss, heartbeat loss) from
the network's fault plan, so a resilient faulty run still replays
byte-identically from its seed.  With neither enabled the engine's hot
path is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..sim import Delivery, ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import HopeSystem

#: Machine pseudo-process that authors detector denies.  Registered with
#: the abstract machine (denies need an issuing pid) but never spawned as
#: a runtime process, so it is always definite — its denies cascade.
DETECTOR_PID = "__detector__"


class ReliableConfig:
    """Tuning for :class:`ReliableTransport`.

    ``ack_timeout`` is the first resend delay; each subsequent resend
    waits ``backoff`` times longer, capped at ``max_backoff``.  After
    ``max_attempts`` transmissions the send is abandoned (counted in
    ``stats.exhausted``) — an unreachable peer must not keep the
    simulation alive forever.
    """

    __slots__ = ("ack_timeout", "backoff", "max_backoff", "max_attempts")

    def __init__(
        self,
        ack_timeout: float = 8.0,
        backoff: float = 2.0,
        max_backoff: float = 60.0,
        max_attempts: int = 12,
    ) -> None:
        if ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {ack_timeout}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if max_backoff < ack_timeout:
            raise ValueError("max_backoff must be >= ack_timeout")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.ack_timeout = float(ack_timeout)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.max_attempts = int(max_attempts)


class ReliableStats:
    """Counters for the ack/retry machinery."""

    __slots__ = (
        "sent",
        "retries",
        "acked",
        "acks_sent",
        "dup_suppressed",
        "dropped_at_crashed",
        "exhausted",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.retries = 0
        self.acked = 0
        self.acks_sent = 0
        self.dup_suppressed = 0
        self.dropped_at_crashed = 0
        self.exhausted = 0

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


class _PendingSend:
    """One reliable send awaiting its ack."""

    __slots__ = ("msg_id", "src", "dst", "payload", "tags", "attempts", "timer",
                 "deliveries", "closed")

    def __init__(
        self, msg_id: int, src: str, dst: str, payload: Any, tags: frozenset
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.payload = payload
        self.tags = tags
        self.attempts = 1
        self.timer: Optional[ScheduledEvent] = None
        self.deliveries: list[Delivery] = []
        self.closed = False


class ReliableDelivery:
    """Retractable handle over *all* copies of a reliable send.

    Duck-types :class:`~repro.sim.channel.Delivery` where the engine's
    rollback path needs it: retracting marks every transmitted copy dead
    and cancels the pending retry timer, so a rolled-back sender stops
    retransmitting a message from a discarded world.
    """

    __slots__ = ("_record", "_transport")

    def __init__(self, record: _PendingSend, transport: "ReliableTransport") -> None:
        self._record = record
        self._transport = transport

    @property
    def message(self):
        """The most recent transmitted envelope (for msg_id inspection)."""
        return self._record.deliveries[-1].message

    def retract(self) -> None:
        self._transport._close(self._record, retract=True)

    def __repr__(self) -> str:
        state = "closed" if self._record.closed else f"attempt={self._record.attempts}"
        return f"ReliableDelivery(#{self._record.msg_id} {state})"


class ReliableTransport:
    """Ack/retry/dedup layer over the engine's network.

    Installed as the network's ``deliver_hook``: every arriving message
    is intercepted at the destination mailbox.  A message for a crashed
    node is dropped unacked (the node is down — the sender keeps
    retrying, which is what bridges a restart).  Otherwise an ack is
    launched back over the (possibly faulty) reverse link, duplicates of
    an already-delivered ``msg_id`` are suppressed, and fresh messages
    pass through to the mailbox.

    Dedup memory is per-receiver volatile state: a crash clears it, so a
    message can be re-delivered to the restarted incarnation — reliable
    delivery here is at-least-once across crashes (exactly-once between
    them), matching Strom & Yemini's recovery model where the restarted
    process re-consumes its input.
    """

    def __init__(self, engine: "HopeSystem", config: ReliableConfig) -> None:
        self.engine = engine
        self.config = config
        self.stats = ReliableStats()
        self._pending: dict[int, _PendingSend] = {}
        self._seen: dict[str, set[int]] = {}
        engine.network.deliver_hook = self._on_arrival

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(
        self, src: str, dst: str, payload: Any, tags: frozenset
    ) -> tuple[int, ReliableDelivery]:
        delivery = self.engine.network.send(src, dst, payload, tags=tags)
        record = _PendingSend(delivery.message.msg_id, src, dst, payload, tags)
        record.deliveries.append(delivery)
        self._pending[record.msg_id] = record
        record.timer = self.engine.sim.schedule(
            self.config.ack_timeout,
            self._on_timeout,
            record,
            label=f"retry:{src}->{dst}",
        )
        self.stats.sent += 1
        return record.msg_id, ReliableDelivery(record, self)

    def _on_timeout(self, record: _PendingSend) -> None:
        if record.closed:
            return
        record.timer = None
        if record.attempts >= self.config.max_attempts:
            self.stats.exhausted += 1
            self._close(record, retract=False)
            if self.engine._tracing:
                self.engine.tracer.record(
                    self.engine.sim.now,
                    "retry_exhausted",
                    record.src,
                    dst=record.dst,
                    msg=record.msg_id,
                    attempts=record.attempts,
                )
            return
        record.attempts += 1
        self.stats.retries += 1
        delivery = self.engine.network.send(
            record.src, record.dst, record.payload,
            tags=record.tags, msg_id=record.msg_id,
        )
        record.deliveries.append(delivery)
        delay = min(
            self.config.ack_timeout * self.config.backoff ** (record.attempts - 1),
            self.config.max_backoff,
        )
        record.timer = self.engine.sim.schedule(
            delay, self._on_timeout, record, label=f"retry:{record.src}->{record.dst}"
        )
        if self.engine._tracing:
            self.engine.tracer.record(
                self.engine.sim.now,
                "retry",
                record.src,
                dst=record.dst,
                msg=record.msg_id,
                attempt=record.attempts,
            )

    def _close(self, record: _PendingSend, retract: bool) -> None:
        if not record.closed:
            record.closed = True
            self._pending.pop(record.msg_id, None)
            if record.timer is not None:
                record.timer.cancel()
                record.timer = None
        # Retraction is NOT gated on `closed`: an ack only settles the
        # retry loop, it does not outlive a rollback.  A sender rolling
        # back past an already-acked (and possibly consumed) send must
        # still kill every transmitted copy, or the receiver keeps a
        # message from a discarded world and the re-executed send
        # double-delivers the round.
        if retract:
            for delivery in record.deliveries:
                delivery.retract()

    # ------------------------------------------------------------------
    # receiver side (network deliver_hook)
    # ------------------------------------------------------------------
    def _on_arrival(self, message) -> bool:
        proc = self.engine.procs.get(message.dst)
        if proc is not None and proc.crashed:
            # The node is down: arrivals are lost, no ack goes back — the
            # sender's retries are what carry the message past a restart.
            self.stats.dropped_at_crashed += 1
            return False
        self._send_ack(message.dst, message.src, message.msg_id)
        seen = self._seen.get(message.dst)
        if seen is None:
            seen = self._seen[message.dst] = set()
        if message.msg_id in seen:
            # Duplicate (fault-injected copy or retransmission racing its
            # ack): re-acked above, suppressed here.
            self.stats.dup_suppressed += 1
            return False
        seen.add(message.msg_id)
        return True

    def _send_ack(self, src: str, dst: str, msg_id: int) -> None:
        lost, delay = self.engine.network.control_fate(src, dst)
        if lost:
            return
        self.stats.acks_sent += 1
        self.engine.sim.schedule(
            delay, self._on_ack, msg_id, label=f"ack:{src}->{dst}"
        )

    def _on_ack(self, msg_id: int) -> None:
        record = self._pending.get(msg_id)
        if record is None or record.closed:
            return
        self.stats.acked += 1
        self._close(record, retract=False)

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------
    def on_crash(self, name: str) -> None:
        """Crash semantics: the node's dedup memory is volatile, and its
        own unacked sends stop retrying (the transmitter is down; copies
        already on the wire keep flying)."""
        self._seen.pop(name, None)
        for record in list(self._pending.values()):
            if record.src == name:
                self._close(record, retract=False)

    def pinned_tag_keys(self) -> set:
        """Tags of unacked sends: a future retransmission re-resolves
        them at delivery, so fossil collection must not retire them."""
        pinned: set = set()
        for record in self._pending.values():
            pinned.update(record.tags)
        return pinned


class DetectorConfig:
    """Tuning for :class:`HeartbeatDetector`.

    ``interval`` is the heartbeat (and sweep) period, ``timeout`` the
    silence threshold before suspicion, ``latency`` the one-way heartbeat
    delay.  ``timeout`` should comfortably exceed ``interval + latency``
    or every process is suspected between its own heartbeats.
    """

    __slots__ = ("interval", "timeout", "latency")

    def __init__(
        self, interval: float = 5.0, timeout: float = 15.0, latency: float = 1.0
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if timeout <= interval + latency:
            raise ValueError(
                f"timeout={timeout} must exceed interval+latency="
                f"{interval + latency} or every process gets suspected"
            )
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.latency = float(latency)


class DetectorStats:
    """Counters for the suspicion machinery."""

    __slots__ = (
        "heartbeats_sent",
        "heartbeats_lost",
        "suspects",
        "unsuspects",
        "false_suspicions",
        "detector_denies",
        "reconciled_affirms",
    )

    def __init__(self) -> None:
        self.heartbeats_sent = 0
        self.heartbeats_lost = 0
        self.suspects = 0
        self.unsuspects = 0
        self.false_suspicions = 0
        self.detector_denies = 0
        self.reconciled_affirms = 0

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


class HeartbeatDetector:
    """An eventually-perfect-ish failure detector over simulated heartbeats.

    Every ``interval`` the detector tick (one simulator event) emits a
    heartbeat per non-crashed process — each is one scheduled arrival,
    lost according to the network's fault plan (partition minority side,
    or the ``(name, DETECTOR_ENDPOINT)`` drop probability) — then sweeps
    for processes silent past ``timeout`` and suspects them.

    Suspecting ``name`` issues a **definite deny** (authored by the
    machine pseudo-process :data:`DETECTOR_PID`, which never speculates)
    for every unresolved AID ``name`` owns: dependents roll back instead
    of hanging on a dead peer.  A later heartbeat unsuspects; if the
    process never actually crashed the suspicion is counted false, and
    the engine turns its subsequent ``affirm`` of a detector-denied AID
    into a reconciled no-op.

    Termination: the tick only reschedules itself while other simulation
    events are outstanding, or while some unsuspected crashed process
    still owns pending AIDs (i.e. a future suspicion would still unblock
    someone).  Otherwise the heartbeat loop lets the event heap drain so
    ``run()`` terminates.
    """

    def __init__(self, engine: "HopeSystem", config: DetectorConfig) -> None:
        self.engine = engine
        self.config = config
        self.stats = DetectorStats()
        self.suspected: set[str] = set()
        self.last_seen: dict[str, float] = {}
        #: Suspects that were alive when suspected — false-positive candidates.
        self._was_alive: set[str] = set()
        #: Simulator events owned by the detector (tick + in-flight
        #: heartbeats); the termination rule subtracts them from the
        #: heap's pending count.
        self._own_pending = 0
        engine.machine.create_process(DETECTOR_PID)
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        self._own_pending += 1
        self.engine.sim.schedule(
            self.config.interval, self._tick, label="detector-tick"
        )

    def on_spawn(self, name: str) -> None:
        self.last_seen[name] = self.engine.sim.now

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._own_pending -= 1
        engine = self.engine
        now = engine.sim.now
        network = engine.network
        hb_lost = getattr(network, "heartbeat_lost", None)
        for name, proc in engine.procs.items():
            if proc.crashed:
                continue
            # Heartbeats are node-level liveness: a blocked process still
            # heartbeats; only a crashed one goes silent.
            if hb_lost is not None and hb_lost(name):
                self.stats.heartbeats_lost += 1
                continue
            self.stats.heartbeats_sent += 1
            self._own_pending += 1
            engine.sim.schedule(
                self.config.latency, self._on_heartbeat, name,
                label=f"heartbeat:{name}",
            )
        for name in engine.procs:
            if name in self.suspected:
                continue
            seen = self.last_seen.get(name, now)
            if now - seen > self.config.timeout:
                self._suspect(name, now)
        if self._should_continue():
            self._schedule_tick()

    def _on_heartbeat(self, name: str) -> None:
        self._own_pending -= 1
        now = self.engine.sim.now
        self.last_seen[name] = now
        if name in self.suspected:
            self.suspected.discard(name)
            self.stats.unsuspects += 1
            proc = self.engine.procs.get(name)
            if name in self._was_alive and proc is not None and not proc.crashed:
                self.stats.false_suspicions += 1
            self._was_alive.discard(name)
            if self.engine._tracing:
                self.engine.tracer.record(now, "unsuspect", name)

    def _suspect(self, name: str, now: float) -> None:
        self.suspected.add(name)
        self.stats.suspects += 1
        proc = self.engine.procs.get(name)
        if proc is not None and not proc.crashed:
            self._was_alive.add(name)
        if self.engine._tracing:
            self.engine.tracer.record(now, "suspect", name)
        denied = self.engine._deny_owned_aids(name)
        self.stats.detector_denies += denied

    def _should_continue(self) -> bool:
        engine = self.engine
        if engine.sim.pending_events - self._own_pending > 0:
            return True
        for name, proc in engine.procs.items():
            if (
                proc.crashed
                and name not in self.suspected
                and engine._owner_has_pending_aids(name)
            ):
                return True
        return False
