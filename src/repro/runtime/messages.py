"""Message payload conventions: received envelopes and RPC helpers.

HOPE payloads should be treated as immutable by user code — a rollback
replays the logged :class:`ReceivedMessage` object, so mutating a payload
would desynchronize the replayed incarnation from the original.  The
provided types are immutable tuples to make the right thing the easy
thing (``NamedTuple`` rather than a frozen dataclass: one of these is
allocated per delivered message, and tuple construction is several times
cheaper than a frozen dataclass ``__init__`` + ``__setattr__`` guard).
"""

from __future__ import annotations

from typing import Any, NamedTuple


class ReceivedMessage(NamedTuple):
    """What a HOPE recv resumes with: payload plus envelope metadata."""

    payload: Any
    src: str
    msg_id: int

    def __repr__(self) -> str:
        return f"ReceivedMessage({self.payload!r} from {self.src!r})"


class RpcRequest(NamedTuple):
    """An RPC request envelope: ``call`` wraps payloads in one of these.

    Servers receive a :class:`ReceivedMessage` whose payload is an
    ``RpcRequest`` and answer with ``p.reply(msg, result)``.
    """

    body: Any
    reply_to: str
    corr: int

    def __repr__(self) -> str:
        return f"RpcRequest({self.body!r} reply_to={self.reply_to!r} corr={self.corr})"


class RpcReply(NamedTuple):
    """An RPC reply envelope, matched to its request by ``corr``."""

    body: Any
    corr: int

    def __repr__(self) -> str:
        return f"RpcReply({self.body!r} corr={self.corr})"


def is_reply_to(message_payload: Any, corr: int) -> bool:
    """Predicate: is this payload the reply with correlation id ``corr``?"""
    return isinstance(message_payload, RpcReply) and message_payload.corr == corr
