"""Message payload conventions: received envelopes and RPC helpers.

HOPE payloads should be treated as immutable by user code — a rollback
replays the logged :class:`ReceivedMessage` object, so mutating a payload
would desynchronize the replayed incarnation from the original.  The
provided types are frozen to make the right thing the easy thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ReceivedMessage:
    """What a HOPE recv resumes with: payload plus envelope metadata."""

    payload: Any
    src: str
    msg_id: int

    def __repr__(self) -> str:
        return f"ReceivedMessage({self.payload!r} from {self.src!r})"


@dataclass(frozen=True)
class RpcRequest:
    """An RPC request envelope: ``call`` wraps payloads in one of these.

    Servers receive a :class:`ReceivedMessage` whose payload is an
    ``RpcRequest`` and answer with ``p.reply(msg, result)``.
    """

    body: Any
    reply_to: str
    corr: int

    def __repr__(self) -> str:
        return f"RpcRequest({self.body!r} reply_to={self.reply_to!r} corr={self.corr})"


@dataclass(frozen=True)
class RpcReply:
    """An RPC reply envelope, matched to its request by ``corr``."""

    body: Any
    corr: int

    def __repr__(self) -> str:
        return f"RpcReply({self.body!r} corr={self.corr})"


def is_reply_to(message_payload: Any, corr: int) -> bool:
    """Predicate: is this payload the reply with correlation id ``corr``?"""
    return isinstance(message_payload, RpcReply) and message_payload.corr == corr
