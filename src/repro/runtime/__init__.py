"""The HOPE runtime: processes, tagged messages, automatic rollback.

Public surface:

* :class:`HopeSystem` — build a world, spawn processes, run;
* :class:`HopeProcess` — the effect facade handed to process bodies;
* :class:`AidHandle` — user-space assumption references;
* :func:`call` — the synchronous-RPC sub-generator used by the examples;
* :mod:`repro.runtime.aid_task` — the distributed AID-task protocol mode.
"""

from .api import AidHandle, CorrelationCounter, HopeProcess, aid_key, call
from .effects import (
    AffirmEffect,
    AidInitEffect,
    CommitPointEffect,
    ComputeEffect,
    DenyEffect,
    EmitEffect,
    FreeOfEffect,
    GuessEffect,
    HopeEffect,
    NowEffect,
    RandomEffect,
    RecvEffect,
    SendEffect,
    SpawnEffect,
)
from .engine import HopeSystem, OutputRecord, ProcessRuntime, SpeculativeSpawnError
from .messages import ReceivedMessage, RpcReply, RpcRequest, is_reply_to
from .replay import Checkpoint, EffectLog, LogEntry, RebasePoint, ReplayDivergenceError

__all__ = [
    "HopeSystem",
    "HopeProcess",
    "ProcessRuntime",
    "AidHandle",
    "aid_key",
    "call",
    "CorrelationCounter",
    "ReceivedMessage",
    "RpcRequest",
    "RpcReply",
    "is_reply_to",
    "EffectLog",
    "RebasePoint",
    "LogEntry",
    "Checkpoint",
    "ReplayDivergenceError",
    "SpeculativeSpawnError",
    "HopeEffect",
    "AidInitEffect",
    "GuessEffect",
    "AffirmEffect",
    "DenyEffect",
    "FreeOfEffect",
    "SendEffect",
    "RecvEffect",
    "ComputeEffect",
    "NowEffect",
    "RandomEffect",
    "EmitEffect",
    "CommitPointEffect",
    "SpawnEffect",
    "OutputRecord",
]
