"""The HOPE runtime: processes, tagged messages, automatic rollback.

Public surface:

* :class:`HopeSystem` — build a world, spawn processes, run;
* :class:`HopeProcess` — the effect facade handed to process bodies;
* :class:`AidHandle` — user-space assumption references;
* :func:`call` — the synchronous-RPC sub-generator used by the examples;
* :data:`TIMED_OUT` — the sentinel ``p.recv(timeout=...)`` returns when no
  message arrives in time (compare with ``is``);
* :mod:`repro.runtime.resilience` — reliable delivery + failure detector;
* :mod:`repro.runtime.aid_task` — the distributed AID-task protocol mode.
"""

from ..sim import TIMED_OUT
from .api import AidHandle, CorrelationCounter, HopeProcess, aid_key, call
from .effects import (
    AffirmEffect,
    AidInitEffect,
    CommitPointEffect,
    ComputeEffect,
    DenyEffect,
    EmitEffect,
    FreeOfEffect,
    GuessEffect,
    HopeEffect,
    NowEffect,
    RandomEffect,
    RecvEffect,
    SendEffect,
    SpawnEffect,
)
from .engine import HopeSystem, OutputRecord, ProcessRuntime, SpeculativeSpawnError
from .messages import ReceivedMessage, RpcReply, RpcRequest, is_reply_to
from .replay import Checkpoint, EffectLog, LogEntry, RebasePoint, ReplayDivergenceError
from .resilience import (
    DETECTOR_PID,
    DetectorConfig,
    DetectorStats,
    HeartbeatDetector,
    ReliableConfig,
    ReliableDelivery,
    ReliableStats,
    ReliableTransport,
)

__all__ = [
    "HopeSystem",
    "TIMED_OUT",
    "DETECTOR_PID",
    "DetectorConfig",
    "DetectorStats",
    "HeartbeatDetector",
    "ReliableConfig",
    "ReliableDelivery",
    "ReliableStats",
    "ReliableTransport",
    "HopeProcess",
    "ProcessRuntime",
    "AidHandle",
    "aid_key",
    "call",
    "CorrelationCounter",
    "ReceivedMessage",
    "RpcRequest",
    "RpcReply",
    "is_reply_to",
    "EffectLog",
    "RebasePoint",
    "LogEntry",
    "Checkpoint",
    "ReplayDivergenceError",
    "SpeculativeSpawnError",
    "HopeEffect",
    "AidInitEffect",
    "GuessEffect",
    "AffirmEffect",
    "DenyEffect",
    "FreeOfEffect",
    "SendEffect",
    "RecvEffect",
    "ComputeEffect",
    "NowEffect",
    "RandomEffect",
    "EmitEffect",
    "CommitPointEffect",
    "SpawnEffect",
    "OutputRecord",
]
