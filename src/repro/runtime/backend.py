"""Execution backends: the strategy layer behind :class:`HopeSystem`.

A backend owns *where HOPE processes execute*.  The engine builds the
shared substrates (machine, network/transport, effect log) and delegates
``spawn``/``run`` to its backend:

* :class:`SimBackend` — the deterministic single-process simulator.  The
  default, and the differential oracle for every other backend: all
  spawn/run behaviour is exactly the pre-extraction engine code path, so
  traces stay byte-identical.
* :class:`repro.parallel.ParallelBackend` — real OS workers
  (``multiprocessing``), each hosting a shard of the processes on its own
  simulator + machine, exchanging wire-format frames between shards.
  Committed state matches the sim twin; interleavings do not (see
  docs/LIMITATIONS.md).

The complementary seam is the *transport*: :class:`repro.sim.channel.
Network` (and its subclasses ``FaultyNetwork``, ``ShardTransport``) owns
how messages move.  Backends pick a transport; the engine type-checks
neither (see ``Network.stats_entries`` / ``observe_gauges``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional


class Backend:
    """Interface a :class:`repro.runtime.engine.HopeSystem` delegates to.

    Subclasses override the four hooks; the default implementations say
    "nothing backend-specific" so the engine falls through to its own
    (sim-shaped) accessors.
    """

    #: Short name surfaced in ``stats()["backend"]`` and the CLI.
    name = "?"

    def spawn(self, name: str, fn: Callable[..., Generator], *args: Any):
        raise NotImplementedError

    def run(self, until: Optional[float], max_events: Optional[int]) -> float:
        raise NotImplementedError

    def stats(self) -> Optional[dict]:
        """Full stats override, or None to use the engine's local view."""
        return None

    def aid_status(self, key: str):
        """Backend-held AID status, or None to consult the local machine."""
        return None

    def owns_metrics(self) -> bool:
        """True if the backend merged already-snapshotted shard registries
        — the engine must then skip its local gauge refresh, which would
        overwrite the merged values with this process's (empty) view."""
        return False


class SimBackend(Backend):
    """The deterministic simulator — processes run inside the engine's own
    :class:`repro.sim.Simulator`.  Pure delegation to the engine's local
    spawn/run paths (the pre-backend code, verbatim), so extracting the
    seam changed no trace."""

    name = "sim"

    def __init__(self, engine) -> None:
        self.engine = engine

    def spawn(self, name: str, fn: Callable[..., Generator], *args: Any):
        return self.engine._spawn_sim(name, fn, *args)

    def run(self, until: Optional[float], max_events: Optional[int]) -> float:
        return self.engine._run_sim(until, max_events)
