"""HOPE-level effects: what a HOPE process body may ``yield``.

User process bodies never touch the simulator directly; they yield these
effect objects (built by the :class:`repro.runtime.api.HopeProcess`
facade) and the engine performs them.  Keeping *every* interaction with
the world behind an effect is what makes replay-based rollback sound:
the engine logs each effect's result, and a restarted incarnation is fed
the logged results instead of re-performing the effects, restoring the
exact pre-guess state (DESIGN.md §2, checkpoint substitution).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.process import Effect


class HopeEffect(Effect):
    """Marker base class for effects handled by the HOPE engine."""

    __slots__ = ()

    #: replay key — must identify the effect kind for log-shape checking
    kind: str = "hope"


class AidInitEffect(HopeEffect):
    """Create a fresh assumption identifier (the paper's aid_init)."""

    __slots__ = ("name",)
    kind = "aid_init"

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"AidInit({self.name!r})"


class GuessEffect(HopeEffect):
    """guess(x): speculatively returns True; False after a denial."""

    __slots__ = ("aid_key",)
    kind = "guess"

    def __init__(self, aid_key: str) -> None:
        self.aid_key = aid_key

    def __repr__(self) -> str:
        return f"Guess({self.aid_key})"


class AffirmEffect(HopeEffect):
    """affirm(x): assert the assumption is true."""

    __slots__ = ("aid_key",)
    kind = "affirm"

    def __init__(self, aid_key: str) -> None:
        self.aid_key = aid_key

    def __repr__(self) -> str:
        return f"Affirm({self.aid_key})"


class DenyEffect(HopeEffect):
    """deny(x): assert the assumption is false."""

    __slots__ = ("aid_key",)
    kind = "deny"

    def __init__(self, aid_key: str) -> None:
        self.aid_key = aid_key

    def __repr__(self) -> str:
        return f"Deny({self.aid_key})"


class FreeOfEffect(HopeEffect):
    """free_of(x): assert causal independence from x (§3, §5.4)."""

    __slots__ = ("aid_key",)
    kind = "free_of"

    def __init__(self, aid_key: str) -> None:
        self.aid_key = aid_key

    def __repr__(self) -> str:
        return f"FreeOf({self.aid_key})"


class SendEffect(HopeEffect):
    """Asynchronous send; the engine tags it with the sender's dependencies."""

    __slots__ = ("dst", "payload")
    kind = "send"

    def __init__(self, dst: str, payload: Any) -> None:
        self.dst = dst
        self.payload = payload

    def __repr__(self) -> str:
        return f"Send(dst={self.dst!r})"


class RecvEffect(HopeEffect):
    """Blocking receive; tagged messages trigger implicit guesses first."""

    __slots__ = ("timeout", "predicate")
    kind = "recv"

    def __init__(
        self,
        timeout: Optional[float] = None,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.timeout = timeout
        self.predicate = predicate

    def __repr__(self) -> str:
        return f"Recv(timeout={self.timeout!r})"


class ComputeEffect(HopeEffect):
    """Local computation for ``duration`` virtual time units (busy time)."""

    __slots__ = ("duration",)
    kind = "compute"

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Compute({self.duration!r})"


class NowEffect(HopeEffect):
    """Read the virtual clock (logged, so replay sees the original time)."""

    __slots__ = ()
    kind = "now"

    def __repr__(self) -> str:
        return "Now()"


class RandomEffect(HopeEffect):
    """Draw a uniform float from the process's random stream (logged)."""

    __slots__ = ()
    kind = "random"

    def __repr__(self) -> str:
        return "Random()"


class EmitEffect(HopeEffect):
    """Produce an externally visible output value.

    Outputs are buffered by the engine and withdrawn if the emitting
    interval rolls back — the *output commit* discipline of optimistic
    recovery (Strom & Yemini [24]): an output is only **committed** once
    every assumption it depends on is affirmed.  Unlike raw Python side
    effects in a process body (which re-run during replay), emits are
    logged and replay-safe.
    """

    __slots__ = ("value",)
    kind = "emit"

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Emit({self.value!r})"


class CommitPointEffect(HopeEffect):
    """Declare a rebase point: ``state`` fully captures the process here.

    The engine deep-copies ``state`` and remembers it as a *rebase
    candidate*.  Once the commit frontier passes this point, fossil
    collection may drop the effect-log prefix behind it and rebuild
    future incarnations by calling the body with ``resume=<state copy>``
    instead of replaying from program entry (see
    :meth:`repro.runtime.api.HopeProcess.commit_point` for the contract).
    """

    __slots__ = ("state",)
    kind = "commit"

    def __init__(self, state: Any) -> None:
        self.state = state

    def __repr__(self) -> str:
        return "CommitPoint()"


class SpawnEffect(HopeEffect):
    """Spawn another HOPE process; resumes with its name."""

    __slots__ = ("name", "fn", "args")
    kind = "spawn"

    def __init__(self, name: str, fn: Callable, *args: Any) -> None:
        self.name = name
        self.fn = fn
        self.args = args

    def __repr__(self) -> str:
        return f"Spawn({self.name!r})"
