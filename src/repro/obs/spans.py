"""Interval-lifecycle spans: one span per speculative interval.

A span opens on :class:`~repro.core.events.GuessEvent` and closes on
finalize or rollback with a *disposition*, so a run's speculation reads
like a distributed trace: how long each assumption was in flight, what
it cost when it died, and — through parent links that follow ``IDO`` —
how a single deny fanned out into a rollback cascade.

Two kinds of link, mirroring :func:`repro.core.inspect.dependency_graph`
(whose interval → AID ``depends_on`` edges are exactly what the links
project onto spans):

* **parent** — the same-process enclosing interval (``Interval.parent``),
  the Theorem 5.1 IDO-subset chain;
* **deps** — for each member of the interval's IDO minted by *another*
  process, a link to the span that originally guessed that AID.  This is
  how a tagged receive's implicit-guess span hangs off the sender's
  span, which is what makes a cross-process cascade render as one tree.

The collector is pure bookkeeping over machine events with a
caller-supplied clock — it works against a bare
:class:`repro.core.Machine` just as well as inside the runtime.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.events import (
    FinalizeEvent,
    GuessEvent,
    MachineEvent,
    RollbackEvent,
)


class IntervalSpan:
    """The lifecycle of one speculative interval."""

    __slots__ = (
        "serial",
        "pid",
        "label",
        "aid",
        "deps",
        "open_time",
        "close_time",
        "disposition",
        "cause",
        "parent",
        "children",
    )

    OPEN = "open"
    FINALIZED = "finalized"
    ROLLED_BACK = "rolled_back"

    def __init__(
        self,
        serial: int,
        pid: str,
        label: str,
        aid: Optional[str],
        deps: tuple,
        open_time: float,
    ) -> None:
        self.serial = serial
        self.pid = pid
        self.label = label
        #: Head AID key (None for a merged implicit-guess interval).
        self.aid = aid
        #: Sorted AID keys of the interval's IDO at open.
        self.deps = deps
        self.open_time = open_time
        self.close_time: Optional[float] = None
        self.disposition = self.OPEN
        #: The denied AID key that killed this span (rollback only).
        self.cause: Optional[str] = None
        #: The enclosing span in the cascade tree (see module docstring).
        self.parent: Optional["IntervalSpan"] = None
        self.children: list["IntervalSpan"] = []

    @property
    def duration(self) -> Optional[float]:
        if self.close_time is None:
            return None
        return self.close_time - self.open_time

    def as_dict(self) -> dict:
        """Plain-data view (the JSONL exporter's row)."""
        return {
            "type": "span",
            "serial": self.serial,
            "pid": self.pid,
            "interval": self.label,
            "aid": self.aid,
            "deps": list(self.deps),
            "open": self.open_time,
            "close": self.close_time,
            "duration": self.duration,
            "disposition": self.disposition,
            "cause": self.cause,
            "parent": self.parent.label if self.parent is not None else None,
        }

    def __repr__(self) -> str:
        close = f"{self.close_time:g}" if self.close_time is not None else "…"
        return (
            f"<Span {self.label} [{self.open_time:g}, {close}) "
            f"{self.disposition}>"
        )


class SpanCollector:
    """Builds :class:`IntervalSpan` trees from machine events.

    ``max_spans`` bounds memory on long runs the way ``Tracer``'s
    ``max_records`` does: when the bound trips, the oldest *closed* spans
    are dropped (open spans are still in flight and must survive) and
    :attr:`truncated` is set.  Feed it either through
    :meth:`observe` (runtime: the engine supplies sim time) or by
    subscribing ``lambda e: collector.observe(e, clock())`` to a bare
    machine.
    """

    def __init__(self, max_spans: Optional[int] = None) -> None:
        self._spans: dict[int, IntervalSpan] = {}       # serial -> span
        self._order: list[IntervalSpan] = []            # open order
        #: First span to guess each AID key — the link target for other
        #: processes' IDO references to that AID.
        self._aid_owner: dict[str, IntervalSpan] = {}
        self._max_spans = max_spans
        self.truncated = False
        self.dropped = 0

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def observe(self, event: MachineEvent, now: float) -> None:
        if type(event) is GuessEvent:
            self._open(event, now)
        elif type(event) is FinalizeEvent:
            self._close(event.interval.serial, now, IntervalSpan.FINALIZED, None)
        elif type(event) is RollbackEvent:
            cause = event.cause.key if event.cause is not None else None
            for interval in event.discarded:
                self._close(interval.serial, now, IntervalSpan.ROLLED_BACK, cause)

    def _open(self, event: GuessEvent, now: float) -> None:
        interval = event.interval
        span = IntervalSpan(
            serial=interval.serial,
            pid=interval.pid,
            label=interval.label,
            aid=interval.aid.key if interval.aid is not None else None,
            deps=tuple(sorted(a.key for a in interval.ido)),
            open_time=now,
        )
        # Same-process chain first (Theorem 5.1's nesting) ...
        if interval.parent is not None:
            span.parent = self._spans.get(interval.parent.serial)
        # ... else hang off the span that minted one of the inherited
        # assumptions — the IDO link that stitches cascades across
        # processes.  Deterministic: first owner in sorted-dep order.
        if span.parent is None:
            for key in span.deps:
                owner = self._aid_owner.get(key)
                if owner is not None and owner is not span:
                    span.parent = owner
                    break
        if span.parent is not None:
            span.parent.children.append(span)
        if span.aid is not None:
            self._aid_owner.setdefault(span.aid, span)
        self._spans[span.serial] = span
        self._order.append(span)
        if self._max_spans is not None and len(self._order) > self._max_spans:
            self._evict()

    def discard(self, intervals, now: float, cause: Optional[str] = None) -> None:
        """Close spans for intervals discarded outside a RollbackEvent
        (a crash forgets speculative intervals without emitting one)."""
        for interval in intervals:
            self._close(interval.serial, now, IntervalSpan.ROLLED_BACK, cause)

    def _close(
        self, serial: int, now: float, disposition: str, cause: Optional[str]
    ) -> None:
        span = self._spans.get(serial)
        if span is None or span.disposition is not IntervalSpan.OPEN:
            return
        span.close_time = now
        span.disposition = disposition
        span.cause = cause

    def _evict(self) -> None:
        """Drop oldest closed spans until back under the bound."""
        keep: list[IntervalSpan] = []
        excess = len(self._order) - self._max_spans
        for span in self._order:
            if excess > 0 and span.disposition is not IntervalSpan.OPEN:
                excess -= 1
                self.dropped += 1
                self.truncated = True
                del self._spans[span.serial]
                if span.parent is not None and span in span.parent.children:
                    span.parent.children.remove(span)
                for child in span.children:
                    child.parent = None
                if self._aid_owner.get(span.aid) is span:
                    del self._aid_owner[span.aid]
            else:
                keep.append(span)
        self._order = keep

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spans(self) -> list[IntervalSpan]:
        """All retained spans, in open order."""
        return list(self._order)

    def get(self, serial: int) -> Optional[IntervalSpan]:
        return self._spans.get(serial)

    def open_spans(self) -> list[IntervalSpan]:
        return [s for s in self._order if s.disposition is IntervalSpan.OPEN]

    def roots(self) -> list[IntervalSpan]:
        return [s for s in self._order if s.parent is None]

    def cascade_of(self, aid_key: str) -> list[IntervalSpan]:
        """Every span a deny of ``aid_key`` actually killed."""
        return [
            s
            for s in self._order
            if s.disposition is IntervalSpan.ROLLED_BACK and s.cause == aid_key
        ]

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    _GLYPHS = {
        IntervalSpan.OPEN: "?",
        IntervalSpan.FINALIZED: "✓",
        IntervalSpan.ROLLED_BACK: "✗",
    }

    def format_tree(self) -> str:
        """Indented span tree, one line per span::

            ✓ worker/I1(PartPage-0) [1.0, 14.5) finalized
              ✗ server/I2(recv) [3.0, 9.0) rolled_back cause=Order-0
        """
        lines: list[str] = []

        def emit(span: IntervalSpan, depth: int) -> None:
            close = f"{span.close_time:g}" if span.close_time is not None else "…"
            extra = f" cause={span.cause}" if span.cause is not None else ""
            lines.append(
                f"{'  ' * depth}{self._GLYPHS[span.disposition]} {span.label} "
                f"[{span.open_time:g}, {close}) {span.disposition}{extra}"
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots():
            emit(root, 0)
        if self.truncated:
            lines.append(f"… {self.dropped} older span(s) dropped (max_spans)")
        return "\n".join(lines)
