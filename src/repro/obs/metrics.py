"""Speculation metrics: counters, gauges, and fixed-bucket histograms.

The paper's profitability argument is quantitative — wasted work from
rollback (Theorem 5.1's cascades), commit latency (Theorem 6.1's
finalize wavefront), blast radius — yet the runtime could only expose
those numbers by post-hoc grepping :class:`repro.sim.Tracer` records.
This module makes them first-class: a :class:`MetricsRegistry` of plain
instruments plus :class:`SpeculationMetrics`, the standard instrument
set the runtime feeds from machine events.

Design rules, in the same spirit as the :class:`~repro.sim.trace.Tracer`
fast paths:

* **sim-time only** — no instrument ever reads a wall clock; every
  observed duration is virtual time supplied by the caller, so metrics
  are as deterministic as the trace itself;
* **disabled means free** — :class:`NullRegistry` hands out shared no-op
  instruments and advertises ``enabled = False`` so embedding layers can
  skip the observation code wholesale (the ``NullTracer`` pattern);
* **bounded memory** — histograms have fixed buckets; nothing here grows
  with run length.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from ..core.events import (
    AffirmEvent,
    DenyEvent,
    FinalizeEvent,
    GuessEvent,
    GuessSkippedEvent,
    MachineEvent,
    RollbackEvent,
)


class Counter:
    """A monotonically increasing count (e.g. rollbacks seen so far)."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (e.g. busy virtual time at snapshot)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are the finite upper bounds, in increasing order; an
    implicit ``+Inf`` bucket catches the tail, so memory never depends on
    the observations.  Bucket counts are *non-cumulative* internally;
    exporters cumulate where their format demands it (Prometheus).
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float], help: str = "") -> None:
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} bucket bounds must increase: {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # + the +Inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        Conservative (an over-estimate within one bucket width); the tail
        bucket reports the largest finite bound.  Good enough for a
        summary table — exact quantiles would require keeping samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return self.bounds[-1]

    def items(self) -> list[tuple[float, int]]:
        """(upper_bound, count) pairs, the tail as ``float('inf')``."""
        return list(zip(self.bounds + (float("inf"),), self.counts))

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} sum={self.sum:g}>"


class MetricsRegistry:
    """Creates and holds named instruments; the exporters' input.

    Get-or-create semantics (like :meth:`repro.sim.Timeline.process`):
    asking twice for the same name returns the same instrument, asking
    with a conflicting kind raises.  Iteration order is registration
    order, so exports are deterministic.
    """

    #: Embedding layers consult this before doing any observation work.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _register(self, cls, name: str, *args, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help=help)

    def histogram(self, name: str, buckets: Iterable[float], help: str = "") -> Histogram:
        return self._register(Histogram, name, buckets, help=help)

    def get(self, name: str):
        return self._metrics[name]

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (for tests and JSON)."""
        out: dict = {}
        for metric in self:
            if metric.kind == "histogram":
                out[metric.name] = {
                    "buckets": metric.items(),
                    "sum": metric.sum,
                    "count": metric.count,
                }
            else:
                out[metric.name] = metric.value
        return out


def dump_registry(registry: MetricsRegistry) -> list:
    """Serialize a registry to plain tuples (pickle-friendly, no object
    graph).  The parallel backend ships each worker's registry through a
    pipe this way and folds them with :func:`merge_registry_dump`."""
    dump: list = []
    for metric in registry:
        if metric.kind == "histogram":
            dump.append(("histogram", metric.name, metric.help, metric.bounds,
                         tuple(metric.counts), metric.sum, metric.count))
        else:
            dump.append((metric.kind, metric.name, metric.help, metric.value))
    return dump


def merge_registry_dump(registry: MetricsRegistry, dump: list) -> None:
    """Fold a :func:`dump_registry` dump into ``registry`` (get-or-create
    by name, so instrument registration order still follows first sight).

    Counters and gauges add — for per-worker shards every standard gauge
    (busy time, message counts, cache hits) is a disjoint-partition total,
    so summation is the meaningful whole-system aggregate.  Histograms
    add bucketwise; conflicting bounds raise, since silently re-bucketing
    would corrupt quantiles.
    """
    for entry in dump:
        kind = entry[0]
        if kind == "histogram":
            _kind, name, help_, bounds, counts, sum_, count = entry
            hist = registry.histogram(name, bounds, help=help_)
            if hist.bounds != tuple(bounds):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ across shards: "
                    f"{hist.bounds} vs {tuple(bounds)}"
                )
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.sum += sum_
            hist.count += count
        elif kind == "counter":
            _kind, name, help_, value = entry
            registry.counter(name, help=help_).value += value
        else:
            _kind, name, help_, value = entry
            registry.gauge(name, help=help_).value += value


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry that measures nothing — the default, for zero overhead.

    Hands out shared no-op instruments, so code written against a real
    registry runs unchanged; ``enabled = False`` lets hot paths skip the
    observation calls entirely (the :class:`~repro.sim.NullTracer`
    pattern — the engine checks once at construction, not per event).
    """

    enabled = False

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null", (1.0,))

    def counter(self, name: str, help: str = "") -> Counter:
        return self._COUNTER

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, buckets: Iterable[float], help: str = "") -> Histogram:
        return self._HISTOGRAM


#: Default bucket bounds.  Cascade depth counts discarded intervals per
#: rollback (powers of two up to the deepest chain the CASCADE benchmark
#: exercises); commit latency is virtual time from guess to finalize,
#: spanning the latency sweeps the FIG1/FIG2 experiments run.
CASCADE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
COMMIT_LATENCY_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class SpeculationMetrics:
    """The standard speculation instrument set, fed from machine events.

    One instance per :class:`~repro.runtime.HopeSystem`; the engine calls
    :meth:`observe_event` from its machine-event listener (sim time
    supplied by the caller — this class never reads a clock) and bumps
    the runtime-side counters (replay, wasted time, fossil reclaim)
    directly.  Works against a bare :class:`repro.core.Machine` too: the
    theorem tests drive it with a synthetic clock.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        cascade_buckets: Iterable[float] = CASCADE_DEPTH_BUCKETS,
        latency_buckets: Iterable[float] = COMMIT_LATENCY_BUCKETS,
    ) -> None:
        self.registry = registry
        c, g, h = registry.counter, registry.gauge, registry.histogram
        # --- speculation lifecycle -------------------------------------
        self.guesses = c("hope_guesses_total", "speculative intervals opened (explicit guess)")
        self.implicit_guesses = c(
            "hope_implicit_guesses_total",
            "intervals opened by tagged receives (implicit guesses)",
        )
        self.guess_skips = c(
            "hope_guess_skips_total", "guesses on already-resolved AIDs (no interval)"
        )
        self.affirms = c("hope_affirms_total", "affirm primitives that took effect")
        self.affirms_definite = c(
            "hope_affirms_definite_total", "affirms executed from a definite state"
        )
        self.denies = c("hope_denies_total", "deny primitives that took effect")
        self.denies_definite = c(
            "hope_denies_definite_total", "denies that were definite (rollback triggers)"
        )
        self.finalizes = c("hope_finalizes_total", "intervals that became definite")
        # --- rollback accounting ---------------------------------------
        self.rollbacks = c("hope_rollbacks_total", "rollback events (per process hit)")
        self.intervals_discarded = c(
            "hope_intervals_discarded_total", "intervals destroyed by rollbacks"
        )
        self.cascade_depth = h(
            "hope_rollback_cascade_depth",
            cascade_buckets,
            "intervals discarded per rollback event",
        )
        self.restarts = c("hope_restarts_total", "task restarts after rollback")
        self.replay_entries = c(
            "hope_replay_entries_total", "effect-log entries replayed by restarts"
        )
        self.wasted_time = c(
            "hope_wasted_time_total", "virtual time reclassified as wasted by rollbacks"
        )
        self.commit_latency = h(
            "hope_commit_latency",
            latency_buckets,
            "virtual time from guess to finalize, per interval",
        )
        # --- fossil collection -----------------------------------------
        self.fossil_collections = c("hope_fossil_collections_total", "collection passes")
        self.fossil_history_dropped = c(
            "hope_fossil_history_dropped_total", "history rows reclaimed"
        )
        self.fossil_intervals_dropped = c(
            "hope_fossil_intervals_dropped_total", "dead intervals reclaimed"
        )
        self.fossil_aids_retired = c(
            "hope_fossil_aids_retired_total", "AIDs retired from the table"
        )
        self.fossil_depsets_dropped = c(
            "hope_fossil_depsets_dropped_total", "interned DepSets reclaimed"
        )
        # --- snapshot gauges (filled by metrics_snapshot) --------------
        self.busy_time = g("hope_busy_time", "useful busy virtual time (timeline)")
        self.blocked_time = g("hope_blocked_time", "blocked virtual time (timeline)")
        self.resolve_cache_hits = g(
            "hope_resolve_cache_hits", "tag-resolution cache hits"
        )
        self.resolve_cache_misses = g(
            "hope_resolve_cache_misses", "tag-resolution cache misses"
        )
        self.messages_sent = g("hope_messages_sent", "user messages sent")
        self.sim_events = g("hope_sim_events", "simulator events processed")
        # --- chaos / resilience (filled by metrics_snapshot when the
        # --- fault layer, reliable delivery, or the detector is on) ----
        self.net_dropped = g("hope_net_dropped", "messages dropped by fault injection")
        self.net_duplicated = g("hope_net_duplicated", "messages duplicated by fault injection")
        self.net_reordered = g("hope_net_reordered", "message copies delayed for reorder")
        self.net_partition_dropped = g(
            "hope_net_partition_dropped", "messages dropped crossing a partition"
        )
        self.acks_dropped = g("hope_acks_dropped", "control datagrams lost to faults")
        self.retries = g("hope_retries", "reliable-delivery retransmissions")
        self.acks_sent = g("hope_acks_sent", "reliable-delivery acks launched")
        self.dup_suppressed = g(
            "hope_dup_suppressed", "duplicate deliveries suppressed by msg_id dedup"
        )
        self.retry_exhausted = g(
            "hope_retry_exhausted", "reliable sends abandoned after max_attempts"
        )
        self.suspects = g("hope_suspects", "failure-detector suspicions raised")
        self.false_suspicions = g(
            "hope_false_suspicions", "suspicions of processes that were alive"
        )
        self.detector_denies = g(
            "hope_detector_denies", "AIDs denied on behalf of suspected processes"
        )
        self.reconciled_affirms = g(
            "hope_reconciled_affirms",
            "affirms of detector-denied AIDs reconciled to no-ops",
        )
        #: Open-interval guess times by interval serial, for commit
        #: latency.  Bounded by the live speculation window: finalize and
        #: rollback both pop.
        self._open_guesses: dict[int, float] = {}

    # ------------------------------------------------------------------
    # machine events
    # ------------------------------------------------------------------
    def observe_event(self, event: MachineEvent, now: float) -> None:
        """Fold one machine event in; ``now`` is the caller's sim time."""
        if type(event) is GuessEvent:
            interval = event.interval
            if interval.aid is not None:
                self.guesses.inc()
            else:
                self.implicit_guesses.inc()
            self._open_guesses[interval.serial] = now
        elif type(event) is FinalizeEvent:
            self.finalizes.inc()
            opened = self._open_guesses.pop(event.interval.serial, None)
            if opened is not None:
                self.commit_latency.observe(now - opened)
        elif type(event) is RollbackEvent:
            self.rollbacks.inc()
            depth = len(event.discarded)
            self.intervals_discarded.inc(depth)
            self.cascade_depth.observe(depth)
            for interval in event.discarded:
                self._open_guesses.pop(interval.serial, None)
        elif type(event) is AffirmEvent:
            self.affirms.inc()
            if event.definite:
                self.affirms_definite.inc()
        elif type(event) is DenyEvent:
            self.denies.inc()
            if event.definite:
                self.denies_definite.inc()
        elif type(event) is GuessSkippedEvent:
            self.guess_skips.inc()

    def forget_intervals(self, intervals) -> None:
        """Drop open-guess bookkeeping for intervals discarded outside a
        RollbackEvent (crash support) so the table cannot leak."""
        for interval in intervals:
            self._open_guesses.pop(interval.serial, None)

    # ------------------------------------------------------------------
    # derived quantities (the numbers the paper argues about)
    # ------------------------------------------------------------------
    def wasted_work_ratio(self) -> float:
        """Wasted / (useful + wasted) busy time.

        The timeline reclassifies rolled-back busy spans as wasted, so
        the busy gauge is already net of waste — the denominator restores
        the gross figure.
        """
        wasted = self.wasted_time.value
        gross = self.busy_time.value + wasted
        return wasted / gross if gross else 0.0

    def resolve_cache_hit_rate(self) -> float:
        hits = self.resolve_cache_hits.value
        total = hits + self.resolve_cache_misses.value
        return hits / total if total else 0.0
