"""Exporters: JSONL, Prometheus text format, and a human summary table.

All three read the same inputs — a :class:`~repro.obs.metrics.MetricsRegistry`
and optionally a :class:`~repro.obs.spans.SpanCollector` — and are pure
functions of them, so exporting twice yields identical bytes (there is
no wall-clock anywhere in the pipeline; see the module docstring of
:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
from typing import Optional

from .metrics import Histogram, MetricsRegistry, SpeculationMetrics
from .spans import SpanCollector

FORMATS = ("summary", "jsonl", "prom")


def to_jsonl(
    registry: MetricsRegistry, spans: Optional[SpanCollector] = None
) -> str:
    """One JSON object per line: every metric, then every span."""
    lines = []
    for metric in registry:
        if metric.kind == "histogram":
            row = {
                "type": "histogram",
                "name": metric.name,
                "buckets": [
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in metric.items()
                ],
                "sum": metric.sum,
                "count": metric.count,
            }
        else:
            row = {"type": metric.kind, "name": metric.name, "value": metric.value}
        lines.append(json.dumps(row, sort_keys=True))
    if spans is not None:
        for span in spans.spans():
            lines.append(json.dumps(span.as_dict(), sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def _prom_num(value: float) -> str:
    """Prometheus number rendering: integers without the trailing .0."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (spans have no equivalent)."""
    lines = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, count in metric.items():
                cumulative += count
                le = "+Inf" if bound == float("inf") else _prom_num(bound)
                lines.append(f'{metric.name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric.name}_sum {_prom_num(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            lines.append(f"{metric.name} {_prom_num(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _histogram_sketch(hist: Histogram, width: int = 20) -> list[str]:
    """Tiny ASCII bucket chart for the summary table."""
    rows = []
    peak = max(hist.counts) if hist.count else 0
    for bound, count in hist.items():
        if not count:
            continue
        le = "+Inf" if bound == float("inf") else f"{bound:g}"
        bar = "#" * max(1, round(width * count / peak)) if peak else ""
        rows.append(f"    le={le:>6}  {count:>8}  {bar}")
    return rows


def summary(
    registry: MetricsRegistry,
    spans: Optional[SpanCollector] = None,
    spec: Optional[SpeculationMetrics] = None,
) -> str:
    """Human-readable rollup: raw instruments, derived ratios, span tree.

    ``spec`` (when the registry was populated through
    :class:`SpeculationMetrics`) adds the derived lines the paper's
    figures argue about — wasted-work ratio and cache hit rate.
    """
    lines = ["speculation metrics", "-------------------"]
    name_width = max((len(m.name) for m in registry), default=0)
    for metric in registry:
        if metric.kind == "histogram":
            lines.append(
                f"{metric.name.ljust(name_width)}  n={metric.count} "
                f"mean={metric.mean:g} p50<={metric.quantile(0.5):g} "
                f"p95<={metric.quantile(0.95):g}"
            )
            lines.extend(_histogram_sketch(metric))
        else:
            lines.append(f"{metric.name.ljust(name_width)}  {metric.value:g}")
    if spec is not None:
        lines.append("")
        lines.append("derived")
        lines.append("-------")
        lines.append(f"wasted-work ratio       {spec.wasted_work_ratio():.4f}")
        lines.append(f"resolve-cache hit rate  {spec.resolve_cache_hit_rate():.4f}")
    if spans is not None and len(spans):
        lines.append("")
        lines.append("interval spans")
        lines.append("--------------")
        lines.append(spans.format_tree())
    return "\n".join(lines) + "\n"


def render(
    fmt: str,
    registry: MetricsRegistry,
    spans: Optional[SpanCollector] = None,
    spec: Optional[SpeculationMetrics] = None,
) -> str:
    """Dispatch on one of :data:`FORMATS` (the CLI's --metrics-format)."""
    if fmt == "jsonl":
        return to_jsonl(registry, spans)
    if fmt == "prom":
        return to_prometheus(registry)
    if fmt == "summary":
        return summary(registry, spans, spec)
    raise ValueError(f"unknown metrics format {fmt!r} (expected one of {FORMATS})")
