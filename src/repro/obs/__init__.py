"""Observability for speculation: metrics, interval spans, exporters.

The measurement substrate the perf work builds on: the quantities the
paper's theorems argue about (wasted work, commit latency, cascade blast
radius) as first-class counters/histograms instead of post-hoc trace
grepping.  Wire it in with ``HopeSystem(metrics=MetricsRegistry())``;
disabled (the default ``NullRegistry``) it costs nothing, the same
contract as :class:`repro.sim.NullTracer`.

See docs/PERFORMANCE.md §5 ("Measuring speculation") for the metric set
and exporter formats.
"""

from .export import FORMATS, render, summary, to_jsonl, to_prometheus
from .metrics import (
    CASCADE_DEPTH_BUCKETS,
    COMMIT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpeculationMetrics,
)
from .spans import IntervalSpan, SpanCollector

__all__ = [
    "CASCADE_DEPTH_BUCKETS",
    "COMMIT_LATENCY_BUCKETS",
    "Counter",
    "FORMATS",
    "Gauge",
    "Histogram",
    "IntervalSpan",
    "MetricsRegistry",
    "NullRegistry",
    "SpanCollector",
    "SpeculationMetrics",
    "render",
    "summary",
    "to_jsonl",
    "to_prometheus",
]
