"""Sequential reference execution for Time Warp workloads.

Processes every event in global virtual-time order on one thread — the
trivially correct semantics any optimistic execution must reproduce.
Used by tests (equivalence) and benchmarks (speed comparison baseline).
"""

from __future__ import annotations

import copy
import heapq
import itertools
from typing import Any

from .lp import Handler


class SequentialOracle:
    """Run the same handlers and injections as a :class:`TimeWarpEngine`,
    but conservatively: one global event queue in (vt, seq) order."""

    def __init__(self) -> None:
        self.handlers: dict[str, Handler] = {}
        self.states: dict[str, dict] = {}
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def add_lp(self, name: str, handler: Handler, initial_state: dict) -> None:
        self.handlers[name] = handler
        self.states[name] = copy.deepcopy(initial_state)

    def inject(self, dst: str, recv_vt: float, payload: Any) -> None:
        heapq.heappush(self._heap, (recv_vt, next(self._seq), dst, payload))

    def run(self, until_vt: float = float("inf"), max_events: int = 1_000_000) -> None:
        while self._heap:
            vt, _seq, dst, payload = heapq.heappop(self._heap)
            if vt > until_vt:
                break
            self.events_processed += 1
            if self.events_processed > max_events:
                raise RuntimeError(f"oracle exceeded {max_events} events")
            emissions = self.handlers[dst](self.states[dst], vt, payload)
            for emission in emissions:
                if emission.delay_vt <= 0:
                    raise ValueError("non-positive virtual delay")
                self.inject(emission.dst, vt + emission.delay_vt, emission.payload)

    def final_states(self) -> dict[str, dict]:
        return self.states
