"""Global Virtual Time: the commitment horizon of a Time Warp execution.

GVT is a lower bound on the virtual time of any future rollback: the
minimum over every LP's next unprocessed event and every in-flight
message.  Everything with virtual time below GVT is irrevocably
committed — state saves and output logs below it are *fossils* and can
be reclaimed.

In a real distributed system GVT needs an approximation protocol
(Samadi, Mattern); inside a sequential simulator we can compute it
exactly, which makes the committed-work statistics in the benchmarks
precise rather than estimated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import TimeWarpEngine


class GvtManager:
    """Exact GVT computation plus fossil collection for an engine."""

    def __init__(self, engine: "TimeWarpEngine") -> None:
        self.engine = engine
        self.value = float("-inf")
        self.computations = 0
        self.fossils_reclaimed = 0
        self.history: list[tuple[float, float]] = []   # (physical time, gvt)

    def compute(self) -> float:
        """Recompute GVT.  Monotonically non-decreasing by construction."""
        candidates = [float("inf")]
        for lp in self.engine.lps.values():
            candidates.append(lp.min_unprocessed_vt())
        for message in self.engine.in_flight.values():
            candidates.append(message.recv_vt)
        new_value = min(candidates)
        if new_value < self.value:
            raise RuntimeError(
                f"GVT regressed from {self.value:g} to {new_value:g} — "
                "commitment horizon must be monotone"
            )
        self.value = new_value
        self.computations += 1
        self.history.append((self.engine.sim.now, new_value))
        return new_value

    def fossil_collect(self) -> int:
        """Reclaim state below the current GVT across all LPs."""
        if self.value == float("-inf"):
            return 0
        reclaimed = 0
        for lp in self.engine.lps.values():
            reclaimed += lp.fossil_collect(self.value)
        self.fossils_reclaimed += reclaimed
        return reclaimed
