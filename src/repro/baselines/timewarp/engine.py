"""The Time Warp engine: LPs as simulated tasks over a physical network.

This is a *physical* simulation of a distributed Time Warp execution:
virtual time lives inside the TW messages; physical time (message
latency, per-event service cost) is the simulator's clock.  Stragglers
happen exactly when the physical network reorders messages relative to
their virtual timestamps — the same race the HOPE Order AID guards in
Figure 2, which is why the TW benchmark can compare the two mechanisms
on one workload.
"""

from __future__ import annotations

from typing import Any, Optional

from ...sim import (
    ConstantLatency,
    LatencyModel,
    Network,
    Recv,
    Simulator,
    Task,
    Timeout,
    Tracer,
)
from .antimessage import TWMessage
from .gvt import GvtManager
from .lp import Handler, LogicalProcess


class TimeWarpEngine:
    """Drive a set of :class:`LogicalProcess` instances to quiescence.

    Usage::

        engine = TimeWarpEngine(latency=ConstantLatency(2.0))
        engine.add_lp("a", handler, {"count": 0})
        engine.inject("a", recv_vt=1.0, payload="seed")
        engine.run()
        engine.lps["a"].state

    ``service_time`` is the physical cost of processing one event;
    ``gvt_interval`` is how often (physical time) GVT is computed and
    fossils collected.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        service_time: float = 1.0,
        save_interval: int = 1,
        gvt_interval: Optional[float] = 50.0,
        trace: Optional[Tracer] = None,
        cancellation: str = "aggressive",
    ) -> None:
        self.sim = Simulator()
        self.network = Network(self.sim, latency if latency is not None else ConstantLatency(1.0))
        self.service_time = service_time
        self.save_interval = save_interval
        self.cancellation = cancellation
        self.gvt_interval = gvt_interval
        self.tracer = trace if trace is not None else Tracer(categories=())
        self.lps: dict[str, LogicalProcess] = {}
        self._tasks: dict[str, Task] = {}
        self.gvt = GvtManager(self)
        self.in_flight: dict[tuple, TWMessage] = {}
        self.total_messages = 0
        self.total_antis = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_lp(self, name: str, handler: Handler, initial_state: dict) -> LogicalProcess:
        if name in self.lps:
            raise ValueError(f"LP {name!r} already exists")
        lp = LogicalProcess(
            name, handler, initial_state, self.save_interval, self.cancellation
        )
        self.lps[name] = lp
        self.network.register(name)
        task = Task(self.sim, name, self._lp_loop, lp)
        self._tasks[name] = task
        task.start()
        return lp

    def inject(self, dst: str, recv_vt: float, payload: Any) -> None:
        """Seed the computation with an initial event (from 'outside')."""
        message = TWMessage("__env__", dst, send_vt=float("-inf"), recv_vt=recv_vt, payload=payload)
        self._transmit(message)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self.gvt_interval is not None:
            self._schedule_gvt()
        final = self.sim.run(until=until, max_events=max_events)
        self.gvt.compute()  # final GVT (should be +inf at quiescence)
        return final

    def _schedule_gvt(self) -> None:
        def tick() -> None:
            self.gvt.compute()
            self.gvt.fossil_collect()
            if self.sim.pending_events > 0:
                self.sim.schedule(self.gvt_interval, tick, label="gvt-tick")

        self.sim.schedule(self.gvt_interval, tick, label="gvt-tick")

    def _lp_loop(self, env, lp: LogicalProcess):
        """The per-LP task: drain arrivals, process optimistically, block."""
        mailbox = self.network.mailbox(lp.name)
        while True:
            # drain every already-delivered message without blocking
            while len(mailbox):
                envelope = yield Recv(mailbox)
                self._absorb(lp, envelope.payload)
            if lp.has_work:
                yield Timeout(self.service_time)
                # arrivals during the service time take effect before the
                # *next* event, as in a real single-threaded LP
                for out in lp.process_next():
                    self._transmit(out)
                self.tracer.record(
                    self.sim.now, "tw_event", lp.name, lvt=lp.lvt
                )
            else:
                # Idle with lazy suspects whose originating events were
                # annihilated: they will never be regenerated — cancel now.
                for anti in lp.flush_suspects():
                    self._transmit(anti)
                envelope = yield Recv(mailbox)
                self._absorb(lp, envelope.payload)

    def _absorb(self, lp: LogicalProcess, message: TWMessage) -> None:
        self.in_flight.pop((message.uid, message.sign), None)
        before = lp.rollbacks
        antis = lp.insert(message)
        if lp.rollbacks > before:
            self.tracer.record(
                self.sim.now,
                "tw_rollback",
                lp.name,
                to_vt=message.recv_vt,
                antis=len(antis),
            )
        for anti in antis:
            self._transmit(anti)

    def _transmit(self, message: TWMessage) -> None:
        self.in_flight[(message.uid, message.sign)] = message
        self.total_messages += 1
        if message.sign == -1:
            self.total_antis += 1
        self.network.send(message.src, message.dst, message)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        processed = sum(lp.events_processed for lp in self.lps.values())
        rolled = sum(lp.events_rolled_back for lp in self.lps.values())
        return {
            "events_processed": processed,
            "events_rolled_back": rolled,
            "efficiency": (processed - rolled) / processed if processed else 1.0,
            "rollbacks": sum(lp.rollbacks for lp in self.lps.values()),
            "antis_sent": sum(lp.antis_sent for lp in self.lps.values()),
            "messages": self.total_messages,
            "gvt": self.gvt.value,
            "fossils_reclaimed": self.gvt.fossils_reclaimed,
            "sim_events": self.sim.events_processed,
        }

    def final_states(self) -> dict[str, dict]:
        return {name: lp.state for name, lp in self.lps.items()}
