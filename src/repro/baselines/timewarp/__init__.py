"""Time Warp (Jefferson's virtual time) — the related-work baseline [16, 17].

HOPE's claim (§2) is that Time Warp is the special case of one hard-wired
optimistic assumption: "messages arrive in timestamp order".  This package
implements the genuine article — input/output queues, anti-messages,
exact GVT, fossil collection — so the TW benchmark can compare it against
the same assumption expressed in HOPE primitives.
"""

from .antimessage import TWMessage
from .engine import TimeWarpEngine
from .gvt import GvtManager
from .lp import Emission, LogicalProcess, MIN_KEY
from .oracle import SequentialOracle

__all__ = [
    "TWMessage",
    "LogicalProcess",
    "Emission",
    "TimeWarpEngine",
    "GvtManager",
    "SequentialOracle",
    "MIN_KEY",
]
