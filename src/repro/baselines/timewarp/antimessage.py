"""Time Warp message types (Jefferson's virtual time, refs [16, 17]).

Every positive message has a unique id; its anti-message is the same id
with negative sign.  When a pair meets in an input queue, both vanish
(annihilation).  An anti-message arriving for an already-processed
positive message forces the receiver to roll back.
"""

from __future__ import annotations

import itertools
from typing import Any

_uids = itertools.count(1)


class TWMessage:
    """A (possibly anti-) message in the Time Warp system.

    ``send_vt`` / ``recv_vt`` are virtual times; physical transit time is
    the simulator's business.  ``sign`` is +1 or -1.
    """

    __slots__ = ("uid", "src", "dst", "send_vt", "recv_vt", "payload", "sign")

    def __init__(
        self,
        src: str,
        dst: str,
        send_vt: float,
        recv_vt: float,
        payload: Any,
        sign: int = 1,
        uid: int | None = None,
    ) -> None:
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if recv_vt < send_vt:
            raise ValueError(
                f"recv_vt {recv_vt} earlier than send_vt {send_vt}: messages "
                "may not travel into the virtual past"
            )
        self.uid = uid if uid is not None else next(_uids)
        self.src = src
        self.dst = dst
        self.send_vt = send_vt
        self.recv_vt = recv_vt
        self.payload = payload
        self.sign = sign

    def anti(self) -> "TWMessage":
        """The annihilating twin of this (positive) message."""
        if self.sign != 1:
            raise ValueError("anti() of an anti-message")
        return TWMessage(
            self.src, self.dst, self.send_vt, self.recv_vt, self.payload, -1, self.uid
        )

    def sort_key(self) -> tuple:
        """Deterministic processing order: virtual time, then uid."""
        return (self.recv_vt, self.uid)

    def __repr__(self) -> str:
        kind = "msg" if self.sign == 1 else "ANTI"
        return (
            f"<TW{kind} #{self.uid} {self.src}->{self.dst} "
            f"vt={self.send_vt:g}->{self.recv_vt:g} {self.payload!r}>"
        )
