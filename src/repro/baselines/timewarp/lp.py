"""Time Warp logical processes: input queue, output queue, state saving.

A logical process (LP) applies a **pure, deterministic** handler::

    handler(state: dict, vt: float, payload) -> list[Emission]

mutating ``state`` in place and returning virtual-time-stamped emissions.
Determinism matters twice over: rollback re-processes events assuming the
same state transitions, and the sequential oracle
(:mod:`repro.baselines.timewarp.oracle`) must agree with any optimistic
interleaving.

Events are totally ordered by ``(recv_vt, uid)`` — the *event key* — so
ties at equal virtual time are deterministic.  State saves and output-log
entries are tagged with the event key that produced them, which makes
rollback exact even across same-vt ties.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .antimessage import TWMessage

#: sorts before every real event key
MIN_KEY = (float("-inf"), -1)


@dataclass(frozen=True)
class Emission:
    """An output of an event handler: send ``payload`` to ``dst`` at
    virtual time ``now + delay_vt`` (``delay_vt`` > 0: no zero-delay
    cycles, the classic Time Warp restriction)."""

    dst: str
    delay_vt: float
    payload: Any


Handler = Callable[[dict, float, Any], list]


class _QueueItem:
    """An input-queue slot: the message plus its processed flag."""

    __slots__ = ("message", "processed")

    def __init__(self, message: TWMessage) -> None:
        self.message = message
        self.processed = False


class LogicalProcess:
    """One Time Warp LP with aggressive (optimistic) event processing.

    ``save_interval`` controls state-saving frequency: 1 saves after
    every event (instant restore, maximal memory), k>1 saves every k-th
    event (rollback then re-processes up to k-1 events — the classic
    checkpoint-interval trade-off, ablated by the AIDMODE/CKPT benchmark
    family).
    """

    def __init__(
        self,
        name: str,
        handler: Handler,
        initial_state: dict,
        save_interval: int = 1,
        cancellation: str = "aggressive",
    ) -> None:
        if save_interval < 1:
            raise ValueError(f"save_interval must be >= 1, got {save_interval}")
        if cancellation not in ("aggressive", "lazy"):
            raise ValueError(
                f"cancellation must be 'aggressive' or 'lazy', got {cancellation!r}"
            )
        self.name = name
        self.handler = handler
        self.state = copy.deepcopy(initial_state)
        self.save_interval = save_interval
        #: aggressive: anti-messages fly at rollback time.  lazy: cancelled
        #: outputs become *suspects*; the coast-forward re-execution keeps
        #: any regenerated-identical message (no anti, no resend) and only
        #: cancels what genuinely changed — the classic lazy-cancellation
        #: optimization.
        self.cancellation = cancellation
        self._suspects: list[tuple[tuple, TWMessage]] = []
        self.lazy_hits = 0
        #: event key of the last processed event
        self.lvt_key: tuple = MIN_KEY
        #: input queue, ordered by event key
        self._queue: list[_QueueItem] = []
        self._keys: list[tuple] = []
        #: state saves: (event_key_after, deep copy); includes the initial state
        self.saves: list[tuple[tuple, dict]] = [(MIN_KEY, copy.deepcopy(initial_state))]
        #: output log: (emitting event key, positive message)
        self.output_log: list[tuple[tuple, TWMessage]] = []
        #: anti-messages that overtook their positives
        self._pending_antis: dict[int, TWMessage] = {}
        self._events_since_save = 0
        # statistics
        self.events_processed = 0
        self.events_rolled_back = 0
        self.rollbacks = 0
        self.antis_sent = 0

    @property
    def lvt(self) -> float:
        """Local virtual time: the vt of the last processed event."""
        return self.lvt_key[0]

    # ------------------------------------------------------------------
    # input queue
    # ------------------------------------------------------------------
    def insert(self, message: TWMessage) -> list[TWMessage]:
        """Insert an arriving message; returns anti-messages to transmit.

        Handles all four Time Warp arrival cases: normal positive,
        straggler positive, anti-for-unprocessed, anti-for-processed.
        """
        antis_out: list[TWMessage] = []
        if message.sign == 1:
            if self._pending_antis.pop(message.uid, None) is not None:
                return antis_out          # annihilated on arrival
            self._insert_item(_QueueItem(message))
            if message.sort_key() <= self.lvt_key:   # straggler
                antis_out.extend(self.rollback(message.sort_key()))
        else:
            index = self._find_uid(message.uid)
            if index is None:
                self._pending_antis[message.uid] = message
                return antis_out
            if self._queue[index].processed:
                antis_out.extend(self.rollback(message.sort_key()))
                index = self._find_uid(message.uid)
            assert index is not None
            self._remove_at(index)        # annihilation
        return antis_out

    def _insert_item(self, item: _QueueItem) -> None:
        key = item.message.sort_key()
        pos = bisect.bisect_left(self._keys, key)
        self._queue.insert(pos, item)
        self._keys.insert(pos, key)

    def _remove_at(self, index: int) -> None:
        del self._queue[index]
        del self._keys[index]

    def _find_uid(self, uid: int) -> Optional[int]:
        for index, item in enumerate(self._queue):
            if item.message.uid == uid:
                return index
        return None

    def next_unprocessed(self) -> Optional[_QueueItem]:
        for item in self._queue:
            if not item.processed:
                return item
        return None

    @property
    def has_work(self) -> bool:
        return self.next_unprocessed() is not None

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------
    def process_next(self) -> list[TWMessage]:
        """Process the lowest-key unprocessed event; returns the messages
        to transmit (positives, plus any lazy-cancellation antis that the
        re-execution has now proven necessary)."""
        item = self.next_unprocessed()
        if item is None:
            return []
        message = item.message
        key = message.sort_key()
        out: list[TWMessage] = []
        # lazy cancellation: suspects from events before this key can no
        # longer be regenerated — they really are cancelled
        out.extend(self.flush_suspects(before_key=key))
        emissions = self.handler(self.state, message.recv_vt, message.payload)
        item.processed = True
        self.lvt_key = key
        self.events_processed += 1
        for emission in emissions:
            if emission.delay_vt <= 0:
                raise ValueError(
                    f"LP {self.name!r} emitted non-positive virtual delay "
                    f"{emission.delay_vt}"
                )
            send_vt = message.recv_vt
            recv_vt = message.recv_vt + emission.delay_vt
            reused = self._reuse_suspect(key, emission, send_vt, recv_vt)
            if reused is not None:
                self.output_log.append((key, reused))
                continue                       # receiver already has it
            tw = TWMessage(
                self.name, emission.dst, send_vt, recv_vt, emission.payload
            )
            self.output_log.append((key, tw))
            out.append(tw)
        # any suspect from exactly this event that was not regenerated is
        # divergent: cancel it now
        out.extend(self.flush_suspects(before_key=(key[0], key[1] + 1)))
        self._events_since_save += 1
        if self._events_since_save >= self.save_interval:
            self.saves.append((key, copy.deepcopy(self.state)))
            self._events_since_save = 0
        return out

    def _reuse_suspect(self, key, emission, send_vt, recv_vt):
        """Find a suspect identical to a regenerated emission (lazy mode)."""
        if self.cancellation != "lazy":
            return None
        for index, (s_key, suspect) in enumerate(self._suspects):
            if (
                s_key == key
                and suspect.dst == emission.dst
                and suspect.send_vt == send_vt
                and suspect.recv_vt == recv_vt
                and suspect.payload == emission.payload
            ):
                del self._suspects[index]
                self.lazy_hits += 1
                return suspect
        return None

    def flush_suspects(self, before_key: Optional[tuple] = None) -> list[TWMessage]:
        """Turn suspects that can no longer be regenerated into antis.

        With ``before_key`` None, flush everything (used when the LP goes
        idle with suspects whose originating events were annihilated).
        """
        if not self._suspects:
            return []
        antis: list[TWMessage] = []
        kept: list[tuple[tuple, TWMessage]] = []
        for s_key, suspect in self._suspects:
            if before_key is None or s_key < before_key:
                antis.append(suspect.anti())
                self.antis_sent += 1
            else:
                kept.append((s_key, suspect))
        self._suspects = kept
        return antis

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def rollback(self, to_key: tuple) -> list[TWMessage]:
        """Roll back so every event with key >= ``to_key`` is redone.

        Restores the newest save strictly earlier than ``to_key``, marks
        later events unprocessed (the subsequent re-processing is the
        coast-forward), and returns anti-messages for every output whose
        emitting event is undone.
        """
        self.rollbacks += 1
        save_index = len(self.saves) - 1
        while save_index > 0 and self.saves[save_index][0] >= to_key:
            save_index -= 1
        save_key, saved_state = self.saves[save_index]
        del self.saves[save_index + 1 :]
        self.state = copy.deepcopy(saved_state)
        self.lvt_key = save_key
        self._events_since_save = 0
        undone = 0
        for item in self._queue:
            if item.processed and item.message.sort_key() > save_key:
                item.processed = False
                undone += 1
        self.events_rolled_back += undone
        antis: list[TWMessage] = []
        keep: list[tuple[tuple, TWMessage]] = []
        for event_key, sent in self.output_log:
            if event_key > save_key:
                if self.cancellation == "lazy":
                    # defer: the coast-forward may regenerate it verbatim
                    self._suspects.append((event_key, sent))
                else:
                    antis.append(sent.anti())
            else:
                keep.append((event_key, sent))
        self.output_log = keep
        self.antis_sent += len(antis)
        return antis

    # ------------------------------------------------------------------
    # GVT support
    # ------------------------------------------------------------------
    def min_unprocessed_vt(self) -> float:
        item = self.next_unprocessed()
        return item.message.recv_vt if item is not None else float("inf")

    def fossil_collect(self, gvt: float) -> int:
        """Reclaim saves, output-log entries, and processed input entries
        strictly older than GVT.  At least one save at or before GVT is
        retained (the restore floor).  Returns the reclaimed count."""
        reclaimed = 0
        floor = 0
        for index, (key, _state) in enumerate(self.saves):
            if key[0] < gvt:
                floor = index
        if floor > 0:
            reclaimed += floor
            del self.saves[:floor]
        kept_out = [(k, m) for (k, m) in self.output_log if k[0] >= gvt]
        reclaimed += len(self.output_log) - len(kept_out)
        self.output_log = kept_out
        new_queue: list[_QueueItem] = []
        new_keys: list[tuple] = []
        for item, key in zip(self._queue, self._keys):
            if item.processed and item.message.recv_vt < gvt:
                reclaimed += 1
            else:
                new_queue.append(item)
                new_keys.append(key)
        self._queue = new_queue
        self._keys = new_keys
        return reclaimed

    def memory_footprint(self) -> int:
        """A proxy for memory: retained saves + queue + output log entries."""
        return len(self.saves) + len(self._queue) + len(self.output_log)

    def __repr__(self) -> str:
        return (
            f"<LP {self.name!r} lvt={self.lvt:g} queue={len(self._queue)} "
            f"rollbacks={self.rollbacks}>"
        )
