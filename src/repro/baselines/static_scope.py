"""Statically-scoped optimism — the Bubenik/Zwaenepoel-style baseline [2, 3].

Related work (§2): prior optimistic-programming systems confined
speculation to a pre-declared encapsulation, so "dependency tracking is
not necessary, but ... the range of computation based on an optimistic
assumption is statically bound".  Concretely: a process may compute ahead
inside the scope, but **externally visible effects (message sends) are
buffered until the assumption is verified** — speculation never crosses a
process boundary.

This module implements that discipline as a restricted worker for the
call-streaming scenario: the worker guesses PartPage and prepares S3
locally, but holds S3's send until the WorryWart's verdict arrives.  The
STATIC benchmark then shows the cost of the restriction: HOPE overlaps
the *remote* latency of S3 with verification, the static scope can
overlap only the local preparation.
"""

from __future__ import annotations

from ..apps.call_streaming import (
    CallStreamConfig,
    CallStreamResult,
    print_server,
)
from ..runtime import HopeSystem, call
from ..runtime.messages import RpcReply
from ..sim import ConstantLatency, LinkLatency, Span


def static_scope_worker(p, config: CallStreamConfig):
    """The Figure 2 worker under the static-scope restriction.

    Inside the scope (between guess and verdict) the worker may compute —
    so summary preparation overlaps verification — but the S3 send is
    buffered; it is released (or redone pessimistically) only once the
    verdict message arrives.  No AIDs are needed: nothing speculative
    ever escapes the process, which is exactly the baseline's point.
    """
    corr = 0
    for index, nlines in enumerate(config.report_lines):
        yield p.compute(config.local_compute)
        wart = f"worrywart-{index % config.n_warts}"
        yield p.send(wart, (index, nlines))
        # --- begin static speculative scope (local effects only) ---
        yield p.compute(config.prep_for(index))          # prepare S3 locally
        buffered_s3 = ("print", f"summary-{index}", config.summary_lines)
        # --- end of scope: wait for the verdict before any send escapes ---
        verdict = yield p.recv(
            predicate=lambda m: not isinstance(m.payload, RpcReply)
        )
        page_full = verdict.payload
        if page_full:
            yield from call(p, "server", ("newpage",), corr)
            corr += 1
        yield from call(p, "server", buffered_s3, corr)
        corr += 1


def static_scope_wart(p, config: CallStreamConfig, expected_reports: int):
    """Runs S1 and reports the verdict back to the worker (no AIDs)."""
    corr = 0
    for _ in range(expected_reports):
        msg = yield p.recv(predicate=lambda m: not isinstance(m.payload, RpcReply))
        index, nlines = msg.payload
        line = yield from call(p, "server", ("print", f"total-{index}", nlines), corr)
        corr += 1
        yield p.send("worker", line > config.page_size)


def run_static_scope(config: CallStreamConfig, seed: int = 0) -> CallStreamResult:
    """Run the statically-scoped variant; comparable to run_optimistic."""
    links = LinkLatency(default=ConstantLatency(config.latency))
    for w in range(config.n_warts):
        wart = f"worrywart-{w}"
        links.set_link("worker", wart, ConstantLatency(config.wart_latency))
        links.set_link(wart, "worker", ConstantLatency(config.wart_latency))
    system = HopeSystem(seed=seed, latency=links)
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    for w in range(config.n_warts):
        expected = len(range(w, config.n_reports, config.n_warts))
        system.spawn(f"worrywart-{w}", static_scope_wart, config, expected)
    system.spawn("worker", static_scope_worker, config)
    makespan = system.run()
    stats = system.stats()
    worker_tl = system.timeline.process("worker")
    return CallStreamResult(
        makespan=makespan,
        server_output=system.committed_outputs("server"),
        worker_busy=worker_tl.total(Span.BUSY),
        worker_blocked=worker_tl.total(Span.BLOCKED),
        wasted_time=stats["wasted_time"],
        rollbacks=stats["rollbacks"],
        messages=stats["messages_sent"],
        stats=stats,
    )
