"""The pessimistic baseline: synchronous RPC execution, plus its analytic
cost model.

Figure 1's semantics — every remote interaction waits for its reply — is
already runnable through :func:`repro.apps.call_streaming.run_pessimistic`;
this module adds the general pieces the benchmarks need:

* :class:`RpcChain` — an abstract client workload: local compute
  interleaved with synchronous RPCs;
* :func:`predict_completion` — the closed-form completion time of a chain
  (latency counts twice per call, nothing overlaps);
* :func:`run_chain` — the same chain executed on the HOPE runtime without
  any speculation, to validate the analytic model against the simulator.

Having both the formula and the simulation lets the benchmark harness
sanity-check itself: if simulated pessimistic time drifts from the
closed form, the harness (not the paper comparison) is broken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime import HopeSystem, call
from ..sim import ConstantLatency


@dataclass(frozen=True)
class RpcStep:
    """One unit of client work: ``compute`` locally, then (optionally)
    one synchronous RPC with the given service time at the server."""

    compute: float = 0.0
    rpc_service: Optional[float] = None


@dataclass(frozen=True)
class RpcChain:
    """A client workload: a sequence of steps against one remote server."""

    steps: tuple
    latency: float

    @property
    def rpc_count(self) -> int:
        return sum(1 for s in self.steps if s.rpc_service is not None)


def predict_completion(chain: RpcChain) -> float:
    """Closed-form pessimistic completion time.

    Each RPC costs a full round trip plus service; local compute is
    strictly serialized with the waits — the latency arithmetic of the
    paper's introduction (the 30 ms coast-to-coast photon).
    """
    total = 0.0
    for step in chain.steps:
        total += step.compute
        if step.rpc_service is not None:
            total += 2 * chain.latency + step.rpc_service
    return total


def _server(p):
    """Echo server: each request carries its service time."""
    while True:
        msg = yield p.recv()
        yield p.compute(msg.payload.body)
        yield p.reply(msg, None)


def _client(p, chain: RpcChain):
    corr = 0
    for step in chain.steps:
        if step.compute:
            yield p.compute(step.compute)
        if step.rpc_service is not None:
            yield from call(p, "server", step.rpc_service, corr)
            corr += 1


def run_chain(chain: RpcChain, seed: int = 0) -> float:
    """Execute the chain pessimistically on the runtime; returns makespan."""
    system = HopeSystem(seed=seed, latency=ConstantLatency(chain.latency))
    system.spawn("server", _server)
    system.spawn("client", _client, chain)
    return system.run()
