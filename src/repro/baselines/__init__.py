"""Baselines the paper positions HOPE against (§2).

* :mod:`repro.baselines.pessimistic` — Figure 1 semantics: synchronous
  RPCs, no speculation, plus the closed-form latency model;
* :mod:`repro.baselines.static_scope` — Bubenik/Zwaenepoel-style
  statically-bounded optimism [2, 3]: speculation that cannot cross a
  process boundary;
* :mod:`repro.baselines.timewarp` — Jefferson's Time Warp [16, 17]: the
  single hard-wired message-order assumption, with anti-messages and GVT.
"""

from .pessimistic import RpcChain, RpcStep, predict_completion, run_chain
from .static_scope import run_static_scope, static_scope_wart, static_scope_worker
from .timewarp import (
    Emission,
    GvtManager,
    LogicalProcess,
    SequentialOracle,
    TimeWarpEngine,
    TWMessage,
)

__all__ = [
    "RpcChain",
    "RpcStep",
    "predict_completion",
    "run_chain",
    "run_static_scope",
    "static_scope_worker",
    "static_scope_wart",
    "TWMessage",
    "LogicalProcess",
    "Emission",
    "TimeWarpEngine",
    "GvtManager",
    "SequentialOracle",
]
