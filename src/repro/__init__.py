"""HOPE — Hopefully Optimistic Programming Environment.

A from-scratch reproduction of Cowan & Lutfiyya, *Formal Semantics for
Expressing Optimism: The Meaning of HOPE* (PODC 1995): the abstract
machine of §4–5, a simulator-embedded runtime with automatic dependency
tracking and rollback, the Figure 1/2 Call Streaming application,
baselines (pessimistic execution, Time Warp, statically-scoped optimism),
and a verification harness for the paper's theorems.

Quickstart::

    from repro import HopeSystem

    sys_ = HopeSystem(seed=1)

    def worker(p):
        x = yield p.aid_init("lock-granted")
        granted = yield p.guess(x)
        if granted:
            yield p.compute(5.0)          # optimistic path
        else:
            yield p.compute(20.0)         # pessimistic path

    def verifier(p, x):
        yield p.compute(10.0)
        yield p.affirm(x)                 # or p.deny(x)

    # see examples/quickstart.py for the full program
"""

from .core import (
    AidStatus,
    AssumptionId,
    HopeError,
    Interval,
    Machine,
    ResolutionConflictError,
)
from .obs import MetricsRegistry, NullRegistry, SpanCollector
from .runtime import HopeProcess, HopeSystem

__version__ = "1.0.0"

__all__ = [
    "HopeSystem",
    "HopeProcess",
    "Machine",
    "AssumptionId",
    "AidStatus",
    "Interval",
    "HopeError",
    "MetricsRegistry",
    "NullRegistry",
    "SpanCollector",
    "ResolutionConflictError",
    "__version__",
]
