"""Randomized schedule exploration: the model-checking harness.

For every explored run the harness asserts:

1. the machine's set-algebra invariants hold (Lemma 5.1, Theorem 5.1
   chain, IS/I consistency) — continuously, via the monitors;
2. no rollback ever discards a definite interval (Theorem 5.2);
3. committed outputs only grow (output-commit monotonicity);
4. the final committed ledger of every process equals the scenario's
   decision-derived reference — the observable-equivalence oracle: a HOPE
   execution must commit exactly what the pessimistic serial execution of
   the same decisions would produce;
5. determinism: re-running the same seed reproduces the same trace
   fingerprint.

This is bounded model checking by randomized scheduling: latency and
verification delays are drawn per run, which permutes message orders and
verdict timings across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..runtime import HopeSystem
from ..sim import ConstantLatency, RandomStreams, Tracer
from .invariants import InvariantViolation, attach_monitors, check_quiescent
from .programs import Scenario, random_scenario


@dataclass
class RunOutcome:
    """One explored run: what happened and whether it conformed."""

    scenario: str
    seed: int
    latency: float
    violations: list = field(default_factory=list)
    rollbacks: int = 0
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ExplorationReport:
    """Aggregate of an exploration campaign."""

    runs: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [run for run in self.runs if not run.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        total = len(self.runs)
        rollbacks = sum(run.rollbacks for run in self.runs)
        lines = [
            f"{total} runs, {len(self.failures)} failing, "
            f"{rollbacks} rollbacks exercised"
        ]
        for run in self.failures[:10]:
            lines.append(f"  FAIL {run.scenario} seed={run.seed}: {run.violations}")
        extra = len(self.failures) - 10
        if extra > 0:
            lines.append(f"  (+{extra} more failures)")
        return "\n".join(lines)


def run_scenario(
    scenario: Scenario,
    seed: int,
    latency: float,
    check_determinism: bool = False,
    aid_mode: str = "registry",
    control_latency: float = 0.5,
    shuffle_ties: bool = False,
) -> RunOutcome:
    """Execute one scenario under one schedule and check everything.

    ``shuffle_ties`` additionally permutes same-virtual-time event
    orderings (seeded) — interleaving-level exploration on top of the
    latency-level randomization.
    """
    outcome = RunOutcome(scenario=scenario.name, seed=seed, latency=latency)

    def execute(speculation: bool = True) -> tuple[HopeSystem, str]:
        tracer = Tracer()
        system = HopeSystem(
            seed=seed,
            latency=ConstantLatency(latency),
            trace=tracer,
            aid_mode=aid_mode,
            control_latency=control_latency,
            speculation=speculation,
            shuffle_ties=shuffle_ties,
        )
        attach_monitors(system)
        scenario.build(system)
        system.run(max_events=500_000)
        return system, tracer.fingerprint()

    try:
        system, fingerprint = execute()
    except InvariantViolation as exc:
        outcome.violations.append(f"streaming invariant: {exc}")
        return outcome
    outcome.fingerprint = fingerprint
    outcome.rollbacks = system.stats()["rollbacks"]
    try:
        check_quiescent(system)
    except InvariantViolation as exc:
        outcome.violations.append(f"quiescent invariant: {exc}")
    for process, expected in scenario.reference.items():
        actual = system.committed_outputs(process)
        if actual != expected:
            outcome.violations.append(
                f"oracle mismatch for {process!r}: expected {expected!r}, "
                f"committed {actual!r}"
            )
    if check_determinism:
        _system2, fingerprint2 = execute()
        if fingerprint2 != fingerprint:
            outcome.violations.append("non-deterministic trace for equal seed")
    if scenario.blocking_oracle:
        # The strongest oracle: the same program text, run pessimistically
        # (speculation=False: guesses block for their verdicts), must
        # commit the identical ledger.
        blocking_system, _fp = execute(speculation=False)
        if blocking_system.stats()["rollbacks"] != 0:
            outcome.violations.append("blocking oracle rolled back")
        for process in scenario.reference:
            speculative = system.committed_outputs(process)
            blocking = blocking_system.committed_outputs(process)
            if speculative != blocking:
                outcome.violations.append(
                    f"speculative/blocking divergence for {process!r}: "
                    f"{speculative!r} vs {blocking!r}"
                )
    return outcome


def explore(
    n_runs: int = 50,
    root_seed: int = 0,
    check_determinism: bool = False,
    aid_mode: str = "registry",
    shuffle_ties: bool = False,
) -> ExplorationReport:
    """Run ``n_runs`` random scenarios under random schedules."""
    streams = RandomStreams(root_seed)
    picker = streams["scenario"]
    report = ExplorationReport()
    for index in range(n_runs):
        scenario = random_scenario(picker)
        latency = picker.uniform(0.0, 5.0)
        # Per-run seeds come from the seeded stream, not arithmetic on
        # root_seed: ``root_seed * 10_007 + index`` collides across
        # campaigns (root r at index i equals root r+1 at i-10_007, so
        # any campaign longer than 10_007 runs replays its neighbor's
        # seeds) instead of widening coverage.
        outcome = run_scenario(
            scenario,
            seed=picker.randint(0, 2**31 - 1),
            latency=latency,
            check_determinism=check_determinism,
            aid_mode=aid_mode,
            shuffle_ties=shuffle_ties,
        )
        report.runs.append(outcome)
    return report
