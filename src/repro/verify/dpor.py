"""Stateless model checking with dynamic partial-order reduction.

The randomized explorer (:mod:`repro.verify.explorer`) samples schedules;
this module *enumerates* them.  A DFS driver replays choice prefixes
through fresh :class:`~repro.runtime.HopeSystem` instances (stateless
model checking — no state snapshots, only re-execution), directing every
same-virtual-time tie through the simulator's controller seam and every
fault fate through :class:`~repro.verify.schedule.DirectedFaultyNetwork`.

Reduction is the classic DPOR recipe (Flanagan & Godefroid) adapted to a
discrete-event world:

* **Only same-time events commute.**  Virtual-time order is semantic in
  a DES — an event at t=1 can never fire after one at t=2 — so the
  reorderable pairs are exactly the members of one tie batch, and
  backtracking points are computed only between steps sharing a virtual
  time.
* **Independence is footprint disjointness.**  Each executed step's
  footprint (process names plus AID keys touched, extracted from the
  trace slice it produced) is recorded; two same-time steps with
  disjoint footprints commute, so neither needs to be reordered before
  the other.
* **Sleep sets** prune branches that would only replay a commuted
  permutation of an already-explored one.  Filtering uses footprints
  observed in earlier executions (unknown footprint = conservatively
  dependent, so the set only under-prunes at bootstrap); because
  footprints are *observed*, not statically derived, the unpruned
  ``prune=False`` mode doubles as the soundness oracle — tests assert
  both modes reach the same set of distinct outcomes.

Every complete execution runs the full monitor stack from
:mod:`repro.verify.invariants` plus the scenario's decision-derived
reference oracle (and, for ``blocking_oracle`` scenarios, ledger
equality with a once-computed pessimistic run of the same program).  A
violation is shrunk to the minimal failing choice prefix and written as
a JSON reproducer in the chaos-harness format (same writer), replayable
with :func:`run_dpor_reproducer` or ``repro verify --repro``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..runtime import HopeSystem
from ..sim import ConstantLatency, Tracer
from ..sim.faults import FaultPlan
from .invariants import InvariantViolation, attach_monitors, check_quiescent
from .programs import (
    Scenario,
    chain_scenario,
    diamond_scenario,
    free_of_scenario,
    orphan_scenario,
    scenario_from_spec,
    two_aid_scenario,
)
from .schedule import RecordingController, DirectedFaultyNetwork, ReplayDivergence


class _Node:
    """One choice point on the DFS stack.

    ``started`` lists the branch indices explored so far, in order (the
    last entry is the branch the current path goes through).
    ``backtrack`` is the DPOR backtracking set: branches that *must* be
    explored because some later dependent step could be reordered here.
    """

    __slots__ = ("kind", "time", "keys", "started", "backtrack", "footprint")

    def __init__(self, kind, time, keys, chosen, footprint, backtrack):
        self.kind = kind
        self.time = time
        self.keys = keys
        self.started = [chosen]
        self.backtrack = set(backtrack)
        self.footprint = footprint

    @property
    def chosen(self) -> int:
        return self.started[-1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Node {self.kind} t={self.time:g} {len(self.keys)} options "
            f"started={self.started} backtrack={sorted(self.backtrack)}>"
        )


@dataclass
class DporRun:
    """One executed schedule and everything checked about it."""

    index: int
    choices: list
    fingerprint: str = ""
    violations: list = field(default_factory=list)
    rollbacks: int = 0
    sleep_blocked: bool = False
    steps: int = 0
    committed: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class DporReport:
    """Aggregate of one exhaustive exploration."""

    scenario: str
    prune: bool
    sleep_sets: bool
    runs: list = field(default_factory=list)
    complete: bool = False
    sleep_pruned: int = 0
    shrink_runs: int = 0
    reproducer: Optional[str] = None

    @property
    def schedules(self) -> int:
        return len(self.runs)

    @property
    def failures(self) -> list:
        return [run for run in self.runs if not run.ok]

    @property
    def ok(self) -> bool:
        return self.complete and not self.failures

    def outcomes(self) -> set:
        """The distinct committed end states reached across all schedules."""
        return {run.committed for run in self.runs}

    def summary(self) -> str:
        mode = "dpor" if self.prune else "full"
        if self.prune and self.sleep_sets:
            mode += "+sleep"
        status = "complete" if self.complete else "BUDGET EXHAUSTED"
        lines = [
            f"{self.scenario}: {self.schedules} schedules explored ({mode}, "
            f"{status}), {len(self.failures)} failing, "
            f"{len(self.outcomes())} distinct outcome(s), "
            f"{self.sleep_pruned} sleep-pruned"
        ]
        for run in self.failures[:10]:
            lines.append(f"  FAIL schedule #{run.index}: {run.violations}")
        extra = len(self.failures) - 10
        if extra > 0:
            lines.append(f"  (+{extra} more failures)")
        if self.reproducer:
            lines.append(f"  reproducer: {self.reproducer}")
        return "\n".join(lines)


class DporExplorer:
    """DFS over the schedule tree of one scenario.

    Parameters
    ----------
    scenario:
        The workload plus reference oracle (:mod:`repro.verify.programs`).
    seed, latency, aid_mode, control_latency, kernel:
        Forwarded to every :class:`HopeSystem` replay — held fixed so the
        controller's choices are the *only* source of divergence.
    prune:
        ``True`` (default) computes DPOR backtracking sets; ``False``
        enumerates every permutation of every tie batch — exponentially
        larger, used as the reduction-soundness oracle in tests.
    sleep_sets:
        Layer sleep-set pruning on top of DPOR (ignored when
        ``prune=False``: the oracle mode must stay exhaustive).
    max_schedules:
        Execution budget; exploration that exhausts it reports
        ``complete=False``.
    fault_plan:
        Optional chaos-harness plan whose drop/reorder fates become
        explored choice points (see
        :class:`~repro.verify.schedule.DirectedFaultyNetwork`); a plan
        with drops requires ``reliable`` so the reference oracle still
        applies (losses are masked by resend, not observable).
    max_drops:
        Per-execution bound on explored message drops.
    allow_pending_orphans:
        Forwarded to :func:`check_quiescent` after every execution.
    inject_bug:
        Deliberately misflag executions where an AID named ``y*`` is the
        first to be resolved — a schedule-dependent "bug" only some
        interleavings reach, used end-to-end to prove the explorer finds,
        shrinks, and reproduces ordering bugs.
    repro_dir:
        When set, the first failure writes a JSON reproducer here.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        latency: float = 0.5,
        aid_mode: str = "registry",
        control_latency: float = 0.5,
        kernel: str = "wheel",
        prune: bool = True,
        sleep_sets: bool = True,
        max_schedules: int = 2000,
        max_events: int = 200_000,
        fault_plan: Optional[FaultPlan] = None,
        max_drops: int = 1,
        reliable: object = False,
        allow_pending_orphans: bool = True,
        inject_bug: bool = False,
        repro_dir: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.latency = latency
        self.aid_mode = aid_mode
        self.control_latency = control_latency
        self.kernel = kernel
        self.prune = prune
        self.sleep_sets = sleep_sets and prune
        self.max_schedules = max_schedules
        self.max_events = max_events
        self.fault_plan = fault_plan
        self.max_drops = max_drops
        self.reliable = reliable
        self.allow_pending_orphans = allow_pending_orphans
        self.inject_bug = inject_bug
        self.repro_dir = repro_dir
        if fault_plan is not None and not reliable:
            drops = [fault_plan.default, *fault_plan.links.values()]
            if any(f.drop > 0.0 for f in drops):
                raise ValueError(
                    "exploring drop fates without reliable delivery makes "
                    "the reference oracle unsound — pass reliable=True"
                )
        #: Footprints observed per event key across all executions — the
        #: independence oracle shared with every RecordingController.
        self.known: dict = {}
        self._nodes: list[_Node] = []
        self._blocking: Optional[dict] = None
        self._blocking_violation: Optional[str] = None

    # ------------------------------------------------------------------
    # single execution + per-run checks
    # ------------------------------------------------------------------
    def execute(
        self, prescribed: Sequence[int] = (), initial_sleep: frozenset = frozenset()
    ) -> tuple[RecordingController, DporRun]:
        """Replay one choice prefix to completion and check everything."""
        tracer = Tracer()
        controller = RecordingController(
            prescribed, tracer, initial_sleep, self.known
        )
        transport = None
        if self.fault_plan is not None:
            plan, drops = self.fault_plan, self.max_drops

            def transport(sim, latency_model, _streams):
                return DirectedFaultyNetwork(sim, latency_model, plan, controller, drops)

        system = HopeSystem(
            seed=self.seed,
            latency=ConstantLatency(self.latency),
            trace=tracer,
            aid_mode=self.aid_mode,
            control_latency=self.control_latency,
            kernel=self.kernel,
            reliable=self.reliable,
            transport=transport,
            controller=controller,
        )
        attach_monitors(system)
        self.scenario.build(system)
        run = DporRun(index=0, choices=[])
        try:
            system.run(max_events=self.max_events)
        except InvariantViolation as exc:
            run.violations.append(f"streaming invariant: {exc}")
        controller.finish()
        run.choices = [step.chosen for step in controller.records]
        run.steps = len(controller.records)
        run.sleep_blocked = controller.sleep_blocked
        run.fingerprint = tracer.fingerprint()
        if run.violations:
            return controller, run
        run.rollbacks = system.stats()["rollbacks"]
        try:
            check_quiescent(system, allow_pending_orphans=self.allow_pending_orphans)
        except InvariantViolation as exc:
            run.violations.append(f"quiescent invariant: {exc}")
        for process, expected in self.scenario.reference.items():
            actual = system.committed_outputs(process)
            if actual != expected:
                run.violations.append(
                    f"oracle mismatch for {process!r}: expected {expected!r}, "
                    f"committed {actual!r}"
                )
        if self.scenario.blocking_oracle and self._blocking is not None:
            for process in self.scenario.reference:
                speculative = system.committed_outputs(process)
                blocking = self._blocking[process]
                if speculative != blocking:
                    run.violations.append(
                        f"speculative/blocking divergence for {process!r}: "
                        f"{speculative!r} vs {blocking!r}"
                    )
        if self.inject_bug:
            for rec in tracer.records:
                if rec.category in ("affirm", "deny") and rec.detail.get("aid"):
                    if str(rec.detail["aid"]).startswith("y"):
                        run.violations.append(
                            "injected bug: AID "
                            f"{rec.detail['aid']!r} resolved first"
                        )
                    break
        run.committed = tuple(
            sorted(
                (name, tuple(repr(v) for v in system.committed_outputs(name)))
                for name in system.procs
            )
        )
        return controller, run

    # ------------------------------------------------------------------
    # the DFS
    # ------------------------------------------------------------------
    def explore(self) -> DporReport:
        """Enumerate inequivalent schedules until the tree (or budget) is done."""
        report = DporReport(
            scenario=self.scenario.name, prune=self.prune, sleep_sets=self.sleep_sets
        )
        self._nodes = []
        if self.scenario.blocking_oracle:
            self._compute_blocking_reference()
        prescribed: list = []
        initial_sleep: frozenset = frozenset()
        while len(report.runs) < self.max_schedules:
            controller, run = self.execute(prescribed, initial_sleep)
            run.index = len(report.runs)
            if self._blocking_violation and not run.violations:
                run.violations.append(self._blocking_violation)
            report.runs.append(run)
            if run.violations and self.repro_dir and report.reproducer is None:
                report.reproducer = self._write_reproducer(run, report)
            self._absorb(controller.records)
            if self.prune:
                self._add_backtracks(controller.records)
            nxt = self._select_next(report)
            if nxt is None:
                report.complete = True
                break
            prescribed, initial_sleep = nxt
        return report

    def _compute_blocking_reference(self) -> None:
        """The pessimistic twin: same program text, guesses block.

        Computed once per exploration — the blocking run has no
        speculation to reorder, so a single canonical schedule suffices
        as the comparison ledger for every explored speculative one.
        """
        system = HopeSystem(
            seed=self.seed,
            latency=ConstantLatency(self.latency),
            aid_mode=self.aid_mode,
            control_latency=self.control_latency,
            kernel=self.kernel,
            speculation=False,
        )
        self.scenario.build(system)
        system.run(max_events=self.max_events)
        if system.stats()["rollbacks"] != 0:
            self._blocking_violation = "blocking oracle rolled back"
        self._blocking = {
            p: system.committed_outputs(p) for p in self.scenario.reference
        }

    def _absorb(self, steps) -> None:
        """Fold one execution's step records into the DFS node stack."""
        nodes = self._nodes
        for k, step in enumerate(steps):
            if k < len(nodes):
                node = nodes[k]
                if node.keys != step.keys:
                    raise ReplayDivergence(
                        f"step {k} batch changed across replays of one prefix: "
                        f"{node.keys!r} -> {step.keys!r}"
                    )
                node.footprint = step.footprint
            else:
                if step.kind == "fate" or not self.prune:
                    backtrack = range(len(step.keys))
                else:
                    backtrack = (step.chosen,)
                nodes.append(
                    _Node(
                        step.kind, step.time, step.keys, step.chosen,
                        step.footprint, backtrack,
                    )
                )
        # A violation can abort a run mid-prefix; drop stack entries the
        # execution never reached (their subtrees hang off a failing path).
        del nodes[len(steps):]

    def _add_backtracks(self, steps) -> None:
        """The DPOR pass: schedule reorderings of dependent same-time pairs.

        For each executed tie step *j*, every earlier tie step *i* at the
        same virtual time whose footprint intersects *j*'s gets a
        backtracking point: the branch that fires *j*'s event at *i* if it
        was co-enabled there, else (conservatively) every branch.
        """
        nodes = self._nodes
        for j, sj in enumerate(steps):
            if sj.kind != "tie" or not sj.footprint:
                continue
            for i in range(j - 1, -1, -1):
                si = steps[i]
                if si.kind != "tie":
                    continue
                if si.time != sj.time:
                    break  # tie times are non-decreasing: no older peer ties
                if si.footprint.isdisjoint(sj.footprint):
                    continue
                node = nodes[i]
                if sj.chosen_key in node.keys:
                    node.backtrack.add(node.keys.index(sj.chosen_key))
                else:
                    node.backtrack.update(range(len(node.keys)))

    def _sleep_at(self, k: int) -> set:
        """The sleep set in force when node *k* starts its next branch.

        Walks the current path applying Godefroid's rule: a finished
        sibling branch's event goes to sleep, and sleeping events wake as
        soon as a dependent (footprint-intersecting, or unknown) step
        executes below them.
        """
        known = self.known
        sleep: set = set()
        for i in range(k):
            node = self._nodes[i]
            if node.kind != "tie":
                continue
            for s in node.started[:-1]:
                sleep.add(node.keys[s])
            if sleep:
                footprint = node.footprint
                sleep = {
                    key
                    for key in sleep
                    if known.get(key) is not None
                    and known[key].isdisjoint(footprint)
                }
        node = self._nodes[k]
        if node.kind == "tie":
            for s in node.started:
                sleep.add(node.keys[s])
        return sleep

    def _select_next(self, report: DporReport) -> Optional[tuple]:
        """Deepest unexplored backtracking point → next (prefix, sleep)."""
        nodes = self._nodes
        while nodes:
            k = len(nodes) - 1
            node = nodes[k]
            pending = sorted(node.backtrack - set(node.started))
            sleep_now = self._sleep_at(k) if self.sleep_sets else set()
            chosen = None
            for c in pending:
                if node.kind == "tie" and node.keys[c] in sleep_now:
                    continue  # provably redundant from this state — skip
                chosen = c
                break
            if chosen is None:
                if self.sleep_sets:
                    report.sleep_pruned += len(pending)
                nodes.pop()
                continue
            node.started.append(chosen)
            prescribed = [n.chosen for n in nodes[:k]] + [chosen]
            del nodes[k + 1:]
            return prescribed, frozenset(sleep_now)
        return None

    # ------------------------------------------------------------------
    # reproducers
    # ------------------------------------------------------------------
    def _shrink_choices(self, choices: list, report: DporReport) -> list:
        """Minimal failing prefix: defaults beyond it must still fail.

        Binary search over prefix lengths, maintaining the invariant that
        the upper bound fails (the full sequence does, by construction) —
        so the returned prefix is verified-failing even if failure is not
        monotone in prefix length.
        """

        def fails(prefix: list) -> bool:
            report.shrink_runs += 1
            _controller, run = self.execute(prefix, frozenset())
            return bool(run.violations)

        if fails([]):
            return []
        lo, hi = 0, len(choices)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if fails(choices[:mid]):
                hi = mid
            else:
                lo = mid
        return choices[:hi]

    def _write_reproducer(self, run: DporRun, report: DporReport) -> str:
        import os

        from ..chaos import write_reproducer  # late: chaos imports this package

        shrunk = self._shrink_choices(run.choices, report)
        path = os.path.join(
            self.repro_dir, f"repro-dpor-{self.scenario.name}-{run.index}.json"
        )
        # Scenario names carry parens/commas; keep the filename shell-safe.
        path = "".join(ch if ch.isalnum() or ch in "-_./" else "_" for ch in path)
        payload = {
            "kind": "dpor",
            "scenario": self.scenario.spec,
            "scenario_name": self.scenario.name,
            "seed": self.seed,
            "latency": self.latency,
            "aid_mode": self.aid_mode,
            "control_latency": self.control_latency,
            "kernel": self.kernel,
            "max_events": self.max_events,
            "reliable": bool(self.reliable),
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
            "max_drops": self.max_drops,
            "allow_pending_orphans": self.allow_pending_orphans,
            "inject_bug": self.inject_bug,
            "choices": shrunk,
            "original_choices": run.choices,
            "shrink_runs": report.shrink_runs,
            "failure": run.violations,
            "fingerprint": run.fingerprint,
            "command": f"python -m repro.cli verify --repro {path}",
        }
        return write_reproducer(path, payload)


def run_dpor_reproducer(path: str) -> DporRun:
    """Replay a DPOR reproducer file; returns the (expected-failing) run."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("kind") != "dpor":
        raise ValueError(f"{path} is not a DPOR reproducer (kind={payload.get('kind')!r})")
    explorer = DporExplorer(
        scenario_from_spec(payload["scenario"]),
        seed=payload["seed"],
        latency=payload["latency"],
        aid_mode=payload["aid_mode"],
        control_latency=payload["control_latency"],
        kernel=payload["kernel"],
        max_events=payload["max_events"],
        fault_plan=(
            FaultPlan.from_dict(payload["fault_plan"])
            if payload.get("fault_plan")
            else None
        ),
        max_drops=payload.get("max_drops", 1),
        reliable=payload.get("reliable", False),
        allow_pending_orphans=payload.get("allow_pending_orphans", True),
        inject_bug=payload.get("inject_bug", False),
    )
    if explorer.scenario.blocking_oracle:
        explorer._compute_blocking_reference()
    _controller, run = explorer.execute(payload["choices"], frozenset())
    return run


def standard_scenarios() -> list:
    """The bounded scenario matrix `repro verify` and the CI smoke sweep."""
    return [
        chain_scenario(1, True, 0.75),
        chain_scenario(1, False, 0.75),
        # dx=dy=0.75 lands both verdicts in one tie batch *after* the
        # worker guessed both AIDs — the dependent pair DPOR must reorder.
        two_aid_scenario(True, True, 0.75, 0.75),
        two_aid_scenario(True, False, 0.75, 0.75),
        two_aid_scenario(False, False, 0.75, 0.75),
        diamond_scenario(True, 0.75),
        diamond_scenario(False, 0.75),
        free_of_scenario(False),
        free_of_scenario(True),
        orphan_scenario(True),
    ]
