"""Parameterized HOPE scenarios for the schedule explorer.

Each scenario knows how to build itself onto a fresh :class:`HopeSystem`
and what its *committed reference output* must be — computed directly
from the scenario's decision parameters, independent of any execution.
The explorer then checks that every randomized schedule commits exactly
the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..runtime import HopeSystem
from ..sim import TIMED_OUT, RandomStream


@dataclass(frozen=True)
class Scenario:
    """A buildable workload plus its expected committed ledger.

    ``blocking_oracle`` marks scenarios whose observable outcome does not
    depend on speculation-vs-waiting (all assumptions resolved by other
    processes, no timing-dependent branches): for those, the explorer
    additionally runs the program with ``speculation=False`` and requires
    the identical committed ledger — the strongest oracle available,
    because it executes the *same program text* pessimistically.

    ``spec`` is the JSON-serializable recipe that rebuilt this scenario
    (``{"factory": name, "kwargs": {...}}``) — what DPOR reproducer files
    store so :func:`scenario_from_spec` can reconstruct the workload.
    """

    name: str
    build: object          # Callable[[HopeSystem], None]
    reference: dict        # process name -> expected committed outputs
    blocking_oracle: bool = False
    spec: Optional[dict] = field(default=None, compare=False)

    def expected(self, process: str) -> list:
        return self.reference.get(process, [])


# ---------------------------------------------------------------------------
# scenario: speculation chain
# ---------------------------------------------------------------------------
def chain_scenario(depth: int, decide: bool, verify_delay: float) -> Scenario:
    """A root guess relayed through ``depth`` processes, then resolved.

    Every relay emits what it saw; if the assumption is denied, nothing
    downstream of the guess may commit.
    """

    def build(system: HopeSystem) -> None:
        def root(p):
            x = yield p.aid_init("x")
            yield p.send("judge", x)
            if (yield p.guess(x)):
                yield p.emit("root-optimistic")
                yield p.send("relay-0", 0)
            else:
                yield p.emit("root-pessimistic")
            yield p.compute(1.0)

        def relay(p, i):
            msg = yield p.recv()
            yield p.emit(("saw", i))
            yield p.compute(0.5)
            if i + 1 < depth:
                yield p.send(f"relay-{i + 1}", i + 1)

        def judge(p):
            msg = yield p.recv()
            yield p.compute(verify_delay)
            if decide:
                yield p.affirm(msg.payload)
            else:
                yield p.deny(msg.payload)

        system.spawn("root", root)
        system.spawn("judge", judge)
        for i in range(depth):
            system.spawn(f"relay-{i}", relay, i)

    reference = {"root": ["root-optimistic" if decide else "root-pessimistic"]}
    for i in range(depth):
        reference[f"relay-{i}"] = [("saw", i)] if decide else []
    return Scenario(
        f"chain(depth={depth},decide={decide})",
        build,
        reference,
        blocking_oracle=True,
        spec={
            "factory": "chain",
            "kwargs": {"depth": depth, "decide": decide, "verify_delay": verify_delay},
        },
    )


# ---------------------------------------------------------------------------
# scenario: two independent assumptions with independent verdicts
# ---------------------------------------------------------------------------
def two_aid_scenario(decide_x: bool, decide_y: bool, dx: float, dy: float) -> Scenario:
    def build(system: HopeSystem) -> None:
        def worker(p):
            x = yield p.aid_init("x")
            y = yield p.aid_init("y")
            yield p.send("judge-x", x)
            yield p.send("judge-y", y)
            gx = yield p.guess(x)
            yield p.emit(("x", gx))
            yield p.compute(1.0)
            gy = yield p.guess(y)
            yield p.emit(("y", gy))
            yield p.compute(1.0)
            yield p.emit("end")

        def judge(p, decision, delay):
            msg = yield p.recv()
            yield p.compute(delay)
            if decision:
                yield p.affirm(msg.payload)
            else:
                yield p.deny(msg.payload)

        system.spawn("worker", worker)
        system.spawn("judge-x", judge, decide_x, dx)
        system.spawn("judge-y", judge, decide_y, dy)

    # The committed trace replays the decision tree: a denied guess
    # re-executes with False.  Possible interleavings collapse to the
    # final values because withdrawn emits never commit.
    reference = {
        "worker": [("x", decide_x), ("y", decide_y), "end"]
    }
    return Scenario(
        f"two_aid(x={decide_x},y={decide_y})",
        build,
        reference,
        blocking_oracle=True,
        spec={
            "factory": "two_aid",
            "kwargs": {
                "decide_x": decide_x, "decide_y": decide_y, "dx": dx, "dy": dy,
            },
        },
    )


# ---------------------------------------------------------------------------
# scenario: free_of ordering race (Figure 2 in miniature)
# ---------------------------------------------------------------------------
def free_of_scenario(violate: bool) -> Scenario:
    """A sink that must stay causally free of a speculative writer.

    ``violate=True`` routes the speculative message so the checker *does*
    become dependent — free_of must deny and roll the world back; the
    writer then re-executes pessimistically.
    """

    def build(system: HopeSystem) -> None:
        def writer(p):
            x = yield p.aid_init("x")
            yield p.send("checker", x)        # definite: FIFO beats the taint
            if (yield p.guess(x)):
                if violate:
                    yield p.send("checker", "tainted")
                yield p.emit("spec-write")
            else:
                yield p.emit("plain-write")
            yield p.compute(1.0)

        def checker(p):
            # Robust to event reordering: collect messages until the AID
            # handle (and, in the violating variant, the taint) has been
            # seen; a timeout covers the post-rollback re-execution where
            # the tainted message is dead.
            from ..runtime import AidHandle

            x = None
            seen_taint = False
            while x is None or (violate and not seen_taint):
                msg = yield p.recv(timeout=50.0)
                if msg is TIMED_OUT:
                    break
                if isinstance(msg.payload, AidHandle):
                    x = msg.payload
                else:
                    seen_taint = True         # dependent on x via the tag
            yield p.compute(1.0)
            yield p.free_of(x)                # the Figure 2 Order discipline
            yield p.emit("checked")

        system.spawn("writer", writer)
        system.spawn("checker", checker)

    if violate:
        # free_of denies x: the writer re-executes the pessimistic branch;
        # the checker re-executes free_of (no-op) and commits.
        reference = {"writer": ["plain-write"], "checker": ["checked"]}
    else:
        # free_of affirms x: the speculative write commits.
        reference = {"writer": ["spec-write"], "checker": ["checked"]}
    return Scenario(
        f"free_of(violate={violate})",
        build,
        reference,
        spec={"factory": "free_of", "kwargs": {"violate": violate}},
    )


# ---------------------------------------------------------------------------
# scenario: diamond — two speculative paths reconverge at one sink
# ---------------------------------------------------------------------------
def diamond_scenario(decide: bool, verify_delay: float) -> Scenario:
    """The source's assumption reaches the sink along two branches.

    The second tagged arrival must fold into the sink's existing
    dependency (no new interval, no double rollback), and a denial must
    withdraw the sink's combined output exactly once.
    """

    def build(system: HopeSystem) -> None:
        def source(p):
            x = yield p.aid_init("x")
            yield p.send("judge", x)
            if (yield p.guess(x)):
                yield p.send("left", 1)
                yield p.send("right", 2)
            else:
                yield p.emit("source-pessimistic")
            yield p.compute(1.0)

        def branch(p, scale):
            msg = yield p.recv()
            yield p.compute(0.5)
            yield p.send("sink", msg.payload * scale)

        def sink(p):
            first = yield p.recv()
            second = yield p.recv()
            yield p.emit(("combined", first.payload + second.payload))

        def judge(p):
            msg = yield p.recv()
            yield p.compute(verify_delay)
            if decide:
                yield p.affirm(msg.payload)
            else:
                yield p.deny(msg.payload)

        system.spawn("source", source)
        system.spawn("left", branch, 10)
        system.spawn("right", branch, 100)
        system.spawn("sink", sink)
        system.spawn("judge", judge)

    if decide:
        reference = {"source": [], "sink": [("combined", 1 * 10 + 2 * 100)]}
    else:
        reference = {"source": ["source-pessimistic"], "sink": []}
    return Scenario(
        f"diamond(decide={decide})",
        build,
        reference,
        blocking_oracle=True,
        spec={
            "factory": "diamond",
            "kwargs": {"decide": decide, "verify_delay": verify_delay},
        },
    )


# ---------------------------------------------------------------------------
# scenario: an assumption nobody ever resolves
# ---------------------------------------------------------------------------
def orphan_scenario(resolve: bool) -> Scenario:
    """A worker initializes an AID and (maybe) never has it resolved.

    Nobody guesses on the AID, so the run quiesces cleanly either way —
    but with ``resolve=False`` the AID is left *pending with no
    speculative affirmer*, which the strict quiescence check
    (``check_quiescent(..., allow_pending_orphans=False)``) rejects:
    an orphaned assumption is usually a program that forgot a judge.
    """

    def build(system: HopeSystem) -> None:
        def worker(p):
            x = yield p.aid_init("x")
            if resolve:
                yield p.send("judge", x)
            yield p.emit("done")

        def judge(p):
            msg = yield p.recv()
            yield p.compute(0.25)
            yield p.affirm(msg.payload)

        system.spawn("worker", worker)
        if resolve:
            system.spawn("judge", judge)

    reference = {"worker": ["done"]}
    return Scenario(
        f"orphan(resolve={resolve})",
        build,
        reference,
        blocking_oracle=False,
        spec={"factory": "orphan", "kwargs": {"resolve": resolve}},
    )


# ---------------------------------------------------------------------------
# scenario factory used by the explorer
# ---------------------------------------------------------------------------
def random_scenario(stream: RandomStream) -> Scenario:
    """Draw one scenario with randomized parameters."""
    pick = stream.randint(0, 3)
    if pick == 0:
        return chain_scenario(
            depth=stream.randint(1, 4),
            decide=stream.bernoulli(0.5),
            verify_delay=stream.uniform(0.1, 8.0),
        )
    if pick == 1:
        return two_aid_scenario(
            decide_x=stream.bernoulli(0.5),
            decide_y=stream.bernoulli(0.5),
            dx=stream.uniform(0.1, 6.0),
            dy=stream.uniform(0.1, 6.0),
        )
    if pick == 2:
        return diamond_scenario(
            decide=stream.bernoulli(0.5),
            verify_delay=stream.uniform(0.1, 8.0),
        )
    return free_of_scenario(violate=stream.bernoulli(0.5))


ALL_FACTORIES: Sequence = (
    chain_scenario,
    two_aid_scenario,
    diamond_scenario,
    free_of_scenario,
)

#: Factory registry keyed by the ``spec["factory"]`` names reproducer
#: files store (see :func:`scenario_from_spec`).
FACTORIES: dict = {
    "chain": chain_scenario,
    "two_aid": two_aid_scenario,
    "diamond": diamond_scenario,
    "free_of": free_of_scenario,
    "orphan": orphan_scenario,
}


def scenario_from_spec(spec: dict) -> Scenario:
    """Rebuild a scenario from its serialized ``Scenario.spec`` recipe."""
    try:
        factory = FACTORIES[spec["factory"]]
    except KeyError:
        raise ValueError(f"unknown scenario factory {spec.get('factory')!r}")
    return factory(**spec.get("kwargs", {}))
