"""Cross-layer invariants checked over whole HopeSystem runs.

The machine checks its own set algebra (:meth:`Machine.check_invariants`);
these checks relate the machine to the runtime's observables:

* **ledger monotonicity** — once an output is committed it is never
  withdrawn (the output-commit guarantee);
* **Theorem 5.2 at system level** — no definite interval ever appears in
  a rollback's discard set;
* **waste accounting** — wasted time implies at least one rollback;
* **quiescent resolution** — at quiescence, a pending AID may not retain
  dependents (someone would wait forever on it).
"""

from __future__ import annotations

from ..core import MachineInvariantError, RollbackEvent
from ..runtime import HopeSystem


class InvariantViolation(AssertionError):
    """A system-level invariant failed."""


class LedgerMonitor:
    """Watches committed outputs throughout a run; they must only grow.

    Attach *before* running; call :meth:`assert_monotone` during or after.
    """

    def __init__(self, system: HopeSystem) -> None:
        self.system = system
        self._snapshots: dict[str, list] = {}
        # sample after every machine event (rollbacks included)
        system.machine.subscribe(lambda _event: self.sample())

    def sample(self) -> None:
        for name in self.system.procs:
            committed = self.system.committed_outputs(name)
            previous = self._snapshots.get(name, [])
            if committed[: len(previous)] != previous:
                raise InvariantViolation(
                    f"committed ledger of {name!r} shrank or mutated: "
                    f"{previous!r} -> {committed!r}"
                )
            self._snapshots[name] = committed

    def assert_monotone(self) -> None:
        self.sample()


class DefiniteSafetyMonitor:
    """Theorem 5.2, observed: rollbacks never discard definite intervals."""

    def __init__(self, system: HopeSystem) -> None:
        self.rollbacks_seen = 0

        def watch(event) -> None:
            if isinstance(event, RollbackEvent):
                self.rollbacks_seen += 1
                for interval in event.discarded:
                    if interval.definite:
                        raise InvariantViolation(
                            f"rollback discarded definite interval {interval.label}"
                        )

        system.machine.subscribe(watch)


def check_quiescent(system: HopeSystem, allow_pending_orphans: bool = True) -> None:
    """Full post-run check: machine algebra plus system-level facts."""
    try:
        system.machine.check_invariants()
    except MachineInvariantError as exc:
        raise InvariantViolation(f"machine invariant broken: {exc}") from exc
    stats = system.stats()
    if stats["wasted_time"] > 0 and stats["rollbacks"] == 0:
        raise InvariantViolation(
            f"wasted time {stats['wasted_time']} with zero rollbacks"
        )
    for aid in system.machine.aids.values():
        if aid.pending and aid.dom:
            raise InvariantViolation(
                f"quiescent with pending AID {aid.key} that still has "
                f"{len(aid.dom)} dependent interval(s) — they wait forever"
            )
        if not allow_pending_orphans and aid.pending and aid.speculative_affirmer is None:
            raise InvariantViolation(f"pending orphan AID {aid.key}")


def attach_monitors(system: HopeSystem) -> tuple[LedgerMonitor, DefiniteSafetyMonitor]:
    """Convenience: attach both streaming monitors to a fresh system."""
    return (LedgerMonitor(system), DefiniteSafetyMonitor(system))
