"""Cross-layer invariants checked over whole HopeSystem runs.

The machine checks its own set algebra (:meth:`Machine.check_invariants`);
these checks relate the machine to the runtime's observables:

* **ledger monotonicity** — once an output is committed it is never
  withdrawn (the output-commit guarantee);
* **Theorem 5.2 at system level** — no definite interval ever appears in
  a rollback's discard set;
* **waste accounting** — wasted time implies at least one rollback;
* **quiescent resolution** — at quiescence, a pending AID may not retain
  dependents (someone would wait forever on it).
"""

from __future__ import annotations

from ..core import FinalizeEvent, MachineInvariantError, RollbackEvent
from ..runtime import HopeSystem


class InvariantViolation(AssertionError):
    """A system-level invariant failed."""


class LedgerMonitor:
    """Watches committed outputs throughout a run; they must only grow.

    Attach *before* running; call :meth:`assert_monotone` during or after.

    The streaming check is event-targeted, not a full sweep: only a
    :class:`FinalizeEvent` or :class:`RollbackEvent` can change whether
    an *existing* output record is committed, and both name the process
    whose intervals changed, so each event rechecks one ledger from its
    previously verified committed prefix (plus an O(1) boundary sentinel)
    instead of rebuilding every ledger — the naive sweep made monitored
    runs O(processes x history) *per machine event*.  ``scans`` counts
    output records examined; regression tests assert it stays linear in
    the event count.
    """

    def __init__(self, system: HopeSystem) -> None:
        self.system = system
        self._snapshots: dict[str, list] = {}
        #: Output records examined by the streaming checks (the
        #: monitor-overhead observable; see tests/verify).
        self.scans = 0
        system.machine.subscribe(self._on_event)

    def _on_event(self, event) -> None:
        if isinstance(event, RollbackEvent):
            # The only event that removes records (the uncommitted
            # suffix) — verify the whole committed prefix survived.
            self._check(event.pid, full=True)
        elif isinstance(event, FinalizeEvent):
            # Extends the committed prefix of exactly this process.
            self._check(event.pid, full=False)
        # No other machine event changes committedness of existing
        # records; plain emits only append, which cannot shrink a ledger.

    def _check(self, name: str, full: bool) -> None:
        proc = self.system.procs.get(name)
        if proc is None:
            return  # pseudo-pids (e.g. the failure detector) own no ledger
        snapshot = self._snapshots.setdefault(name, [])
        outputs = proc.outputs
        k = len(snapshot)
        if full:
            committed = [r.value for r in outputs if r.committed]
            self.scans += len(outputs)
            if committed[:k] != snapshot:
                raise InvariantViolation(
                    f"committed ledger of {name!r} shrank or mutated: "
                    f"{snapshot!r} -> {committed!r}"
                )
            snapshot.extend(committed[k:])
            return
        # Delta path: the boundary sentinel catches a vanished or mutated
        # prefix tail in O(1); then absorb newly committed records.
        if k > 0:
            self.scans += 1
            if (
                len(outputs) < k
                or not outputs[k - 1].committed
                or outputs[k - 1].value != snapshot[-1]
            ):
                raise InvariantViolation(
                    f"committed ledger of {name!r} shrank or mutated: "
                    f"{snapshot!r} -> "
                    f"{[r.value for r in outputs if r.committed]!r}"
                )
        while k < len(outputs) and outputs[k].committed:
            self.scans += 1
            snapshot.append(outputs[k].value)
            k += 1

    def sample(self) -> None:
        """Full sweep over every ledger (the post-run / on-demand check)."""
        for name in self.system.procs:
            self._check(name, full=True)

    def assert_monotone(self) -> None:
        self.sample()


class DefiniteSafetyMonitor:
    """Theorem 5.2, observed: rollbacks never discard definite intervals."""

    def __init__(self, system: HopeSystem) -> None:
        self.rollbacks_seen = 0

        def watch(event) -> None:
            if isinstance(event, RollbackEvent):
                self.rollbacks_seen += 1
                for interval in event.discarded:
                    if interval.definite:
                        raise InvariantViolation(
                            f"rollback discarded definite interval {interval.label}"
                        )

        system.machine.subscribe(watch)


def check_quiescent(system: HopeSystem, allow_pending_orphans: bool = True) -> None:
    """Full post-run check: machine algebra plus system-level facts."""
    try:
        system.machine.check_invariants()
    except MachineInvariantError as exc:
        raise InvariantViolation(f"machine invariant broken: {exc}") from exc
    stats = system.stats()
    if stats["wasted_time"] > 0 and stats["rollbacks"] == 0:
        raise InvariantViolation(
            f"wasted time {stats['wasted_time']} with zero rollbacks"
        )
    for aid in system.machine.aids.values():
        if aid.pending and aid.dom:
            raise InvariantViolation(
                f"quiescent with pending AID {aid.key} that still has "
                f"{len(aid.dom)} dependent interval(s) — they wait forever"
            )
        if not allow_pending_orphans and aid.pending and aid.speculative_affirmer is None:
            raise InvariantViolation(f"pending orphan AID {aid.key}")


def attach_monitors(system: HopeSystem) -> tuple[LedgerMonitor, DefiniteSafetyMonitor]:
    """Convenience: attach both streaming monitors to a fresh system."""
    return (LedgerMonitor(system), DefiniteSafetyMonitor(system))
