"""Verification harness: invariants, scenarios, randomized model checking.

The paper proves its theorems over the abstract machine; this package
checks the same properties hold *system-wide* over randomized executions
of real HOPE programs, plus the observable-equivalence oracle the paper
implies but never states: what an optimistic program commits equals what
its pessimistic counterpart would print.
"""

from .explorer import ExplorationReport, RunOutcome, explore, run_scenario
from .invariants import (
    DefiniteSafetyMonitor,
    InvariantViolation,
    LedgerMonitor,
    attach_monitors,
    check_quiescent,
)
from .programs import (
    Scenario,
    chain_scenario,
    diamond_scenario,
    free_of_scenario,
    random_scenario,
    two_aid_scenario,
)

__all__ = [
    "explore",
    "run_scenario",
    "ExplorationReport",
    "RunOutcome",
    "Scenario",
    "chain_scenario",
    "two_aid_scenario",
    "diamond_scenario",
    "free_of_scenario",
    "random_scenario",
    "InvariantViolation",
    "LedgerMonitor",
    "DefiniteSafetyMonitor",
    "attach_monitors",
    "check_quiescent",
]
