"""Verification harness: invariants, scenarios, randomized + exhaustive model checking.

The paper proves its theorems over the abstract machine; this package
checks the same properties hold *system-wide* over real HOPE programs,
plus the observable-equivalence oracle the paper implies but never
states: what an optimistic program commits equals what its pessimistic
counterpart would print.  Two drivers share the scenario/oracle stack:

* :mod:`repro.verify.explorer` — randomized schedule sampling (latency
  draws plus seeded tie shuffles);
* :mod:`repro.verify.dpor` — exhaustive enumeration of inequivalent
  interleavings via dynamic partial-order reduction with sleep sets,
  driven through the simulator's controller seam
  (:mod:`repro.verify.schedule`).
"""

from .dpor import (
    DporExplorer,
    DporReport,
    DporRun,
    run_dpor_reproducer,
    standard_scenarios,
)
from .explorer import ExplorationReport, RunOutcome, explore, run_scenario
from .invariants import (
    DefiniteSafetyMonitor,
    InvariantViolation,
    LedgerMonitor,
    attach_monitors,
    check_quiescent,
)
from .programs import (
    FACTORIES,
    Scenario,
    chain_scenario,
    diamond_scenario,
    free_of_scenario,
    orphan_scenario,
    random_scenario,
    scenario_from_spec,
    two_aid_scenario,
)
from .schedule import (
    DirectedFaultyNetwork,
    RecordingController,
    ReplayDivergence,
    ScheduleController,
    StepRecord,
)

__all__ = [
    "explore",
    "run_scenario",
    "ExplorationReport",
    "RunOutcome",
    "DporExplorer",
    "DporReport",
    "DporRun",
    "run_dpor_reproducer",
    "standard_scenarios",
    "Scenario",
    "chain_scenario",
    "two_aid_scenario",
    "diamond_scenario",
    "free_of_scenario",
    "orphan_scenario",
    "random_scenario",
    "scenario_from_spec",
    "FACTORIES",
    "InvariantViolation",
    "LedgerMonitor",
    "DefiniteSafetyMonitor",
    "attach_monitors",
    "check_quiescent",
    "ScheduleController",
    "RecordingController",
    "StepRecord",
    "ReplayDivergence",
    "DirectedFaultyNetwork",
]
