"""Directed scheduling: the controller seam the DPOR explorer drives.

The simulator's ``controller`` hook (see
:class:`repro.sim.kernel.Simulator`) generalizes ``shuffle_ties`` from
"seeded permutation" to *externally directed choice*: at every pop the
batch of live events sharing the earliest virtual time is handed to the
controller, which picks the one that fires.  This module provides

* :class:`ScheduleController` — the protocol (a trivial leftmost-choice
  base class);
* :class:`RecordingController` — replays a prescribed choice prefix,
  falls back to canonical defaults beyond it, and records every step
  (batch composition, chosen index, and the *footprint* of resources the
  chosen event's execution touched, extracted from the trace stream) —
  everything the DFS driver in :mod:`repro.verify.dpor` needs to compute
  happens-before backtracking points and sleep sets;
* :class:`DirectedFaultyNetwork` — a transport that turns a chaos-harness
  :class:`~repro.sim.faults.FaultPlan`'s probabilistic drop/reorder draws
  into explicit binary choice points on the same controller, so fault
  fates are explored exhaustively instead of sampled.

Event identity across executions: a batch member is keyed by
``(label, seq)``.  Sequence numbers are a deterministic function of the
executed prefix, so two executions sharing a choice prefix assign
identical keys to the events enabled at the divergence point — which is
what lets backtrack sets and sleep sets refer to events of sibling
executions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim import Tracer
from ..sim.channel import Mailbox, Message, Network
from ..sim.faults import FaultPlan, FaultStats
from ..sim.kernel import ScheduledEvent, SimulationError, Simulator
from ..sim.latency import LatencyModel


class ScheduleController:
    """Protocol for the simulator's directed-choice seam.

    ``choose(time, events)`` is called at every pop with the canonical
    ``(time, priority, seq)``-ordered batch of live events at the
    earliest virtual time and returns the index of the event to fire.
    Singleton batches are consulted too (the choice is forced, but
    exploration drivers still need the step in their records).

    ``choose_fate(kind, link, options)`` is the same seam for
    non-scheduler choice points (fault fates); the base network never
    calls it.
    """

    def choose(self, time: float, events: Sequence[ScheduledEvent]) -> int:
        return 0

    def choose_fate(self, kind: str, link: str, options: int = 2) -> int:
        return 0


class ReplayDivergence(SimulationError):
    """A prescribed choice prefix stopped matching the execution.

    Replaying a choice sequence over a deterministic program must
    reproduce the same batches; this firing means either the program is
    nondeterministic (a genuine bug) or the prescription came from a
    different scenario/seed.
    """


class StepRecord:
    """One executed choice point: what was enabled and what was picked.

    ``kind`` is ``"tie"`` for simulator batches, ``"fate"`` for fault
    decisions.  ``keys`` are the stable identities of the alternatives
    (``(label, seq)`` tuples for ties; a synthetic string for fates).
    ``footprint`` is the set of resources (process names and AID keys)
    the chosen event's execution touched — filled in when the *next*
    choice point closes the step; fate steps get a static footprint.
    """

    __slots__ = ("index", "kind", "time", "keys", "chosen", "footprint")

    def __init__(self, index, kind, time, keys, chosen):
        self.index = index
        self.kind = kind
        self.time = time
        self.keys = keys
        self.chosen = chosen
        self.footprint: frozenset = frozenset()

    @property
    def options(self) -> int:
        return len(self.keys)

    @property
    def chosen_key(self):
        return self.keys[self.chosen]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Step {self.index} {self.kind} t={self.time:g} "
            f"chose {self.chosen}/{len(self.keys)} {self.keys[self.chosen]!r}>"
        )


def event_key(event: ScheduledEvent) -> tuple:
    """Stable identity of a scheduled event within a choice-prefix class."""
    return (event.label, event.seq)


def label_target(label: str) -> Optional[str]:
    """The process a sim event's label names (best-effort footprint floor).

    Labels follow ``kind:target`` (``start:worker``, ``compute:judge-x``,
    ``timeout:p``) with deliveries as ``deliver:src->dst`` — delivery
    executes against the *destination's* mailbox.
    """
    if ":" not in label:
        return None
    target = label.split(":", 1)[1]
    if "->" in target:
        target = target.split("->", 1)[1]
    return target or None


class RecordingController(ScheduleController):
    """Replays a choice prefix, extends it with defaults, records steps.

    Parameters
    ----------
    prescribed:
        Choice indices for the first ``len(prescribed)`` steps (ties and
        fates in one unified sequence).  Beyond the prefix the controller
        picks the canonical default: the lowest index whose key is not in
        the live sleep set.
    tracer:
        The system's :class:`~repro.sim.Tracer`; the slice of records
        appended between two consecutive tie steps is the earlier step's
        footprint (each record contributes its process name and, when
        present, its AID key).
    initial_sleep:
        Sleep set in force at the divergence point (keys of sibling
        choices already fully explored).  From the divergence step on it
        is filtered per Godefroid's rule: a sleeping event is woken (and
        must be re-explored) as soon as a dependent event executes.
    known_footprints:
        Footprints observed in earlier executions, keyed by event key —
        the independence oracle for sleep filtering.  A sleeping event
        with no known footprint is conservatively treated as dependent
        (woken immediately), costing pruning but never soundness.
    """

    def __init__(
        self,
        prescribed: Sequence[int] = (),
        tracer: Optional[Tracer] = None,
        initial_sleep: frozenset = frozenset(),
        known_footprints: Optional[dict] = None,
    ) -> None:
        self.prescribed = list(prescribed)
        self.tracer = tracer
        self.records: list[StepRecord] = []
        self.known = known_footprints if known_footprints is not None else {}
        self._sleep = set(initial_sleep)
        self.sleep_blocked = False
        self._mark = 0
        self._open_tie: Optional[StepRecord] = None

    # ------------------------------------------------------------------
    # the seam
    # ------------------------------------------------------------------
    def choose(self, time: float, events: Sequence[ScheduledEvent]) -> int:
        self._close_open_tie()
        step = len(self.records)
        keys = tuple(event_key(e) for e in events)
        if step < len(self.prescribed):
            chosen = self.prescribed[step]
            if not 0 <= chosen < len(events):
                raise ReplayDivergence(
                    f"prescribed choice {chosen} at step {step} does not fit "
                    f"the batch of {len(events)} events at t={time:.6g}"
                )
        else:
            chosen = self._default_choice(keys)
        record = StepRecord(step, "tie", time, keys, chosen)
        self.records.append(record)
        self._open_tie = record
        if self.tracer is not None:
            self._mark = len(self.tracer.records)
        return chosen

    def choose_fate(self, kind: str, link: str, options: int = 2) -> int:
        step = len(self.records)
        # Fate identity: the n-th fate decision of this kind on this link.
        count = sum(
            1
            for r in self.records
            if r.kind == "fate" and r.keys[0][0].startswith(f"{kind}:{link}#")
        )
        key_base = f"{kind}:{link}#{count}"
        keys = tuple((f"{key_base}", option) for option in range(options))
        if step < len(self.prescribed):
            chosen = self.prescribed[step]
            if not 0 <= chosen < options:
                raise ReplayDivergence(
                    f"prescribed fate {chosen} at step {step} does not fit "
                    f"{options} options for {key_base}"
                )
        else:
            chosen = 0
        record = StepRecord(step, "fate", -1.0, keys, chosen)
        # A fate decides one message's delivery: its footprint is the link
        # target (static — fate steps always branch fully in the driver).
        target = label_target(f"fate:{link}")
        record.footprint = frozenset((target,)) if target else frozenset()
        self.records.append(record)
        return chosen

    def finish(self) -> None:
        """Close the final step's footprint after the run completes."""
        self._close_open_tie()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _default_choice(self, keys: tuple) -> int:
        if not self._sleep:
            return 0
        for index, key in enumerate(keys):
            if key not in self._sleep:
                return index
        # Every enabled event is asleep: this continuation is provably
        # redundant.  Finishing it anyway (leftmost choice) keeps the
        # driver simple; the run is flagged so reports can count it.
        self.sleep_blocked = True
        return 0

    def _close_open_tie(self) -> None:
        record = self._open_tie
        if record is None:
            return
        self._open_tie = None
        footprint = set()
        label, _seq = record.chosen_key
        target = label_target(label)
        if target is not None:
            footprint.add(target)
        if self.tracer is not None:
            for rec in self.tracer.records[self._mark:]:
                footprint.add(rec.process)
                aid = rec.detail.get("aid")
                if aid:
                    footprint.add(aid)
        record.footprint = frozenset(footprint)
        key = record.chosen_key
        previous = self.known.get(key)
        self.known[key] = (
            record.footprint if previous is None else previous | record.footprint
        )
        self._filter_sleep(record.footprint)

    def _filter_sleep(self, footprint: frozenset) -> None:
        if not self._sleep:
            return
        # Wake (drop from the sleep set) everything dependent on what just
        # executed; unknown footprints count as dependent (conservative).
        awake = [
            key
            for key in self._sleep
            if self.known.get(key) is None or not self.known[key].isdisjoint(footprint)
        ]
        for key in awake:
            self._sleep.discard(key)


class DirectedFaultyNetwork(Network):
    """A transport whose fault fates are controller choice points.

    Takes the drop/reorder parameters of a chaos-harness
    :class:`~repro.sim.faults.FaultPlan` as *possibility* markers: on a
    link with ``drop > 0`` every delivery asks the controller
    "deliver or drop?" (index 1 = drop), and with ``reorder > 0``
    "on time or late?" (index 1 = adds the full ``reorder_window``).
    Probabilities themselves are ignored — exploration enumerates fates,
    it does not sample them.  ``max_drops`` bounds the number of dropped
    messages per execution so the always-drop branch of a retrying
    (reliable) sender cannot produce an infinite tree.

    Duplication and jitter draw from continuous spaces that have no
    finite choice-point analog; plans using them are rejected.  Timed
    partitions are deterministic and applied as-is.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel],
        plan: FaultPlan,
        controller: ScheduleController,
        max_drops: int = 1,
    ) -> None:
        super().__init__(sim, latency)
        for faults in [plan.default, *plan.links.values()]:
            if faults.duplicate > 0.0 or faults.jitter > 0.0:
                raise SimulationError(
                    "DirectedFaultyNetwork explores drop/reorder fates only; "
                    "duplicate/jitter have no finite choice-point analog"
                )
        self.plan = plan
        self.controller = controller
        self.max_drops = max_drops
        self.fault_stats = FaultStats()

    def _schedule_delivery(
        self, box: Mailbox, message: Message, delay: float
    ) -> Optional[ScheduledEvent]:
        plan = self.plan
        stats = self.fault_stats
        if plan.partitioned(message.src, message.dst, self.sim.now):
            stats.partition_dropped += 1
            return None
        faults = plan.for_link(message.src, message.dst)
        link = f"{message.src}->{message.dst}"
        if faults.drop > 0.0 and stats.dropped < self.max_drops:
            if self.controller.choose_fate("drop", link) == 1:
                stats.dropped += 1
                return None
        if faults.reorder > 0.0:
            if self.controller.choose_fate("reorder", link) == 1:
                delay += faults.reorder_window
                stats.reordered += 1
        return super()._schedule_delivery(box, message, delay)

    def stats_entries(self) -> dict:
        return {"faults": self.fault_stats.as_dict()}

    def observe_gauges(self, spec) -> None:
        stats = self.fault_stats
        spec.net_dropped.set(stats.dropped)
        spec.net_reordered.set(stats.reordered)
        spec.net_partition_dropped.set(stats.partition_dropped)

    def control_fate(self, src: str, dst: str) -> tuple[bool, float]:
        """Ack-style datagrams are never fate choice points: the reliable
        layer's retry timers already bound their effect, and branching on
        every ack would square the tree for no new interleavings of the
        *message* order the explorer cares about."""
        if self.plan.partitioned(src, dst, self.sim.now):
            self.fault_stats.acks_dropped += 1
            return (True, 0.0)
        return (False, self.latency.sample(src, dst))

    def heartbeat_lost(self, src: str) -> bool:
        return self.plan.isolated(src, self.sim.now)
