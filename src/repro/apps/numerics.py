"""Optimistic numerical computation (§7 future work, ref [7]).

The paper's future-work list includes applying optimism to numerical
computation.  The classic pattern: an iterative solver wants an
aggressive parameter (fast convergence when it works, divergence when it
doesn't), and checking stability requires an expensive remote validation.
Pessimistically the solver validates every block of iterations before
continuing; optimistically it *guesses* the aggressive block was stable
and keeps iterating while a validator checks the residuals in parallel —
a denial rolls the solver back to the block boundary, where it redoes the
block with a safe parameter.

Concretely: weighted-Jacobi iteration for ``A x = b``.  The aggressive
relaxation ``omega_fast`` diverges on stiff systems; ``omega_safe``
always converges (for the diagonally dominant systems we generate).  The
validator affirms a block iff its residual shrank.

Everything is deterministic: matrices come from a seeded generator, and
the solver's arithmetic is pure, so replay-based rollback reproduces the
block boundary exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..runtime import HopeSystem
from ..sim import ConstantLatency, LatencyModel, Tracer


@dataclass(frozen=True)
class JacobiProblem:
    """One linear system plus iteration parameters."""

    a: tuple                   # row-major matrix, as nested tuples
    b: tuple
    omega_fast: float = 1.4    # aggressive over-relaxation
    omega_safe: float = 0.7    # conservative under-relaxation
    block_size: int = 4        # iterations per validation block
    max_blocks: int = 60
    tolerance: float = 1e-8
    iteration_cost: float = 1.0     # virtual time per iteration
    validate_cost: float = 3.0      # remote residual check

    @property
    def matrix(self) -> np.ndarray:
        return np.array(self.a, dtype=float)

    @property
    def rhs(self) -> np.ndarray:
        return np.array(self.b, dtype=float)

    def reference_solution(self) -> np.ndarray:
        return np.linalg.solve(self.matrix, self.rhs)


def make_problem(
    n: int = 6,
    seed: int = 0,
    dominance: float = 1.5,
    **overrides,
) -> JacobiProblem:
    """A random diagonally dominant system (weighted Jacobi converges for
    omega in (0, 1]; large omega may diverge as dominance shrinks)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    row_sums = np.abs(a).sum(axis=1)
    np.fill_diagonal(a, dominance * row_sums)
    b = rng.uniform(-1.0, 1.0, size=n)
    return JacobiProblem(
        a=tuple(map(tuple, a)), b=tuple(b), **overrides
    )


def _jacobi_block(
    a: np.ndarray, b: np.ndarray, x: np.ndarray, omega: float, steps: int
) -> np.ndarray:
    d = np.diag(a)
    r = a - np.diagflat(d)
    for _ in range(steps):
        x = (1 - omega) * x + omega * (b - r @ x) / d
    return x


def _residual(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> float:
    return float(np.linalg.norm(a @ x - b))


def solver(p, problem: JacobiProblem):
    """Iterate in blocks; guess each aggressive block is stable."""
    a = problem.matrix
    b = problem.rhs
    x = np.zeros(len(b))
    residual = _residual(a, b, x)
    blocks = 0
    fast_blocks = 0
    safe_blocks = 0
    while residual > problem.tolerance and blocks < problem.max_blocks:
        blocks += 1
        stable = yield p.aid_init(f"block-{blocks}-stable")
        yield p.send(
            "validator",
            ("check", stable, tuple(x), residual),
        )
        if (yield p.guess(stable)):
            omega = problem.omega_fast         # optimistic: aggressive step
            fast_blocks += 1
        else:
            omega = problem.omega_safe         # after a denial: safe step
            safe_blocks += 1
        yield p.compute(problem.iteration_cost * problem.block_size)
        x = _jacobi_block(a, b, x, omega, problem.block_size)
        residual = _residual(a, b, x)
        yield p.emit(("block", blocks, omega, residual))
    yield p.send("validator", ("done",))
    return {
        "x": tuple(x),
        "residual": residual,
        "blocks": blocks,
        "fast_blocks": fast_blocks,
        "safe_blocks": safe_blocks,
    }


def validator(p, problem: JacobiProblem):
    """Re-runs each aggressive block remotely and checks the residual
    shrank; affirms stability or denies it."""
    a = problem.matrix
    b = problem.rhs
    while True:
        msg = yield p.recv()
        if msg.payload[0] == "done":
            return None
        _tag, stable, x_tuple, residual_before = msg.payload
        yield p.compute(problem.validate_cost)
        x = np.array(x_tuple)
        x_after = _jacobi_block(a, b, x, problem.omega_fast, problem.block_size)
        residual_after = _residual(a, b, x_after)
        if residual_after < residual_before or residual_after < problem.tolerance:
            yield p.affirm(stable)
        else:
            yield p.deny(stable)


def pessimistic_solver(p, problem: JacobiProblem):
    """Validate-before-continue: the same decisions, serialized."""
    from ..runtime import call

    a = problem.matrix
    b = problem.rhs
    x = np.zeros(len(b))
    residual = _residual(a, b, x)
    blocks = 0
    corr = 0
    while residual > problem.tolerance and blocks < problem.max_blocks:
        blocks += 1
        ok = yield from call(p, "validator_rpc", (tuple(x), residual), corr)
        corr += 1
        omega = problem.omega_fast if ok else problem.omega_safe
        yield p.compute(problem.iteration_cost * problem.block_size)
        x = _jacobi_block(a, b, x, omega, problem.block_size)
        residual = _residual(a, b, x)
        yield p.emit(("block", blocks, omega, residual))
    return {"x": tuple(x), "residual": residual, "blocks": blocks}


def rpc_validator(p, problem: JacobiProblem):
    a = problem.matrix
    b = problem.rhs
    while True:
        msg = yield p.recv()
        x_tuple, residual_before = msg.payload.body
        yield p.compute(problem.validate_cost)
        x_after = _jacobi_block(
            a, b, np.array(x_tuple), problem.omega_fast, problem.block_size
        )
        residual_after = _residual(a, b, x_after)
        ok = residual_after < residual_before or residual_after < problem.tolerance
        yield p.reply(msg, ok)


@dataclass
class JacobiResult:
    makespan: float
    x: tuple = ()
    residual: float = float("inf")
    blocks: int = 0
    rollbacks: int = 0
    stats: dict = field(default_factory=dict)

    def error_vs(self, reference: np.ndarray) -> float:
        return float(np.linalg.norm(np.array(self.x) - reference))


def run_optimistic_jacobi(
    problem: JacobiProblem,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> JacobiResult:
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(5.0),
        trace=trace,
    )
    system.spawn("validator", validator, problem)
    system.spawn("solver", solver, problem)
    makespan = system.run(max_events=5_000_000)
    outcome = system.result_of("solver")
    stats = system.stats()
    return JacobiResult(
        makespan=makespan,
        x=outcome["x"],
        residual=outcome["residual"],
        blocks=outcome["blocks"],
        rollbacks=stats["rollbacks"],
        stats=stats,
    )


def run_pessimistic_jacobi(
    problem: JacobiProblem,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
) -> JacobiResult:
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(5.0),
    )
    system.spawn("validator_rpc", rpc_validator, problem)
    system.spawn("solver", pessimistic_solver, problem)
    makespan = system.run(max_events=5_000_000)
    outcome = system.result_of("solver")
    stats = system.stats()
    return JacobiResult(
        makespan=makespan,
        x=outcome["x"],
        residual=outcome["residual"],
        blocks=outcome["blocks"],
        rollbacks=stats["rollbacks"],
        stats=stats,
    )
