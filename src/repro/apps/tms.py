"""Truth maintenance / assumption-based search in HOPE (§7 future work, [12]).

A Doyle-style truth-maintenance system keeps a network of beliefs
justified by *assumptions* and retracts every consequence of an
assumption that turns out false.  That is precisely HOPE's contract, so
this module demonstrates the §7 claim by building a distributed
assumption-based search (a small CNF solver) from HOPE primitives:

* the **solver** walks the variables; each decision is an optimistic
  assumption ``assume-v`` made with ``guess`` — True first, and False
  after the assumption is denied (the guess's False return *is* the
  backtrack);
* every assignment is streamed to a **checker** process, which evaluates
  clauses concurrently; the assignment messages' tags make the checker's
  belief state a causal descendant of the solver's assumptions;
* on a violated clause the checker **denies** the deepest True decision
  in its trail — chronological backtracking implemented entirely by
  HOPE's rollback: the solver rewinds to that guess, takes the False
  branch, and re-derives everything after it, while the checker's own
  trail rewinds automatically because its state depended on the same
  assumption;
* a completed consistent assignment is confirmed by affirming every
  decision assumption (oldest first), committing the solution.

The search order is exactly True-first depth-first search, so the found
model must equal :func:`reference_solution` — which the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..runtime import HopeSystem
from ..sim import ConstantLatency, LatencyModel, Tracer

#: A literal is (var_name, polarity); a clause is a tuple of literals;
#: a formula is a tuple of clauses.
Literal = tuple
Clause = tuple
Formula = tuple


@dataclass(frozen=True)
class SearchProblem:
    """A CNF formula plus the decision order of its variables."""

    variables: tuple
    clauses: Formula
    decision_compute: float = 0.5     # solver think time per decision
    check_compute: float = 0.2        # checker time per assignment

    def validate(self) -> None:
        known = set(self.variables)
        for clause in self.clauses:
            for var, _polarity in clause:
                if var not in known:
                    raise ValueError(f"clause mentions unknown variable {var!r}")


def clause_status(clause: Clause, assignment: dict) -> str:
    """'sat', 'violated', or 'open' under a partial assignment."""
    unassigned = False
    for var, polarity in clause:
        if var not in assignment:
            unassigned = True
        elif assignment[var] == polarity:
            return "sat"
    return "open" if unassigned else "violated"


def is_model(clauses: Formula, assignment: dict) -> bool:
    return all(clause_status(c, assignment) == "sat" for c in clauses)


def reference_solution(problem: SearchProblem) -> Optional[dict]:
    """True-first DFS with chronological backtracking — the oracle for the
    exact model the HOPE solver must find."""
    variables = problem.variables

    def extend(assignment: dict, depth: int) -> Optional[dict]:
        status = [clause_status(c, assignment) for c in problem.clauses]
        if "violated" in status:
            return None
        if depth == len(variables):
            return dict(assignment)
        for value in (True, False):
            assignment[variables[depth]] = value
            found = extend(assignment, depth + 1)
            if found is not None:
                return found
            del assignment[variables[depth]]
        return None

    return extend({}, 0)


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------
def solver(p, problem: SearchProblem):
    """Decide variables True-first; stream decisions; await the verdict."""
    assignment = {}
    serial = count()
    for var in problem.variables:
        yield p.compute(problem.decision_compute)
        aid = yield p.aid_init(f"assume-{var}-{next(serial)}")
        value = yield p.guess(aid)          # True now; False after a denial
        assignment[var] = value
        yield p.send("checker", ("assign", var, value, aid.key))
    yield p.send("checker", ("complete",))
    verdict = yield p.recv()
    if verdict.payload[0] == "sat":
        yield p.emit(("model", tuple(sorted(assignment.items()))))
        return dict(assignment)
    yield p.emit(("unsat",))
    return None


def checker(p, problem: SearchProblem):
    """Evaluate clauses as assignments arrive; deny on violation."""
    assignment = {}
    trail = []                     # [(var, value, aid_key)] in arrival order
    while True:
        msg = yield p.recv()
        if msg.payload[0] == "complete":
            if not is_model(problem.clauses, assignment):
                raise AssertionError(
                    "complete assignment reached the checker with a violated "
                    "clause — a conflict was missed"
                )
            for var, value, aid_key in trail:
                if value:                   # True decisions are assumptions
                    yield p.affirm(aid_key)
            yield p.send("solver", ("sat",))
            return assignment
        _tag, var, value, aid_key = msg.payload
        yield p.compute(problem.check_compute)
        assignment[var] = value
        trail.append((var, value, aid_key))
        for clause in problem.clauses:
            if clause_status(clause, assignment) == "violated":
                # Chronological backtracking: flip the deepest decision
                # that is still an assumption (guessed True).
                for t_var, t_value, t_aid in reversed(trail):
                    if t_value:
                        yield p.deny(t_aid)
                        raise AssertionError(
                            "unreachable: the denying incarnation rolls back"
                        )
                # No assumption left to retract: the formula is UNSAT.
                yield p.send("solver", ("unsat",))
                return None


@dataclass
class SearchResult:
    makespan: float
    model: Optional[dict] = None
    backtracks: int = 0
    stats: dict = field(default_factory=dict)


def run_search(
    problem: SearchProblem,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> SearchResult:
    """Solve ``problem`` with the HOPE solver/checker pair."""
    problem.validate()
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(1.0),
        trace=trace,
    )
    system.spawn("solver", solver, problem)
    system.spawn("checker", checker, problem)
    makespan = system.run(max_events=5_000_000)
    stats = system.stats()
    return SearchResult(
        makespan=makespan,
        model=system.result_of("solver"),
        backtracks=stats["rollbacks"],
        stats=stats,
    )
