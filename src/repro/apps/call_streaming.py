"""Call Streaming — the paper's worked example (Figures 1 and 2).

A Worker produces reports.  For each report it must, against a remote
print server:

* **S1** — print the report total (an RPC returning the current line);
* **S2** — if the page is now full, start a new page;
* **S3** — print the summary.

Figure 1 (pessimistic): S1, S2, S3 are synchronous RPCs; the Worker idles
for a round trip per call.  Figure 2 (optimistic): the Worker guesses the
page is **not** full (AID ``PartPage``), skips S2, and streams S3
immediately, while a **WorryWart** process runs S1 concurrently and
affirms or denies ``PartPage``.  A second AID, ``Order``, guards against
S3's message overtaking S1 at the server: the WorryWart asserts
``free_of(Order)``, which denies ``Order`` (rolling everything back) iff
the reply that carried S1's line number was contaminated by S3's
speculative execution.

The server's committed output (the sequence of print/newpage operations)
must be identical under both versions — that equivalence is asserted by
the integration tests and is the system-level correctness statement of
the reproduction.

Knobs that shape the experiments (see DESIGN.md §4):

* ``summary_prep`` — worker think time before streaming S3.  S1 leaves
  the (idle) WorryWart ``wart_latency`` after the report is handed over;
  S3 leaves the worker after ``summary_prep``.  Both travel the same
  distance to the server, so with an idle wart the Order violation occurs
  deterministically iff ``summary_prep < wart_latency``.  A *busy* wart
  (more in-flight reports than warts) delays S1 further and can lose the
  race even with a large prep — load-dependent assumption failure, which
  the CASCADE/SWEEP benchmarks exploit.
* ``n_warts`` — parallel WorryWarts (round-robin).  One wart serializes
  verification at one S1 round-trip per report; more warts pipeline it,
  which is what pushes the latency gain toward the paper's "up to 80%".

Multi-report runs preserve inter-report server order structurally
(``local_compute > 0`` plus constant per-link latency keeps S3(i) ahead
of S1(i+1)); the intra-report S1/S3 race is the one the paper's Order
AID guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem, call
from ..runtime.messages import RpcReply
from ..sim import ConstantLatency, LinkLatency, Span, Tracer


@dataclass(frozen=True)
class CallStreamConfig:
    """Workload and network parameters for the Figure 1/2 scenario.

    ``report_lines[i]`` is how many lines report *i*'s total-print adds;
    S2 fires (a new page starts) when the line counter exceeds
    ``page_size`` after S1.  All latencies are one-way virtual time.
    """

    page_size: int = 60
    report_lines: tuple = (10,)
    summary_lines: int = 1
    latency: float = 10.0                 # one-way latency to the server
    wart_latency: float = 1.0             # worker -> worrywart (near-local)
    server_service_time: float = 0.5
    local_compute: float = 1.0            # worker app work per report
    summary_prep: float = 2.0             # think time before streaming S3
    summary_prep_per_report: Optional[tuple] = None
    rollback_overhead: float = 0.0
    n_warts: int = 1

    @property
    def n_reports(self) -> int:
        return len(self.report_lines)

    def prep_for(self, index: int) -> float:
        if self.summary_prep_per_report is not None:
            return self.summary_prep_per_report[index]
        return self.summary_prep


@dataclass
class CallStreamResult:
    """Outcome of one run: timing, the server's committed ledger, stats."""

    makespan: float
    server_output: list = field(default_factory=list)
    worker_busy: float = 0.0
    worker_blocked: float = 0.0
    wasted_time: float = 0.0
    rollbacks: int = 0
    messages: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def newpage_count(self) -> int:
        return sum(1 for op in self.server_output if op[0] == "newpage")


# ---------------------------------------------------------------------------
# the shared print server
# ---------------------------------------------------------------------------
def print_server(p, page_size: int, service_time: float):
    """A page-oriented print service.

    Operations (all RPCs): ``("print", label, nlines)`` appends ``nlines``
    and replies with the line counter after printing; ``("newpage",)``
    resets the counter.  Every committed operation is emitted to the
    output ledger, which is the observable the equivalence tests compare.
    """
    line = 0
    while True:
        msg = yield p.recv()
        request = msg.payload
        op = request.body
        yield p.compute(service_time)
        if op[0] == "print":
            _, label, nlines = op
            line += nlines
            yield p.emit(("print", label, line))
            yield p.reply(msg, line)
        elif op[0] == "newpage":
            line = 0
            yield p.emit(("newpage",))
            yield p.reply(msg, 0)
        else:
            raise ValueError(f"unknown print-server op {op!r}")


# ---------------------------------------------------------------------------
# Figure 1: the pessimistic worker
# ---------------------------------------------------------------------------
def pessimistic_worker(p, config: CallStreamConfig):
    """Synchronous RPCs, exactly as Figure 1: wait for every answer."""
    corr = 0
    for index, nlines in enumerate(config.report_lines):
        yield p.compute(config.local_compute)
        # S1: print the total, learn the line number.
        line = yield from call(p, "server", ("print", f"total-{index}", nlines), corr)
        corr += 1
        # S2: conditional new page.
        if line > config.page_size:
            yield from call(p, "server", ("newpage",), corr)
            corr += 1
        # S3: print the summary (after the same think time as Figure 2).
        yield p.compute(config.prep_for(index))
        yield from call(
            p, "server", ("print", f"summary-{index}", config.summary_lines), corr
        )
        corr += 1


# ---------------------------------------------------------------------------
# Figure 2: the optimistic worker + WorryWart(s)
# ---------------------------------------------------------------------------
def optimistic_worker(p, config: CallStreamConfig):
    """The Figure 2 transformation: guess PartPage, stream S3, let the
    WorryWart verify in parallel."""
    corr = 0
    for index, nlines in enumerate(config.report_lines):
        yield p.compute(config.local_compute)
        part_page = yield p.aid_init(f"PartPage-{index}")
        order = yield p.aid_init(f"Order-{index}")
        wart = f"worrywart-{index % config.n_warts}"
        yield p.send(wart, (part_page, order, index, nlines))
        if (yield p.guess(part_page)):
            pass                                   # S2 elided optimistically
        else:
            yield from call(p, "server", ("newpage",), corr)
            corr += 1
        yield p.guess(order)                       # bare guess, as in Figure 2
        yield p.compute(config.prep_for(index))
        yield p.send(
            "server_oneway", ("print", f"summary-{index}", config.summary_lines)
        )


def worrywart(p, config: CallStreamConfig, expected_reports: int):
    """Executes S1 on the Worker's behalf and verifies PartPage (Figure 2)."""
    corr = 0
    for _ in range(expected_reports):
        msg = yield p.recv(predicate=lambda m: not isinstance(m.payload, RpcReply))
        part_page, order, index, nlines = msg.payload
        line = yield from call(p, "server", ("print", f"total-{index}", nlines), corr)
        corr += 1
        yield p.free_of(order)
        if line <= config.page_size:
            yield p.affirm(part_page)
        else:
            yield p.deny(part_page)


def oneway_gateway(p):
    """Forwards one-way prints to the server and absorbs the replies.

    Figure 2's S3 is *streamed*: the Worker does not wait for the print
    to complete.  The gateway keeps the server's uniform RPC interface
    while giving the Worker fire-and-forget semantics — it forwards each
    request under its own name and discards the reply.  Because the
    gateway becomes dependent on the original message's tags at receive
    time, its forward carries them onward and rollback semantics are
    preserved end to end.
    """
    corr = 0
    while True:
        msg = yield p.recv(predicate=lambda m: not isinstance(m.payload, RpcReply))
        yield from call(p, "server", msg.payload, corr)
        corr += 1


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def _build_system(
    config: CallStreamConfig,
    seed: int,
    trace: Optional[Tracer],
    metrics=None,
) -> HopeSystem:
    links = LinkLatency(default=ConstantLatency(config.latency))
    for w in range(config.n_warts):
        wart = f"worrywart-{w}"
        links.set_link("worker", wart, ConstantLatency(config.wart_latency))
        links.set_link(wart, "worker", ConstantLatency(config.wart_latency))
    # The gateway is co-located with the server: forwarding is free.
    links.set_link("server_oneway", "server", ConstantLatency(0.0))
    links.set_link("server", "server_oneway", ConstantLatency(0.0))
    return HopeSystem(
        seed=seed,
        latency=links,
        rollback_overhead=config.rollback_overhead,
        trace=trace,
        metrics=metrics,
    )


def run_pessimistic(
    config: CallStreamConfig,
    seed: int = 0,
    trace: Optional[Tracer] = None,
    metrics=None,
) -> CallStreamResult:
    """Run the Figure 1 program; returns timing and the server ledger."""
    system = _build_system(config, seed, trace, metrics)
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    system.spawn("worker", pessimistic_worker, config)
    makespan = system.run()
    return _collect(system, makespan)


def run_optimistic(
    config: CallStreamConfig,
    seed: int = 0,
    trace: Optional[Tracer] = None,
    metrics=None,
) -> CallStreamResult:
    """Run the Figure 2 program; returns timing and the server ledger."""
    system = _build_system(config, seed, trace, metrics)
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    system.spawn("server_oneway", oneway_gateway)
    for w in range(config.n_warts):
        expected = len(range(w, config.n_reports, config.n_warts))
        system.spawn(f"worrywart-{w}", worrywart, config, expected)
    system.spawn("worker", optimistic_worker, config)
    makespan = system.run()
    return _collect(system, makespan)


def _collect(system: HopeSystem, makespan: float) -> CallStreamResult:
    stats = system.stats()
    if system.metrics.enabled:
        # Fold run-level gauges (busy/blocked time, cache rates) into the
        # caller's registry so it is complete without keeping the system.
        system.metrics_snapshot()
    worker_tl = system.timeline.process("worker")
    return CallStreamResult(
        makespan=makespan,
        server_output=system.committed_outputs("server"),
        worker_busy=worker_tl.total(Span.BUSY),
        worker_blocked=worker_tl.total(Span.BLOCKED),
        wasted_time=stats["wasted_time"],
        rollbacks=stats["rollbacks"],
        messages=stats["messages_sent"],
        stats=stats,
    )


def expected_output(config: CallStreamConfig) -> list:
    """The reference ledger: what a serial execution must print.

    Computed directly from the workload — independent of either runtime —
    so equivalence tests have a third, trivially correct opinion.
    """
    ledger = []
    line = 0
    for index, nlines in enumerate(config.report_lines):
        line += nlines
        ledger.append(("print", f"total-{index}", line))
        if line > config.page_size:
            line = 0
            ledger.append(("newpage",))
        line += config.summary_lines
        ledger.append(("print", f"summary-{index}", line))
    return ledger
