"""Optimistic atomic commitment: two-phase commit without the wait.

A canonical distributed-systems pattern the paper's model captures
directly.  Classic 2PC serializes: prepare → collect votes → commit →
apply.  The client blocks for two round trips before it can build on the
transaction's result.

The optimistic coordinator assumes unanimity: it answers the client
immediately (AID ``txn-commits``), lets the client build on the result
speculatively, and collects votes in the background.  A NO vote denies
the AID — the client and everything built on the transaction roll back,
and the coordinator aborts; unanimous YES affirms it.

This composes transactions too: a client may start transaction B using
values from still-speculative transaction A; B's messages carry A's AID
in their tags, so an abort of A transparently unwinds B — the cross-
transaction cascade that makes hand-rolled optimistic 2PC notoriously
hard is exactly what HOPE automates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem
from ..sim import ConstantLatency, LatencyModel, Tracer


@dataclass(frozen=True)
class CommitWorkload:
    """A sequence of transactions; each lists per-participant vote plans.

    ``transactions[i]`` maps participant index -> will-vote-yes.  A
    transaction commits iff every participant votes yes.
    """

    transactions: tuple
    n_participants: int = 3
    vote_delay: float = 4.0          # participant think time before voting
    client_compute: float = 2.0      # work the client builds on each txn

    def expected_outcomes(self) -> list:
        return [all(votes.values()) for votes in self.transactions]


def coordinator(p, n_participants: int, n_transactions: int):
    """Answer optimistically; gather votes in the background."""
    outcomes = []
    for txn in range(n_transactions):
        msg = yield p.recv(predicate=lambda m: m.payload[0] == "begin")
        _tag, txn_id, aid = msg.payload
        for index in range(n_participants):
            yield p.send(f"participant-{index}", ("prepare", txn_id, txn))
        committed = None
        for _ in range(n_participants):   # consume exactly every vote
            vote = yield p.recv(
                predicate=lambda m, t=txn_id: (
                    m.payload[0] == "vote" and m.payload[1] == t
                )
            )
            _vtag, _v_txn, voted_yes = vote.payload
            if not voted_yes and committed is None:
                committed = False
                yield p.deny(aid)         # one NO aborts: unwind everything
                yield p.emit(("abort", txn_id))
        if committed is None:
            committed = True
            yield p.affirm(aid)
            yield p.emit(("commit", txn_id))
        outcomes.append(committed)
    return outcomes


def participant(p, index: int, workload: CommitWorkload):
    """Vote according to the plan, after deliberating."""
    for _ in range(len(workload.transactions)):
        msg = yield p.recv()
        _tag, txn_id, txn_index = msg.payload
        yield p.compute(workload.vote_delay)
        vote = workload.transactions[txn_index].get(index, True)
        yield p.send("coordinator", ("vote", txn_id, vote))


def client(p, workload: CommitWorkload):
    """Submit transactions back-to-back, building on speculative results."""
    balance = 0
    for txn_index in range(len(workload.transactions)):
        txn_id = f"txn-{txn_index}"
        commits = yield p.aid_init(f"{txn_id}-commits")
        yield p.send("coordinator", ("begin", txn_id, commits))
        if (yield p.guess(commits)):
            balance += 100                    # the transaction's effect
        # build on the (possibly speculative) balance immediately
        yield p.compute(workload.client_compute)
        yield p.emit(("balance-after", txn_index, balance))
    return balance


@dataclass
class CommitResult:
    makespan: float
    balance: int = 0
    ledger: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    rollbacks: int = 0
    stats: dict = field(default_factory=dict)


def run_optimistic_commit(
    workload: CommitWorkload,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> CommitResult:
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(5.0),
        trace=trace,
    )
    system.spawn(
        "coordinator", coordinator, workload.n_participants, len(workload.transactions)
    )
    for index in range(workload.n_participants):
        system.spawn(f"participant-{index}", participant, index, workload)
    system.spawn("client", client, workload)
    makespan = system.run(max_events=5_000_000)
    stats = system.stats()
    decisions = [
        entry[0] == "commit" for entry in system.committed_outputs("coordinator")
    ]
    return CommitResult(
        makespan=makespan,
        balance=system.result_of("client"),
        ledger=system.committed_outputs("client"),
        decisions=decisions,
        rollbacks=stats["rollbacks"],
        stats=stats,
    )


def reference_balances(workload: CommitWorkload) -> list:
    """The client's committed balance trajectory, computed serially."""
    balance = 0
    out = []
    for index, committed in enumerate(workload.expected_outcomes()):
        if committed:
            balance += 100
        out.append(("balance-after", index, balance))
    return out
