"""Applications built on HOPE.

* :mod:`repro.apps.call_streaming` — Figures 1–2: the paper's worked
  example and the workload behind the headline performance claim;
* :mod:`repro.apps.virtual_time` — timestamp-order processing (the §2
  Time Warp subsumption);
* :mod:`repro.apps.replication` — optimistic concurrency for replicated
  data (§7 future work, [6]);
* :mod:`repro.apps.recovery` — Strom/Yemini-style optimistic recovery
  with crash injection (§2, [24]);
* :mod:`repro.apps.tms` — assumption-based search / truth maintenance
  (§7 future work, [12]);
* :mod:`repro.apps.numerics` — optimistic numerical computation
  (§7 future work, [7]);
* :mod:`repro.apps.coedit` — lock-free co-operative editing
  (§7 future work, [5]);
* :mod:`repro.apps.commit` — optimistic two-phase commit with
  cross-transaction speculation.
"""

from . import (
    call_streaming,
    coedit,
    commit,
    numerics,
    recovery,
    replication,
    tms,
    virtual_time,
)

__all__ = [
    "call_streaming",
    "virtual_time",
    "replication",
    "recovery",
    "tms",
    "numerics",
    "coedit",
    "commit",
]
