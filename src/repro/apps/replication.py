"""Optimistic concurrency control of replicated data (§7 future work, [6]).

"A local cached replica of a piece of data can greatly reduce the latency
of access to that data, and optimistically assuming consistency can
reduce the latency of updating replicated data."

The encoding:

* a **primary** owns versioned cells; an update request carries the
  client's cached base version and an AID;
* the primary validates *before* applying: version match ⇒ apply and
  ``affirm``; stale base ⇒ ``deny`` plus a fresh copy in the denial's
  wake;
* a **client** sends the update, guesses the AID, and keeps computing on
  the optimistically-updated cache.  A denial rolls the client back to
  the guess; the False branch refreshes the cache with a synchronous read
  and retries with a new AID — the classic optimistic-concurrency retry
  loop, except the dependency tracking and rollback of everything built
  on the stale value is automatic.

The pessimistic comparator locks by reading synchronously before every
update (two round trips per op even without contention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem, call
from ..sim import ConstantLatency, LatencyModel, Tracer


@dataclass(frozen=True)
class ReplicationWorkload:
    """Each client applies ``ops_per_client`` increments onto cells.

    ``assignment`` controls the access pattern: ``"rotate"`` walks every
    client over all keys (interleaved sharing), ``"fixed"`` pins client
    *i* to ``keys[i % len(keys)]`` (no sharing when there are enough
    keys).
    """

    n_clients: int = 2
    ops_per_client: int = 5
    keys: tuple = ("k",)
    client_compute: float = 1.0
    assignment: str = "rotate"

    def key_for(self, client: int, op: int) -> str:
        if self.assignment == "fixed":
            return self.keys[client % len(self.keys)]
        return self.keys[(client + op) % len(self.keys)]

    @property
    def total_ops(self) -> int:
        return self.n_clients * self.ops_per_client


def primary(p):
    """The authoritative store: validate-then-apply, affirm or deny."""
    cells: dict[str, tuple[int, int]] = {}        # key -> (version, value)
    while True:
        msg = yield p.recv()
        request = msg.payload.body
        op = request[0]
        if op == "update":
            _op, key, base_version, delta, aid = request
            version, value = cells.get(key, (0, 0))
            if base_version == version:
                cells[key] = (version + 1, value + delta)
                yield p.emit(("applied", key, version + 1, value + delta))
                yield p.reply(msg, ("ok", version + 1))
                yield p.affirm(aid)
            else:
                yield p.reply(msg, ("stale", version, value))
                yield p.deny(aid)
        elif op == "read":
            _op, key = request
            version, value = cells.get(key, (0, 0))
            yield p.reply(msg, (version, value))
        else:
            raise ValueError(f"unknown primary op {op!r}")


def optimistic_client(p, workload: ReplicationWorkload, client_id: int):
    """Update through the cache, guess success, retry on denial."""
    cache: dict[str, tuple[int, int]] = {}        # key -> (version, value)
    corr = 0
    done = 0
    for op_index in range(workload.ops_per_client):
        key = workload.key_for(client_id, op_index)
        while True:
            version, value = cache.get(key, (0, 0))
            aid = yield p.aid_init(f"occ-{client_id}-{op_index}")
            yield p.send(
                "primary",
                _rpc(p, ("update", key, version, 1, aid), corr),
            )
            corr += 1
            if (yield p.guess(aid)):
                # Optimistically assume the update landed: bump the cache
                # and move on without waiting for the primary.
                cache[key] = (version + 1, value + 1)
                yield p.emit(("did", key, op_index))
                break
            # Denied: our base version was stale.  Refresh and retry.
            fresh_version, fresh_value = yield from call(
                p, "primary", ("read", key), corr
            )
            corr += 1
            cache[key] = (fresh_version, fresh_value)
        done += 1
        yield p.compute(workload.client_compute)
    return done


def pessimistic_client(p, workload: ReplicationWorkload, client_id: int):
    """Read synchronously before every update; retry on races."""
    corr = 0
    for op_index in range(workload.ops_per_client):
        key = workload.key_for(client_id, op_index)
        while True:
            version, value = yield from call(p, "primary", ("read", key), corr)
            corr += 1
            aid = yield p.aid_init(f"pess-{client_id}-{op_index}")
            reply = yield from call(
                p, "primary", ("update", key, version, 1, aid), corr
            )
            corr += 1
            if reply[0] == "ok":
                yield p.emit(("did", key, op_index))
                break
        yield p.compute(workload.client_compute)


def _rpc(p, body, corr):
    from ..runtime.messages import RpcRequest

    return RpcRequest(body, p.name, corr)


@dataclass
class ReplicationResult:
    makespan: float
    cells: dict = field(default_factory=dict)
    applied: int = 0
    denials: int = 0
    rollbacks: int = 0
    stats: dict = field(default_factory=dict)


def _run(client_fn, workload: ReplicationWorkload, latency, seed, trace) -> ReplicationResult:
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(5.0),
        trace=trace,
    )
    system.spawn("primary", primary)
    for c in range(workload.n_clients):
        system.spawn(f"client-{c}", client_fn, workload, c)
    makespan = system.run(max_events=5_000_000)
    ledger = system.committed_outputs("primary")
    applied = [entry for entry in ledger if entry[0] == "applied"]
    cells: dict[str, tuple[int, int]] = {}
    for _tag, key, version, value in applied:
        cells[key] = (version, value)
    stats = system.stats()
    return ReplicationResult(
        makespan=makespan,
        cells=cells,
        applied=len(applied),
        denials=stats["denies"],
        rollbacks=stats["rollbacks"],
        stats=stats,
    )


def run_optimistic_replication(
    workload: ReplicationWorkload,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> ReplicationResult:
    return _run(optimistic_client, workload, latency, seed, trace)


def run_pessimistic_replication(
    workload: ReplicationWorkload,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> ReplicationResult:
    return _run(pessimistic_client, workload, latency, seed, trace)
