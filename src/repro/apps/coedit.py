"""Optimistic co-operative editing (§7 future work, ref [5]).

Cormack's "real-time distributed lock-free conference editing" is on the
paper's future-work list.  The optimistic shape: an editor applies its
own edit to the local replica *immediately* — assuming no concurrent edit
from another participant will be sequenced before it — while a sequencer
establishes the total order in the background.

* Each edit is guarded by an AID: "my edit lands at the position my
  replica predicts".  The editor appends locally, emits the predicted
  state, and keeps typing.
* The **sequencer** assigns global sequence numbers, broadcasts ordered
  edits, and affirms the AID when the assigned slot matches the editor's
  prediction — or denies it when a concurrent edit beat it there.
* A denial rolls the editor back to the guess: the re-execution takes the
  pessimistic branch (don't self-apply; the edit arrives via the ordered
  broadcast like everyone else's), and HOPE's cascade also unwinds the
  sequencer's speculative processing of any edits that were issued on top
  of the failed assumption.

Convergence criterion (checked by the tests): every replica's final
document equals the sequencer's committed order, and each editor's
committed apply-ledger *is* that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem
from ..sim import TIMED_OUT, ConstantLatency, LatencyModel, Tracer


@dataclass(frozen=True)
class EditScript:
    """One editor's keystrokes: (think_time, text) pairs, in order."""

    edits: tuple


@dataclass(frozen=True)
class CoEditWorkload:
    scripts: tuple                    # one EditScript per editor
    latency: float = 5.0

    @property
    def n_editors(self) -> int:
        return len(self.scripts)

    @property
    def total_edits(self) -> int:
        return sum(len(s.edits) for s in self.scripts)


def editor(p, index: int, script: EditScript, total_edits: int):
    """Type the script optimistically while absorbing ordered broadcasts."""
    doc: list = []
    applied_globals = 0
    spec_serials: set = set()         # my optimistic, unconfirmed edits
    reorder_buffer: dict = {}         # seq -> (src, serial, text)

    def handle_broadcast(payload):
        nonlocal applied_globals
        _tag, seq, src, serial, text = payload
        # the network may reorder broadcasts: apply strictly in seq order
        reorder_buffer[seq] = (src, serial, text)
        while applied_globals in reorder_buffer:
            b_src, b_serial, b_text = reorder_buffer.pop(applied_globals)
            if b_src == index and b_serial in spec_serials:
                # my own optimistic append, confirmed in place
                spec_serials.discard(b_serial)
            else:
                doc.append(b_text)
            applied_globals += 1

    pending = list(script.edits)
    serial = 0
    while pending or applied_globals < total_edits:
        # drain any broadcasts that have already arrived
        while True:
            msg = yield p.recv(timeout=0.0)
            if msg is TIMED_OUT:
                break
            handle_broadcast(msg.payload)
            yield p.emit(("applied", applied_globals, tuple(doc)))
        if pending:
            think, text = pending.pop(0)
            yield p.compute(think)
            # absorb everything that arrived while thinking, so the
            # prediction reflects the freshest view of the global order
            while True:
                msg = yield p.recv(timeout=0.0)
                if msg is TIMED_OUT:
                    break
                handle_broadcast(msg.payload)
            serial += 1
            aid = yield p.aid_init(f"edit-{index}-{serial}")
            predicted = applied_globals + len(spec_serials)
            yield p.send("sequencer", ("op", index, serial, predicted, text, aid))
            if (yield p.guess(aid)):
                # optimistic: my edit is already where it will be sequenced
                doc.append(text)
                spec_serials.add(serial)
            # pessimistic branch: nothing — the edit arrives via broadcast
        elif applied_globals < total_edits:
            msg = yield p.recv()
            handle_broadcast(msg.payload)
            yield p.emit(("applied", applied_globals, tuple(doc)))
    return tuple(doc)


def sequencer(p, n_editors: int, total_edits: int):
    """Assign the total order; affirm accurate predictions, deny races."""
    count = 0
    while count < total_edits:
        msg = yield p.recv()
        _tag, src, serial, predicted, text, aid = msg.payload
        seq = count
        count += 1
        yield p.emit(("seq", seq, src, serial, text))
        for e in range(n_editors):
            yield p.send(f"editor-{e}", ("ordered", seq, src, serial, text))
        if seq == predicted:
            yield p.affirm(aid)
        else:
            yield p.deny(aid)
    return count


@dataclass
class CoEditResult:
    makespan: float
    documents: dict = field(default_factory=dict)   # editor index -> tuple
    order: list = field(default_factory=list)       # committed global order
    rollbacks: int = 0
    denials: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        docs = list(self.documents.values())
        reference = tuple(text for (_tag, _seq, _src, _serial, text) in self.order)
        return all(doc == reference for doc in docs)


def run_coedit(
    workload: CoEditWorkload,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    trace: Optional[Tracer] = None,
) -> CoEditResult:
    system = HopeSystem(
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(workload.latency),
        trace=trace,
    )
    system.spawn("sequencer", sequencer, workload.n_editors, workload.total_edits)
    for index, script in enumerate(workload.scripts):
        system.spawn(f"editor-{index}", editor, index, script, workload.total_edits)
    makespan = system.run(max_events=5_000_000)
    documents = {
        index: system.result_of(f"editor-{index}")
        for index in range(workload.n_editors)
    }
    stats = system.stats()
    return CoEditResult(
        makespan=makespan,
        documents=documents,
        order=system.committed_outputs("sequencer"),
        rollbacks=stats["rollbacks"],
        denials=stats["denies"],
        stats=stats,
    )
