"""Optimistic recovery expressed in HOPE (Strom & Yemini [24], §2).

Optimistic recovery protocols "optimistically assume that the sender of a
message will checkpoint its state to stable storage before failure at
that node occurs".  HOPE subsumes them: that assumption is one AID per
message.

Cast:

* **disk** — stable storage.  Synchronous, cheap *intent* records (which
  AIDs guard which stream indices) and slow, asynchronous *data* writes;
  also holds the receiver's checkpoints.  The disk never crashes.
* **sender** — streams items to the receiver.  For each item it records
  the intent, **guesses** the AID "this item's log write will complete
  before I fail", sends the (tagged) item, and fires the async data
  write.  Write acks arriving back affirm the AIDs.  On a crash the
  volatile affirm pipeline is lost; **recovery** reads the disk, affirms
  AIDs whose data writes completed, denies the orphans (writes that never
  made it), and re-sends everything not stably logged.
* **receiver** — processes items optimistically as they arrive (it is
  speculative on the senders' logging AIDs via message tags).  Output
  follows the output-commit discipline twice over: HOPE withholds emits
  until the AIDs resolve, and the receiver defers emits until its own
  checkpoint covers them, so a receiver crash + replay cannot duplicate
  output.  On a crash the receiver restarts from its last checkpoint and
  asks the sender to replay the suffix (replayed sends are definite: the
  data is on stable storage).

The exactly-once theorem tested: for any crash schedule the committed
output ledger equals the input stream, each item exactly once, in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem, call
from ..runtime.messages import RpcReply, RpcRequest
from ..sim import TIMED_OUT, ConstantLatency, Tracer


@dataclass(frozen=True)
class RecoveryConfig:
    """Workload and fault-model parameters."""

    items: tuple = tuple(range(10))
    send_spacing: float = 1.0
    log_write_latency: float = 8.0       # async stable write duration
    flush_every: int = 3                 # sender's volatile write buffer size
    checkpoint_every: int = 3            # receiver checkpoint period (items)
    latency: float = 2.0                 # network latency
    process_time: float = 0.5            # receiver work per item
    replay_retry: float = 25.0           # receiver re-requests a lost replay


# ---------------------------------------------------------------------------
# stable storage
# ---------------------------------------------------------------------------
def disk(p, write_latency: float):
    """Stable storage: intents, slow data writes, receiver checkpoints."""
    intents: dict[int, str] = {}          # index -> aid key
    written: set[int] = set()
    checkpoint = (0, ())                  # (next_index, folded state)
    while True:
        msg = yield p.recv()
        body = msg.payload.body
        op = body[0]
        if op == "intent":                # synchronous, cheap
            _op, index, aid_key = body
            intents[index] = aid_key
            yield p.reply(msg, "ok")
        elif op == "write":               # slow data write
            _op, index = body
            yield p.compute(write_latency)
            written.add(index)
            yield p.reply(msg, ("written", index))
        elif op == "recovery_scan":       # sender recovery
            orphans = {
                index: aid for index, aid in intents.items() if index not in written
            }
            yield p.reply(msg, (dict(intents), set(written), orphans))
        elif op == "checkpoint":          # receiver checkpoint (synchronous)
            _op, next_index, state, outputs = body
            checkpoint = (next_index, state)
            # Outputs are released from *stable storage*: the checkpoint
            # message carries the receiver's pending emits, and because it
            # is tagged with the receiver's assumption dependencies, these
            # emits stay uncommitted until the logging AIDs resolve — and
            # they survive receiver crashes, unlike the receiver's own
            # volatile output buffer.
            for record in outputs:
                yield p.emit(record)
            yield p.reply(msg, "ok")
        elif op == "read_checkpoint":
            yield p.reply(msg, checkpoint)
        else:
            raise ValueError(f"unknown disk op {op!r}")


# ---------------------------------------------------------------------------
# sender
# ---------------------------------------------------------------------------
def sender(p, config: RecoveryConfig):
    """Stream items with sender-based optimistic logging (see module doc).

    The body is crash-restartable: ``p``'s effect log is volatile, so a
    crash restarts it from the top; the recovery scan tells it where the
    stable world actually is.
    """
    # An incarnation-unique RPC correlation base: the random stream
    # advances across crash restarts, so stale replies addressed to a dead
    # incarnation can never match this incarnation's calls.
    corr = int((yield p.random()) * 1_000_000_000) * 1000
    # ---- recovery scan (trivially empty on the first incarnation) ----
    intents, written, orphans = yield from call(p, "disk", ("recovery_scan",), corr)
    corr += 1
    for index, aid_key in sorted(orphans.items()):
        yield p.deny(aid_key)             # the write never made it: orphan
    for index in sorted(written):
        aid_key = intents.get(index)
        if aid_key is not None:
            yield p.affirm(aid_key)       # stable: the assumption held
    # Disk writes complete FIFO, so `written` is a prefix of the stream;
    # orphans (denied above) are exactly the suffix to resend.
    resume_from = (max(written) + 1) if written else 0
    sent_up_to = resume_from              # exclusive high-water mark
    finished = False
    pending_acks: dict[int, object] = {}

    def handle_control(msg):
        nonlocal sent_up_to
        if isinstance(msg.payload, RpcReply):
            body = msg.payload.body
            if isinstance(body, tuple) and body and body[0] == "written":
                aid = pending_acks.pop(body[1], None)
                if aid is not None:
                    yield p.affirm(aid)
        elif isinstance(msg.payload, tuple) and msg.payload[0] == "replay_from":
            # Re-send the suffix the receiver lost.  Tags are automatic:
            # items whose log writes completed carry no live dependencies;
            # unstable items carry their still-pending logging AIDs.
            start_index = msg.payload[1]
            for index in range(start_index, sent_up_to):
                yield p.send("receiver", ("item", index, config.items[index]))
            if finished:
                yield p.send("receiver", ("end", len(config.items)))

    def drain_control():
        while True:
            extra = yield p.recv(timeout=0.0)
            if extra is TIMED_OUT:
                return
            yield from handle_control(extra)

    write_buffer: list[int] = []         # volatile: lost on crash

    def flush_writes():
        """Push buffered write requests to the disk (async; acks affirm)."""
        nonlocal corr
        for buffered in write_buffer:
            yield p.send("disk", RpcRequest(("write", buffered), p.name, corr))
            corr += 1
        write_buffer.clear()

    for index in range(resume_from, len(config.items)):
        item = config.items[index]
        aid = yield p.aid_init(f"logged-{index}")
        yield from call(p, "disk", ("intent", index, aid.key), corr)
        corr += 1
        yield p.guess(aid)                # "this write completes before I fail"
        yield p.send("receiver", ("item", index, item))
        sent_up_to = index + 1
        pending_acks[index] = aid
        # The data write sits in a volatile buffer until the next flush —
        # this is the window the optimistic assumption covers: a crash
        # before the flush orphans the buffered items.
        write_buffer.append(index)
        if len(write_buffer) >= config.flush_every:
            yield from flush_writes()
        yield p.compute(config.send_spacing)
        yield from drain_control()
    yield from flush_writes()
    finished = True
    yield p.send("receiver", ("end", len(config.items)))
    # Serve write acks and replay requests indefinitely; the run quiesces
    # once nothing is in flight.
    while True:
        msg = yield p.recv()
        yield from handle_control(msg)


# ---------------------------------------------------------------------------
# receiver
# ---------------------------------------------------------------------------
def receiver(p, config: RecoveryConfig):
    """Process items in order; checkpoint-deferred output commit."""
    corr = int((yield p.random()) * 1_000_000_000) * 1000
    next_index, state_tuple = yield from call(p, "disk", ("read_checkpoint",), corr)
    corr += 1
    state = list(state_tuple)
    # Always request a replay of the suffix: on a fresh start the sender
    # has sent nothing and the request is a no-op; after a crash it
    # recovers whatever the dead incarnation had consumed.
    yield p.send("sender", ("replay_from", next_index))
    pending_emits: list = []
    total = None
    while total is None or next_index < total:
        msg = yield p.recv(
            timeout=config.replay_retry,
            predicate=lambda m: not isinstance(m.payload, RpcReply),
        )
        if msg is TIMED_OUT:
            # Our replay request may have died in a sender crash (its
            # mailbox is volatile).  Re-request; duplicates are harmless —
            # the next_index filter below drops them.
            yield p.send("sender", ("replay_from", next_index))
            continue
        tag = msg.payload[0]
        if tag == "end":
            total = msg.payload[1]
            continue
        if tag != "item":
            continue
        _tag, index, item = msg.payload
        if index != next_index:
            continue                      # duplicate or already-covered item
        yield p.compute(config.process_time)
        state.append(item)
        pending_emits.append(("out", index, item))
        next_index += 1
        if next_index % config.checkpoint_every == 0:
            yield from call(
                p,
                "disk",
                ("checkpoint", next_index, tuple(state), tuple(pending_emits)),
                corr,
            )
            corr += 1
            pending_emits.clear()
    # final checkpoint commits the tail
    yield from call(
        p,
        "disk",
        ("checkpoint", next_index, tuple(state), tuple(pending_emits)),
        corr,
    )
    pending_emits.clear()
    return tuple(state)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
@dataclass
class RecoveryResult:
    makespan: float
    ledger: list = field(default_factory=list)
    crashes: int = 0
    rollbacks: int = 0
    stats: dict = field(default_factory=dict)


def run_recovery(
    config: RecoveryConfig,
    crash_sender_at: Optional[list] = None,
    crash_receiver_at: Optional[list] = None,
    restart_after: float = 2.0,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> RecoveryResult:
    """Run the stream with optional crash schedules; returns the ledger."""
    system = HopeSystem(seed=seed, latency=ConstantLatency(config.latency), trace=trace)
    system.spawn("disk", disk, config.log_write_latency)
    system.spawn("sender", sender, config)
    system.spawn("receiver", receiver, config)
    for t in crash_sender_at or []:
        system.failures.crash_at("sender", t)
        system.sim.schedule_at(t + restart_after, system.restart_process, "sender")
    for t in crash_receiver_at or []:
        system.failures.crash_at("receiver", t)
        system.sim.schedule_at(t + restart_after, system.restart_process, "receiver")
    makespan = system.run(max_events=5_000_000)
    stats = system.stats()
    return RecoveryResult(
        makespan=makespan,
        ledger=system.committed_outputs("disk"),
        crashes=len(system.failures.crashes),
        rollbacks=stats["rollbacks"],
        stats=stats,
    )


def reference_ledger(config: RecoveryConfig) -> list:
    return [("out", index, item) for index, item in enumerate(config.items)]
