"""Timestamp-order processing expressed in HOPE — the §2 subsumption claim.

Time Warp hard-wires one optimistic assumption: "messages arrive at each
process in time-stamp order" [17].  The paper argues HOPE subsumes it,
because that assumption is just one more thing an AID can stand for.
This module demonstrates the encoding:

* each **sender** streams virtual-time-stamped jobs (its own stream is
  vt-ordered; the *physical* network may still interleave and reorder
  across senders);
* the **receiver** applies jobs optimistically in arrival order, guarding
  every applied job with an AID ``order@vt`` = "no job with a smaller vt
  is still coming";
* when a straggler arrives, the receiver **denies** the earliest violated
  guard — HOPE rolls the receiver back to that guess point (and withdraws
  any outputs), after which the re-execution drains the redelivered
  messages, sorts the batch, and re-applies in order;
* when every sender's ``DONE`` marker is in, the receiver affirms the
  surviving guards oldest-first, committing the ledger.

The fold applied to jobs is deliberately non-commutative, so any
order-processing mistake corrupts the final state instead of hiding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import HopeSystem
from ..sim import TIMED_OUT, LatencyModel, Tracer

#: tag of the payload closing a sender's stream: ("__done__", job_count).
#: The count makes termination robust to jitter — a DONE marker may
#: physically overtake its own stream's last jobs.
DONE_TAG = "__done__"


def _is_done(payload) -> bool:
    return isinstance(payload, tuple) and payload and payload[0] == DONE_TAG


def fold(state: int, vt: float, value: int) -> int:
    """A non-commutative, order-sensitive accumulator."""
    return (state * 31 + int(round(vt * 1000)) * 7 + value) % 1_000_003


@dataclass(frozen=True)
class Job:
    """One unit of work: apply ``value`` at virtual time ``vt``."""

    vt: float
    value: int


@dataclass(frozen=True)
class VtWorkload:
    """Per-sender job streams (each stream must be vt-ascending) and the
    per-job physical send spacing."""

    streams: tuple            # tuple of tuples of Job
    send_spacing: float = 1.0

    @property
    def all_jobs(self) -> list:
        jobs = [job for stream in self.streams for job in stream]
        return sorted(jobs, key=lambda j: j.vt)

    def reference_state(self) -> int:
        """The oracle: fold all jobs in global vt order."""
        state = 0
        for job in self.all_jobs:
            state = fold(state, job.vt, job.value)
        return state

    def reference_ledger(self) -> list:
        state = 0
        ledger = []
        for job in self.all_jobs:
            state = fold(state, job.vt, job.value)
            ledger.append((job.vt, state))
        return ledger


def vt_sender(p, receiver: str, jobs: tuple, spacing: float):
    """Stream jobs (vt-ascending) with fixed physical spacing, then a DONE
    marker carrying the stream's job count."""
    last_vt = float("-inf")
    for job in jobs:
        if job.vt <= last_vt:
            raise ValueError(f"sender {p.name} stream not vt-ascending at {job.vt}")
        last_vt = job.vt
        yield p.send(receiver, ("job", job.vt, job.value))
        yield p.compute(spacing)
    yield p.send(receiver, (DONE_TAG, len(jobs)))


def vt_receiver(p, n_senders: int):
    """Apply jobs in virtual-time order, optimistically (see module doc)."""
    state = 0
    guards = []          # [(vt, aid)] for applied-but-unconfirmed jobs
    pending = []         # [(vt, value)] sorted batch awaiting application
    done_count = 0
    expected_jobs = 0    # sum of counts announced by DONE markers

    def note(payload):
        nonlocal done_count, expected_jobs
        if _is_done(payload):
            done_count += 1
            expected_jobs += payload[1]
        else:
            _tag, vt, value = payload
            pending.append((vt, value))

    while done_count < n_senders or len(guards) < expected_jobs or pending:
        if not pending:
            msg = yield p.recv()
            note(msg.payload)
        # opportunistically drain everything already delivered, then sort.
        # After a rollback this also picks up the requeued batch (straggler
        # included) before anything is re-applied.
        while True:
            extra = yield p.recv(timeout=0.0)
            if extra is TIMED_OUT:
                break
            note(extra.payload)
        pending.sort()
        if not pending:
            continue
        vt, value = pending.pop(0)
        if guards and vt < guards[-1][0]:
            # Straggler: some applied job should have waited.  Deny the
            # earliest violated guard; HOPE rolls the receiver back to that
            # guess point and redelivers everything applied since.
            for g_vt, g_aid in guards:
                if g_vt > vt:
                    yield p.deny(g_aid)
                    raise AssertionError(
                        "unreachable: the denying incarnation is rolled back"
                    )
        guard = yield p.aid_init(f"order@{vt:g}")
        if (yield p.guess(guard)):
            state = fold(state, vt, value)
            yield p.emit((vt, state))
            guards.append((vt, guard))
        else:
            # Our own guard was denied: this job must be re-sequenced
            # against the redelivered batch; the loop-top drain collects it.
            pending.append((vt, value))
    # Every announced job is applied and no straggler can be outstanding:
    # the surviving order assumptions hold — affirm oldest-first.
    for _vt, guard in guards:
        yield p.affirm(guard)
    return state


@dataclass
class VtRunResult:
    """Outcome of a HOPE-order run, comparable with Time Warp stats."""

    makespan: float
    final_state: int = 0
    ledger: list = field(default_factory=list)
    rollbacks: int = 0
    messages: int = 0
    stats: dict = field(default_factory=dict)


def run_hope_order(
    workload: VtWorkload,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    trace: Optional[Tracer] = None,
) -> VtRunResult:
    """Run the workload through the HOPE receiver; returns results + stats."""
    system = HopeSystem(seed=seed, latency=latency, trace=trace)
    system.spawn("receiver", vt_receiver, len(workload.streams))
    for index, stream in enumerate(workload.streams):
        system.spawn(
            f"sender-{index}", vt_sender, "receiver", stream, workload.send_spacing
        )
    makespan = system.run(max_events=2_000_000)
    stats = system.stats()
    return VtRunResult(
        makespan=makespan,
        final_state=system.result_of("receiver"),
        ledger=system.committed_outputs("receiver"),
        rollbacks=stats["rollbacks"],
        messages=stats["messages_sent"],
        stats=stats,
    )
