"""Process histories — Definition 4.1.

An execution history is a sequence of states separated by events.  The
machine records one :class:`HistoryEntry` per state transition; rollback
implements ``Del(H, A)`` (§4) by truncating every entry from A's start
index onward — Theorem 5.1 guarantees the deletion is always a suffix,
and :meth:`ProcessRecord.truncate_from` asserts it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .errors import MachineInvariantError
from .interval import Interval

if TYPE_CHECKING:  # pragma: no cover
    from .aid import AssumptionId


class HistoryEntry:
    """One event in a process history: ``S_i E_i S_{i+1}``.

    ``index`` is the position in the (never-reindexed) history; after a
    rollback new entries continue from the truncation point, so indices
    stay comparable with interval start indices.
    """

    __slots__ = ("index", "kind", "detail", "interval", "g")

    def __init__(
        self,
        index: int,
        kind: str,
        interval: Optional[Interval],
        g: Optional[bool],
        detail: dict,
    ) -> None:
        self.index = index
        self.kind = kind
        self.interval = interval
        self.g = g
        self.detail = detail

    def __repr__(self) -> str:
        iv = self.interval.label if self.interval is not None else "-"
        fields = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"H[{self.index}] {self.kind:<10} I={iv} G={self.g} {fields}"


class ProcessRecord:
    """Per-process machine state: history, intervals, and the S.I/S.IS/S.G variables."""

    __slots__ = (
        "name", "history", "intervals", "current", "speculative", "g",
        "_next_index", "rollback_count",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.history: list[HistoryEntry] = []
        #: All intervals ever created, in creation order (including dead ones).
        self.intervals: list[Interval] = []
        #: S.I — the current interval; None encodes the paper's I = ∅.
        self.current: Optional[Interval] = None
        #: S.IS — speculative intervals leading to the current state.
        self.speculative: set[Interval] = set()
        #: S.G — result of the most recent guess (None before any guess).
        self.g: Optional[bool] = None
        self._next_index = 0
        self.rollback_count = 0

    # ------------------------------------------------------------------
    # history bookkeeping
    # ------------------------------------------------------------------
    def append(self, kind: str, **detail: Any) -> HistoryEntry:
        """Record a state transition (HP ← HP · S, the Eq 6 pattern)."""
        entry = HistoryEntry(self._next_index, kind, self.current, self.g, detail)
        self._next_index += 1
        self.history.append(entry)
        return entry

    def truncate_from(self, start_index: int) -> list[HistoryEntry]:
        """Del(H, A): discard the history suffix from ``start_index`` on.

        Returns the removed entries.  Raises if the removal would not be a
        contiguous suffix (that would contradict Theorem 5.1).
        """
        indices = [entry.index for entry in self.history]
        if any(a >= b for a, b in zip(indices, indices[1:])):
            raise MachineInvariantError(
                f"history of {self.name!r} is not strictly index-ordered; "
                "a deletion would not be a contiguous suffix"
            )
        keep: list[HistoryEntry] = []
        drop: list[HistoryEntry] = []
        for entry in self.history:
            (drop if entry.index >= start_index else keep).append(entry)
        self.history = keep
        self._next_index = start_index
        return drop

    def fossilize_before(self, index: int) -> tuple[int, int]:
        """Drop the committed prefix: history entries and dead intervals
        strictly below ``index``.

        The inverse of :meth:`truncate_from` — a *prefix* drop, sound only
        when ``index`` is at or below the process's commit frontier
        (Theorem 6.1: finalized intervals never roll back, so no future
        ``Del(H, A)`` can reach below it).  Indices are never reassigned,
        so the surviving suffix stays comparable with interval start
        indices.  Returns ``(entries_dropped, intervals_dropped)``.
        """
        frontier = self.frontier_index()
        if index > frontier:
            raise MachineInvariantError(
                f"fossilize_before({index}) on {self.name!r} would cross the "
                f"commit frontier at {frontier}"
            )
        n_hist = len(self.history)
        self.history = [e for e in self.history if e.index >= index]
        # An interval is fossil once it can never matter again: finalized
        # and started before the drop point, or rolled back (a terminal
        # state wherever it sits — truncation already rewound the index
        # clock past it, so the position test would miss it).  Severing
        # ``parent`` keeps a surviving child from pinning a dropped
        # ancestor chain.
        keep: list[Interval] = []
        dropped = 0
        for iv in self.intervals:
            if iv.rolled_back or (
                not iv.speculative
                and iv is not self.current
                and iv.start_index < index
            ):
                dropped += 1
            else:
                keep.append(iv)
        if dropped:
            self.intervals = keep
            for iv in keep:
                if iv.parent is not None and not iv.parent.speculative:
                    iv.parent = None
        return (n_hist - len(self.history), dropped)

    def frontier_index(self) -> int:
        """This process's commit frontier: the start index of its oldest
        still-speculative interval, or ``_next_index`` when definite.

        Everything strictly below is committed — Theorem 6.1 means no
        rollback can ever truncate into it.
        """
        if not self.speculative:
            return self._next_index
        return min(iv.start_index for iv in self.speculative)

    # ------------------------------------------------------------------
    # interval queries
    # ------------------------------------------------------------------
    def live_intervals_from(self, start_index: int) -> list[Interval]:
        """Speculative intervals whose start is at or after ``start_index``."""
        return [
            iv
            for iv in self.intervals
            if iv.speculative and iv.start_index >= start_index
        ]

    def speculative_chain(self) -> list[Interval]:
        """The process's live speculative intervals in creation order."""
        return [iv for iv in self.intervals if iv.speculative]

    @property
    def is_definite(self) -> bool:
        """True when S.I = ∅: nothing this process does can be undone."""
        return self.current is None

    def __repr__(self) -> str:
        cur = self.current.label if self.current is not None else "∅"
        return f"<ProcessRecord {self.name!r} I={cur} |IS|={len(self.speculative)} |H|={len(self.history)}>"
