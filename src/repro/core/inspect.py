"""Inspection tools: dependency graphs and human-readable machine dumps.

The IDO/DOM bookkeeping is a bipartite graph between intervals and
assumption identifiers; seeing it is the fastest way to debug an
optimistic program.  :func:`dependency_graph` materializes it as a
:mod:`networkx` DiGraph (intervals → the AIDs they depend on; AIDs → the
interval that speculatively affirmed them), :func:`format_machine` prints
the whole machine state, and :func:`to_dot` renders Graphviz source.
"""

from __future__ import annotations

import networkx as nx

from .aid import AssumptionId
from .interval import Interval
from .machine import Machine


def dependency_graph(machine: Machine, include_dead: bool = False) -> "nx.DiGraph":
    """The live dependency graph.

    Nodes: ``aid:<key>`` (kind="aid", status=...) and ``interval:<label>``
    (kind="interval", state=..., pid=...).  Edges:

    * interval → aid, relation="depends_on"  (X ∈ A.IDO);
    * aid → interval, relation="affirmed_by" (speculative affirmer);
    * interval → aid, relation="parked_deny" (X ∈ A.IHD).
    """
    graph = nx.DiGraph()
    for aid in machine.aids.values():
        graph.add_node(f"aid:{aid.key}", kind="aid", status=aid.status.value)
    for record in machine.processes.values():
        for interval in record.intervals:
            if not include_dead and not interval.speculative:
                continue
            node = f"interval:{interval.label}"
            graph.add_node(
                node, kind="interval", state=interval.state.value, pid=interval.pid
            )
            for aid in interval.ido:
                graph.add_edge(node, f"aid:{aid.key}", relation="depends_on")
            for aid in interval.ihd:
                graph.add_edge(node, f"aid:{aid.key}", relation="parked_deny")
    for aid in machine.aids.values():
        affirmer = aid.speculative_affirmer
        if affirmer is not None and (include_dead or affirmer.speculative):
            graph.add_edge(
                f"aid:{aid.key}",
                f"interval:{affirmer.label}",
                relation="affirmed_by",
            )
    return graph


def transitive_dependencies(machine: Machine, pid: str) -> frozenset[str]:
    """Every AID key the process's fate transitively rides on.

    Follows depends_on edges through speculative affirmers — the closure
    Corollary 6.1 talks about.
    """
    record = machine.process(pid)
    if record.current is None:
        return frozenset()
    graph = dependency_graph(machine)
    start = f"interval:{record.current.label}"
    if start not in graph:
        return frozenset()
    reachable = nx.descendants(graph, start)
    return frozenset(
        node.split(":", 1)[1] for node in reachable if node.startswith("aid:")
    )


def rollback_blast_radius(machine: Machine, aid: AssumptionId) -> frozenset[str]:
    """The process names a deny(aid) would roll back, right now."""
    victims = set()
    stack = list(aid.dom)
    seen: set[Interval] = set()
    while stack:
        interval = stack.pop()
        if interval in seen or not interval.speculative:
            continue
        seen.add(interval)
        victims.add(interval.pid)
        # rolling back an interval also discards later intervals of the
        # same process, whose own IDO members' other dependents are NOT
        # affected — DOM membership already covers everything reachable,
        # because tags gave receivers the full dependency set.
    return frozenset(victims)


def format_machine(machine: Machine, include_history: bool = False) -> str:
    """A readable dump of the whole machine state."""
    lines = [f"Machine: {len(machine.processes)} processes, {len(machine.aids)} AIDs"]
    for name in sorted(machine.processes):
        record = machine.processes[name]
        current = record.current.label if record.current is not None else "∅"
        lines.append(
            f"  process {name}: I={current} |IS|={len(record.speculative)} "
            f"G={record.g} rollbacks={record.rollback_count}"
        )
        for interval in record.intervals:
            if not interval.speculative:
                continue
            ido = ",".join(sorted(a.key for a in interval.ido)) or "∅"
            ihd = ",".join(sorted(a.key for a in interval.ihd))
            suffix = f" IHD={{{ihd}}}" if ihd else ""
            lines.append(f"    {interval.label}: IDO={{{ido}}}{suffix}")
        if include_history:
            for entry in record.history:
                lines.append(f"      {entry!r}")
    for key in sorted(machine.aids):
        aid = machine.aids[key]
        dom = ",".join(sorted(iv.label for iv in aid.dom)) or "∅"
        extra = ""
        if aid.speculative_affirmer is not None:
            extra = f" spec-affirmed-by={aid.speculative_affirmer.label}"
        lines.append(f"  aid {key}: {aid.status.value} DOM={{{dom}}}{extra}")
    return "\n".join(lines)


def to_dot(machine: Machine) -> str:
    """Graphviz source for the live dependency graph."""
    graph = dependency_graph(machine)
    lines = ["digraph hope {", "  rankdir=LR;"]
    for node, data in graph.nodes(data=True):
        label = node.split(":", 1)[1]
        if data["kind"] == "aid":
            shape = "ellipse"
            color = {"pending": "gray", "affirmed": "green", "denied": "red"}[
                data["status"]
            ]
        else:
            shape = "box"
            color = "lightblue"
        lines.append(
            f'  "{node}" [label="{label}", shape={shape}, color={color}];'
        )
    styles = {"depends_on": "solid", "affirmed_by": "dashed", "parked_deny": "dotted"}
    for src, dst, data in graph.edges(data=True):
        style = styles[data["relation"]]
        lines.append(f'  "{src}" -> "{dst}" [style={style}];')
    lines.append("}")
    return "\n".join(lines)
