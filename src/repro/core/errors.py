"""Errors raised by the HOPE abstract machine and runtime."""

from __future__ import annotations


class HopeError(Exception):
    """Base class for all HOPE-level errors."""


class UnknownAidError(HopeError):
    """An operation referenced an assumption identifier that was never created."""


class UnknownProcessError(HopeError):
    """An operation referenced a process the machine has never seen."""


class ResolutionConflictError(HopeError):
    """Conflicting or repeated affirm/deny/free_of on one assumption identifier.

    The paper (§5.2): "more than one affirm or deny primitive applied to a
    single assumption identifier, in any combination, is a user error, and
    the meaning is undefined."  We refuse to leave it undefined: in strict
    mode any second resolution raises; in lenient mode redundant
    same-direction resolutions are no-ops and only contradictions raise.
    """


class FinalizePreconditionError(HopeError):
    """finalize(A) was attempted while A.IDO was non-empty (violates Eq 20)."""


class IntervalStateError(HopeError):
    """An interval was used in a state that should be unreachable.

    E.g. rolling back an interval that is already definite — Theorem 5.2
    says this can never happen; reaching it indicates a bug, so it is an
    error rather than a silent no-op.
    """


class MachineInvariantError(HopeError):
    """An internal consistency check failed (e.g. Lemma 5.1 symmetry)."""
