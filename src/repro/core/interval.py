"""Intervals — Definitions 4.3 and 4.4.

An interval is the smallest granularity of rollback: the stretch of a
process history between two guess points.  Each interval carries the
paper's control-variable tuple:

* ``PS``  — Previous State: the checkpoint taken at the guess (Eq 1);
* ``IDO`` — I Depend On: the assumption identifiers this interval's fate
  rides on (Eq 3);
* ``IHD`` — I Have Denied: speculative denies parked until finalize (Eq 16);
* ``PID`` — the owning process (Eq 2).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .aid import AssumptionId


class IntervalState(enum.Enum):
    """An interval is speculative until finalized or rolled back (Def 4.4)."""

    SPECULATIVE = "speculative"
    DEFINITE = "definite"
    ROLLED_BACK = "rolled_back"


_interval_serial = itertools.count(1)


class Interval:
    """One rollback unit in a process history.

    ``ps`` is opaque to the machine: the pure abstract machine stores a
    history index, while the runtime stores a replay checkpoint.  ``aid``
    is the assumption guessed at this interval's head (None for the
    merged implicit-guess interval created by a tagged receive, which may
    introduce several AIDs at once).
    """

    __slots__ = (
        "serial",
        "pid",
        "ps",
        "ido",
        "ihd",
        "aid",
        "parent",
        "start_index",
        "state",
        "spec_affirms",
        "meta",
    )

    def __init__(
        self,
        pid: str,
        ps: Any,
        start_index: int,
        aid: Optional["AssumptionId"] = None,
        parent: Optional["Interval"] = None,
        serial: Optional[int] = None,
    ) -> None:
        self.serial = serial if serial is not None else next(_interval_serial)
        self.pid = pid                      # A.PID (Eq 2)
        self.ps = ps                        # A.PS  (Eq 1)
        #: A.IDO (Eq 3).  The machine rebinds this to an interned,
        #: immutable :class:`repro.core.depset.DepSet` at creation; the
        #: Eq 8/12 updates replace the binding rather than mutating, so a
        #: held reference is always a consistent snapshot.  The plain-set
        #: default only exists for intervals built outside a machine.
        self.ido = set()                        # A.IDO (Eq 3)
        self.ihd: set["AssumptionId"] = set()   # A.IHD (Eq 16)
        self.aid = aid
        self.parent = parent
        self.start_index = start_index
        self.state = IntervalState.SPECULATIVE
        #: AIDs this interval speculatively affirmed — used at rollback to
        #: release them back to PENDING (footnote 2 handling).
        self.spec_affirms: list["AssumptionId"] = []
        #: Free slot for the embedding runtime (e.g. sent-message list).
        self.meta: dict[str, Any] = {}

    @property
    def speculative(self) -> bool:
        return self.state is IntervalState.SPECULATIVE

    @property
    def definite(self) -> bool:
        return self.state is IntervalState.DEFINITE

    @property
    def rolled_back(self) -> bool:
        return self.state is IntervalState.ROLLED_BACK

    @property
    def label(self) -> str:
        head = self.aid.key if self.aid is not None else "recv"
        return f"{self.pid}/I{self.serial}({head})"

    def depends_on(self, aid: "AssumptionId") -> bool:
        """Definition 4.5 dependence, as currently recorded in IDO."""
        return aid in self.ido

    def __repr__(self) -> str:
        ido = "{" + ",".join(sorted(a.key for a in self.ido)) + "}"
        return f"<Interval {self.label} {self.state.value} IDO={ido}>"
