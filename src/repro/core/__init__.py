"""The HOPE abstract machine: the paper's §4–5 semantics, executable.

``Machine`` is pure bookkeeping over processes, intervals, and assumption
identifiers; it performs no I/O and has no clock.  The simulator-embedded
runtime (:mod:`repro.runtime`) drives one ``Machine`` instance and turns
its events into task restarts and message retraction.
"""

from .aid import AidStatus, AssumptionId
from .depset import DepSet, DepSetInterner
from .errors import (
    FinalizePreconditionError,
    HopeError,
    IntervalStateError,
    MachineInvariantError,
    ResolutionConflictError,
    UnknownAidError,
    UnknownProcessError,
)
from .events import (
    AffirmEvent,
    DenyEvent,
    FinalizeEvent,
    GuessEvent,
    GuessSkippedEvent,
    MachineEvent,
    RollbackEvent,
)
from .fossil import FossilStats
from .history import HistoryEntry, ProcessRecord
from .interval import Interval, IntervalState
from .machine import Machine

__all__ = [
    "Machine",
    "AssumptionId",
    "AidStatus",
    "DepSet",
    "DepSetInterner",
    "Interval",
    "IntervalState",
    "ProcessRecord",
    "HistoryEntry",
    "FossilStats",
    "HopeError",
    "UnknownAidError",
    "UnknownProcessError",
    "ResolutionConflictError",
    "FinalizePreconditionError",
    "IntervalStateError",
    "MachineInvariantError",
    "MachineEvent",
    "GuessEvent",
    "GuessSkippedEvent",
    "AffirmEvent",
    "DenyEvent",
    "FinalizeEvent",
    "RollbackEvent",
]
