"""Assumption identifiers (AIDs) — Definition 4.2.

An AID is a first-class reference to an optimistic assumption.  Its one
control variable is ``DOM`` ("Depends On Me"): the set of intervals whose
fate is tied to the assumption.  DOM is invisible to the programmer "in
the same sense that program counters are invisible" (§4); it is exposed
here (read-only by convention) because the verification harness checks
Lemma 5.1 symmetry directly against it.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .interval import Interval


class AidStatus(enum.Enum):
    """Lifecycle of an assumption identifier.

    PENDING   — created by aid_init, not yet resolved.
    AFFIRMED  — definitively confirmed true.
    DENIED    — definitively found false.

    A *speculative* affirm or deny does not change the status: it only
    manipulates the dependency sets (affirm) or is parked in the asserting
    interval's IHD (deny) until that interval is finalized or rolled back.
    """

    PENDING = "pending"
    AFFIRMED = "affirmed"
    DENIED = "denied"


_aid_serial = itertools.count(1)


class AssumptionId:
    """One optimistic assumption, with its DOM dependency set.

    ``name`` is user-chosen and need not be unique; ``serial`` is.  The
    string form (used in message tags and traces) includes both.
    """

    __slots__ = ("name", "serial", "dom", "status", "resolved_by", "speculative_affirmer")

    def __init__(self, name: str, serial: Optional[int] = None) -> None:
        self.name = name
        self.serial = serial if serial is not None else next(_aid_serial)
        #: X.DOM — intervals that depend on this assumption (Def 4.2).
        self.dom: set["Interval"] = set()
        self.status = AidStatus.PENDING
        #: Diagnostic: which process performed the definite resolution.
        self.resolved_by: Optional[str] = None
        #: The speculative interval whose affirm(X) emptied DOM, if any.
        #: Needed so a rollback of that interval can release the AID back
        #: to PENDING (footnote 2: rollback of a speculative affirm is a
        #: conservative deny; the re-execution may then resolve X afresh).
        self.speculative_affirmer: Optional["Interval"] = None

    @property
    def key(self) -> str:
        """Globally unique string identity, safe to put in message tags."""
        return f"{self.name}#{self.serial}"

    @property
    def pending(self) -> bool:
        return self.status is AidStatus.PENDING

    @property
    def affirmed(self) -> bool:
        return self.status is AidStatus.AFFIRMED

    @property
    def denied(self) -> bool:
        return self.status is AidStatus.DENIED

    def __repr__(self) -> str:
        return f"<AID {self.key} {self.status.value} |DOM|={len(self.dom)}>"
