"""Commit-frontier fossil collection — the HOPE analog of Time Warp GVT.

Theorem 6.1 (finalized intervals never roll back) makes everything behind
a process's oldest still-speculative interval *committed*: no future
``Del(H, A)`` can reach it, no rollback can resurrect a dependency on it.
The commit frontier of a process is therefore the start index of its
oldest speculative interval (or its next history index when definite),
and state strictly behind the frontier is fossil — dead weight that only
costs memory and scan time on long runs.

This module reclaims, per collection pass:

* **history prefixes** — committed :class:`~repro.core.history.HistoryEntry`
  rows and dead (finalized or rolled-back) intervals behind each
  process's own frontier (rollback is per-process, so the per-process
  frontier suffices for history);
* **unreachable AIDs** — identifiers no longer referenced by any
  retained interval and not *pinned* by the caller (the runtime pins
  tags of in-flight and queued messages plus user-reachable handles).
  Resolved ones are committed by Theorem 6.1; *pending* ones are
  orphans minted inside rolled-back intervals that nothing can ever
  resolve.  A retired AID leaves ``Machine.aids``; by-object use
  (``guess`` on a held reference) still works, by-key lookup raises;
* **interned DepSets** — table entries unreachable from retained
  intervals, plus *all* the ``id()``-keyed operation memos (which are
  only sound while every operand is strongly held — see
  :meth:`~repro.core.depset.DepSetInterner.compact`);
* **stale resolution-cache entries** — memoized ``resolve_tags`` /
  ``resolve_tag_keys`` results whose key mentions a retired AID, so
  retirement never leaves a cache entry pinning a dead identifier.

The frontier mirrors Time Warp's GVT + fossil collection (compare
``repro.baselines.timewarp.gvt.GvtManager.fossil_collect``): GVT is the
min over unprocessed/in-flight timestamps; the HOPE frontier is the min
over unresolved speculation, with "pinned" tags playing the role of
in-transit messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .aid import AidStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .machine import Machine


class FossilStats:
    """Counters from one collection pass (all zero for a no-op pass)."""

    __slots__ = (
        "history_dropped",
        "intervals_dropped",
        "aids_retired",
        "depsets_dropped",
        "resolve_entries_purged",
    )

    def __init__(self) -> None:
        self.history_dropped = 0
        self.intervals_dropped = 0
        self.aids_retired = 0
        self.depsets_dropped = 0
        self.resolve_entries_purged = 0

    @property
    def reclaimed_anything(self) -> bool:
        return bool(
            self.history_dropped
            or self.intervals_dropped
            or self.aids_retired
            or self.depsets_dropped
            or self.resolve_entries_purged
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FossilStats hist={self.history_dropped} iv={self.intervals_dropped} "
            f"aids={self.aids_retired} depsets={self.depsets_dropped}>"
        )


def collect(machine: "Machine", pinned_keys: frozenset = frozenset()) -> FossilStats:
    """Run one fossil-collection pass over ``machine``.

    Must be called at a quiescent point — not from inside a machine
    primitive or event listener (the runtime defers collection to its
    effect-dispatch boundary for exactly this reason).

    ``pinned_keys`` are AID string keys that must stay resolvable by key
    (``Machine.aid(key)``) even though the machine itself no longer needs
    them — message tags still in flight, handles user code still holds.
    """
    out = FossilStats()

    # 1. History prefixes and dead intervals, per-process frontier.
    for record in machine.processes.values():
        frontier = record.frontier_index()
        dropped_hist, dropped_iv = record.fossilize_before(frontier)
        out.history_dropped += dropped_hist
        out.intervals_dropped += dropped_iv

    # 2. Retire resolved AIDs nothing retained can reach.
    referenced: set = set()
    live_depsets = []
    for record in machine.processes.values():
        for iv in record.intervals:
            referenced.update(iv.ido)
            referenced.update(iv.ihd)
            referenced.update(iv.spec_affirms)
            live_depsets.append(iv.ido)
    retired = []
    for key, aid in machine.aids.items():
        if aid.dom or aid in referenced or key in pinned_keys:
            continue
        retired.append(aid)
    for aid in retired:
        del machine.aids[aid.key]
        if aid.status is AidStatus.AFFIRMED:
            machine.stats["aids_retired_affirmed"] += 1
        elif aid.status is AidStatus.DENIED:
            machine.stats["aids_retired_denied"] += 1
        else:
            # An *orphaned* AID: created inside an interval that later
            # rolled back.  Its aid_init was truncated from the journal,
            # the re-execution minted a fresh serial, and no retained
            # interval, pin, or in-flight tag can name it — nobody can
            # ever resolve it, so it is garbage despite being PENDING.
            machine.stats["aids_retired_pending"] += 1
    out.aids_retired = len(retired)

    # 3. Compact the DepSet interner to what retained intervals reach.
    out.depsets_dropped = machine.depsets.compact(live_depsets)
    if retired and not out.depsets_dropped:
        # Retired AID ids may be recycled once the last reference dies;
        # the id()-keyed memos must not survive that even when the table
        # itself had nothing to drop.
        machine.depsets.clear_memos()

    # 4. Purge resolution-cache entries that mention a retired AID
    # (satellite: retirement must not leave pinned resolution results).
    if retired:
        retired_set = set(retired)
        retired_keys = {a.key for a in retired}
        out.resolve_entries_purged += _purge_cache(
            machine._resolve_cache, lambda tagset: not retired_set.isdisjoint(tagset)
        )
        out.resolve_entries_purged += _purge_cache(
            machine._resolve_key_cache, lambda keys: not retired_keys.isdisjoint(keys)
        )

    machine.stats["fossil_collections"] += 1
    machine.stats["fossil_history_dropped"] += out.history_dropped
    machine.stats["fossil_intervals_dropped"] += out.intervals_dropped
    machine.stats["fossil_aids_retired"] += out.aids_retired
    machine.stats["fossil_depsets_dropped"] += out.depsets_dropped
    return out


def _purge_cache(cache: dict, hits) -> int:
    stale = [k for k in cache if hits(k)]
    for k in stale:
        del cache[k]
    return len(stale)
