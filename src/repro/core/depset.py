"""Hash-consed assumption-dependency sets (the IDO fast path).

Every speculative interval carries IDO, the set of assumption identifiers
its fate rides on (Eq 3).  The naive transcription copies the parent's
set at every guess and re-freezes it for every message tag, which makes a
depth-*n* guess chain cost O(n²) set copies and every send O(|IDO|).

:class:`DepSet` replaces those copies with immutable, *interned* sets:

* one canonical object per distinct member set (per machine), so
  structural equality is pointer equality and re-derived sets are free;
* cached unary/binary operations — ``add``, ``discard``, ``union`` — so
  the Eq 8/12 rewrites that recur across a DOM sweep hit a memo instead
  of rebuilding frozensets;
* a cached message-tag key view (:attr:`DepSet.tag_keys`), so tagging a
  send is O(1) after the first send from a given dependency state.

Interning is scoped to a :class:`DepSetInterner` owned by one
:class:`~repro.core.machine.Machine`; AIDs and DepSets live exactly as
long as their machine, which is what makes the ``id()``-keyed operation
memos sound (CPython ids are stable while an object is strongly held,
and the interner's canonical table holds every DepSet it ever made).

Semantics are untouched: a DepSet behaves exactly like the frozenset of
its members for membership, iteration, comparison, and equality — the
Lemma 5.1 / Theorem 5.1 invariant checks run against DepSets unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .aid import AssumptionId


class DepSet:
    """An immutable, interned set of :class:`AssumptionId`.

    Instances are only created by a :class:`DepSetInterner`; two DepSets
    from the same interner are equal iff they are the same object.
    Comparison against plain ``set``/``frozenset`` falls back to member
    equality so existing tests and user code keep reading naturally.
    """

    __slots__ = ("members", "_interner", "_tag_keys")

    def __init__(self, members: frozenset, interner: "DepSetInterner") -> None:
        self.members = members
        self._interner = interner
        self._tag_keys: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __contains__(self, aid: object) -> bool:
        return aid in self.members

    def __iter__(self) -> Iterator["AssumptionId"]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __bool__(self) -> bool:
        return bool(self.members)

    def __hash__(self) -> int:
        return hash(self.members)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DepSet):
            if other._interner is self._interner:
                return other is self
            return self.members == other.members
        if isinstance(other, (set, frozenset)):
            return self.members == other
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, DepSet):
            return self is other or self.members <= other.members
        return self.members <= other

    def __lt__(self, other) -> bool:
        if isinstance(other, DepSet):
            return self is not other and self.members < other.members
        return self.members < other

    def __ge__(self, other) -> bool:
        if isinstance(other, DepSet):
            return self is other or self.members >= other.members
        return self.members >= other

    def __gt__(self, other) -> bool:
        if isinstance(other, DepSet):
            return self is not other and self.members > other.members
        return self.members > other

    def __or__(self, other) -> "DepSet":
        if isinstance(other, DepSet):
            return self._interner.union(self, other)
        return self._interner.intern(self.members | frozenset(other))

    def __sub__(self, other) -> "DepSet":
        return self._interner.intern(self.members - frozenset(other))

    def __and__(self, other) -> "DepSet":
        if isinstance(other, DepSet):
            other = other.members
        return self._interner.intern(self.members & frozenset(other))

    def isdisjoint(self, other: Iterable) -> bool:
        return self.members.isdisjoint(other)

    # ------------------------------------------------------------------
    # interned views
    # ------------------------------------------------------------------
    @property
    def tag_keys(self) -> frozenset:
        """The message-tag view: the members' string keys, computed once.

        Sends tag messages with the sender's current dependencies; with
        interning, every send from the same dependency state reuses this
        one frozenset instead of re-deriving it per message.
        """
        keys = self._tag_keys
        if keys is None:
            keys = self._tag_keys = frozenset(a.key for a in self.members)
        return keys

    def __repr__(self) -> str:
        inner = ",".join(sorted(a.key for a in self.members)) or "∅"
        return f"DepSet{{{inner}}}"


class DepSetInterner:
    """Hash-consing table plus operation memos for one machine's DepSets.

    ``stats`` is the owning machine's counter dict (shared by reference);
    the interner bumps ``depset_hits`` on every memoized operation and
    ``depset_misses`` when a genuinely new set has to be built, so the
    benchmark layer can report interning effectiveness without a second
    bookkeeping pass.
    """

    def __init__(self, stats: Optional[dict] = None) -> None:
        if stats is None:
            stats = {}
        stats.setdefault("depset_hits", 0)
        stats.setdefault("depset_misses", 0)
        self.stats = stats
        self._table: dict[frozenset, DepSet] = {}
        #: (id(base), id(aid)) -> base ∪ {aid}
        self._add_memo: dict[tuple[int, int], DepSet] = {}
        #: (id(base), id(aid)) -> base ∖ {aid}
        self._discard_memo: dict[tuple[int, int], DepSet] = {}
        #: (id(a), id(b)) -> a ∪ b
        self._union_memo: dict[tuple[int, int], DepSet] = {}
        self.empty = self.intern(frozenset())

    def __len__(self) -> int:
        """Number of distinct dependency sets ever interned."""
        return len(self._table)

    # ------------------------------------------------------------------
    # canonicalisation
    # ------------------------------------------------------------------
    def intern(self, members: Iterable) -> DepSet:
        """Return the canonical DepSet for ``members``."""
        if isinstance(members, DepSet):
            return members
        if not isinstance(members, frozenset):
            members = frozenset(members)
        ds = self._table.get(members)
        if ds is None:
            ds = DepSet(members, self)
            self._table[members] = ds
            self.stats["depset_misses"] += 1
        else:
            self.stats["depset_hits"] += 1
        return ds

    def compact(self, live: Iterable[DepSet]) -> int:
        """Drop interned sets not in ``live`` (plus ∅) and all memos.

        Fossil collection calls this with the DepSets still reachable from
        live machine state.  The memos are cleared wholesale because their
        ``id()`` keys are only sound while the table strongly holds every
        operand — a retained memo entry whose operand was dropped could
        collide with a recycled id.  Dropped sets may be re-derived later;
        they re-intern as fresh (but equal) canonical objects.
        """
        keep = {ds.members: ds for ds in live if isinstance(ds, DepSet)}
        keep[self.empty.members] = self.empty
        dropped = len(self._table) - len(keep)
        if dropped <= 0:
            return 0
        self._table = keep
        self.clear_memos()
        return dropped

    def clear_memos(self) -> None:
        """Drop the operation memos (their ``id()`` keys are only sound
        while every operand — DepSet *and* AID — stays strongly held)."""
        self._add_memo.clear()
        self._discard_memo.clear()
        self._union_memo.clear()

    # ------------------------------------------------------------------
    # memoized operations (the machine's hot rewrites)
    # ------------------------------------------------------------------
    def add(self, base: DepSet, aid: "AssumptionId") -> DepSet:
        """``base ∪ {aid}`` — the Eq 3 inheritance step of a guess."""
        if aid in base.members:
            self.stats["depset_hits"] += 1
            return base
        key = (id(base), id(aid))
        ds = self._add_memo.get(key)
        if ds is None:
            ds = self.intern(base.members | {aid})
            self._add_memo[key] = ds
        else:
            self.stats["depset_hits"] += 1
        return ds

    def extend(self, base: DepSet, aids: Iterable["AssumptionId"]) -> DepSet:
        """Fold :meth:`add` over ``aids`` (implicit guesses from a tag)."""
        ds = base
        for aid in aids:
            ds = self.add(ds, aid)
        return ds

    def discard(self, base: DepSet, aid: "AssumptionId") -> DepSet:
        """``base ∖ {aid}`` — the Eq 8/12 release of a resolved AID."""
        if aid not in base.members:
            self.stats["depset_hits"] += 1
            return base
        key = (id(base), id(aid))
        ds = self._discard_memo.get(key)
        if ds is None:
            ds = self.intern(base.members - {aid})
            self._discard_memo[key] = ds
        else:
            self.stats["depset_hits"] += 1
        return ds

    def union(self, a: DepSet, b: DepSet) -> DepSet:
        """``a ∪ b`` — the Eq 12 dependency merge of a speculative affirm."""
        if a is b or not b.members:
            self.stats["depset_hits"] += 1
            return a
        if not a.members:
            self.stats["depset_hits"] += 1
            return b
        key = (id(a), id(b))
        ds = self._union_memo.get(key)
        if ds is None:
            ds = self.intern(a.members | b.members)
            self._union_memo[key] = ds
        else:
            self.stats["depset_hits"] += 1
        return ds
