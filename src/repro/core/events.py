"""Machine event notifications.

The abstract machine is pure bookkeeping; embedding layers (the HOPE
runtime, the verification oracle) subscribe to these events to perform
real-world effects — restarting a task after a rollback, retracting sent
messages, recording statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .aid import AssumptionId
    from .interval import Interval


@dataclass(frozen=True)
class MachineEvent:
    """Base class for all machine notifications."""

    pid: str


@dataclass(frozen=True)
class GuessEvent(MachineEvent):
    """A new speculative interval was created (Eq 1-6)."""

    interval: "Interval"


@dataclass(frozen=True)
class GuessSkippedEvent(MachineEvent):
    """A guess on an already-resolved AID returned immediately."""

    aid: "AssumptionId"
    value: bool


@dataclass(frozen=True)
class AffirmEvent(MachineEvent):
    """An affirm was executed; ``definite`` distinguishes Eq 7-9 from Eq 10-14."""

    aid: "AssumptionId"
    definite: bool


@dataclass(frozen=True)
class DenyEvent(MachineEvent):
    """A deny was executed; speculative denies are parked in IHD (Eq 16)."""

    aid: "AssumptionId"
    definite: bool


@dataclass(frozen=True)
class FinalizeEvent(MachineEvent):
    """An interval became definite (Eq 20-23)."""

    interval: "Interval"


@dataclass(frozen=True)
class RollbackEvent(MachineEvent):
    """A process was rolled back to an interval's guess point (Eq 24).

    ``resume_interval`` is the interval whose checkpoint the process
    resumes from (its guess now returns False); ``discarded`` lists every
    interval destroyed by the history truncation, oldest first.
    """

    resume_interval: "Interval"
    discarded: tuple = field(default_factory=tuple)
    cause: Optional["AssumptionId"] = None
