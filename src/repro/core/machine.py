"""The HOPE abstract machine — a direct transcription of §5's equations.

This module is the single source of truth for the semantics.  Both the
pure theorem-verification tests and the simulator-embedded runtime drive
this machine; the runtime subscribes to its events to turn bookkeeping
into real effects (task restarts, message retraction).

Equation cross-reference (paper §5 → code):

=====  =======================================================
Eq     Where
=====  =======================================================
1-6    :meth:`Machine.guess` / :meth:`Machine._make_interval`
7-9    :meth:`Machine._affirm_definite`
10-14  :meth:`Machine._affirm_speculative`
15     :meth:`Machine._deny_definite` / :meth:`Machine._deny_cascade`
16     :meth:`Machine._deny_speculative`
17-19  :meth:`Machine.free_of`
20-23  :meth:`Machine._finalize`
24     :meth:`Machine._rollback`
=====  =======================================================

Semantic decisions beyond the paper's letter (see DESIGN.md §3):

* **Resolution conflicts.**  The paper declares repeated/conflicting
  affirm/deny "a user error, and the meaning is undefined".  In
  ``strict`` mode any second resolution of an AID raises
  :class:`ResolutionConflictError`.  In lenient mode (used by the
  runtime, where rollback legitimately re-executes resolution
  statements) a redundant same-direction resolution is a no-op and only
  a contradiction raises.
* **Speculative resolutions and rollback.**  A speculative deny dies in
  the interval's IHD (paper: "they die with the interval").  A
  speculative affirm that is rolled back is "equivalent to a deny"
  (footnote 2) for its *dependents* — which the IDO-merge at affirm time
  already arranges — and releases the AID back to PENDING so the
  re-executed program may resolve it afresh.
* **Guessing a resolved AID.**  ``guess(x)`` on a definitively affirmed
  AID returns True without creating an interval (the assumption is
  known); on a denied AID it returns False immediately (the rollback it
  would suffer is collapsed to an instant False).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .aid import AidStatus, AssumptionId
from .depset import DepSet, DepSetInterner
from .errors import (
    FinalizePreconditionError,
    HopeError,
    IntervalStateError,
    MachineInvariantError,
    ResolutionConflictError,
    UnknownAidError,
    UnknownProcessError,
)
from .events import (
    AffirmEvent,
    DenyEvent,
    FinalizeEvent,
    GuessEvent,
    GuessSkippedEvent,
    MachineEvent,
    RollbackEvent,
)
from .history import ProcessRecord
from .interval import Interval, IntervalState


def _aid_order(aid: AssumptionId) -> int:
    return aid.serial


def _interval_order(interval: Interval) -> tuple:
    return (interval.pid, interval.start_index, interval.serial)


#: Resolution of an empty tag set: alive, no dependencies.  Shared so the
#: per-delivery fast path allocates nothing.
_LIVE_NO_DEPS: tuple[bool, frozenset] = (True, frozenset())


class Machine:
    """The abstract machine of §4, with the five primitives of §3.

    ``strict`` selects resolution-conflict behaviour (see module
    docstring).  Subscribed listeners receive a :class:`MachineEvent` for
    every guess, affirm, deny, finalize and rollback.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.processes: dict[str, ProcessRecord] = {}
        self.aids: dict[str, AssumptionId] = {}
        # Per-machine serial counters keep runs with equal seeds fully
        # reproducible (global counters would leak across Machine
        # instances and change AID/interval labels between runs).
        self._aid_serials = 0
        self._interval_serials = 0
        self._listeners: list[Callable[[MachineEvent], None]] = []
        self.stats = {
            "guesses": 0,
            "implicit_guesses": 0,
            "affirms": 0,
            "denies": 0,
            "free_ofs": 0,
            "finalizes": 0,
            "rollbacks": 0,
            "intervals_discarded": 0,
            "resolve_cache_hits": 0,
            "resolve_cache_misses": 0,
            "fossil_collections": 0,
            "fossil_history_dropped": 0,
            "fossil_intervals_dropped": 0,
            "fossil_aids_retired": 0,
            "fossil_depsets_dropped": 0,
            # Status tallies of retired AIDs, so aggregate counts stay
            # reportable after the AID objects are gone.
            "aids_retired_affirmed": 0,
            "aids_retired_denied": 0,
            "aids_retired_pending": 0,
        }
        #: Hash-consed IDO sets: one canonical DepSet per distinct member
        #: set, with memoized add/discard/union (see :mod:`.depset`).
        self.depsets = DepSetInterner(stats=self.stats)
        #: Resolution epoch: bumped by every affirm, deny, finalize and
        #: rollback.  The resolve_tags caches are only valid within one
        #: epoch — any dependency-landscape change flushes them.
        self.resolution_epoch = 0
        self._resolve_cache: dict[frozenset, tuple[bool, frozenset]] = {}
        self._resolve_key_cache: dict[frozenset, tuple[bool, frozenset]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def create_process(self, name: str) -> ProcessRecord:
        """Register a process; idempotent."""
        record = self.processes.get(name)
        if record is None:
            record = ProcessRecord(name)
            self.processes[name] = record
            record.append("init")
        return record

    def process(self, name: str) -> ProcessRecord:
        record = self.processes.get(name)
        if record is None:
            raise UnknownProcessError(f"unknown process {name!r}")
        return record

    def aid_init(self, name: str) -> AssumptionId:
        """Create a fresh assumption identifier (the paper's aid_init)."""
        self._aid_serials += 1
        aid = AssumptionId(name, serial=self._aid_serials)
        self.aids[aid.key] = aid
        return aid

    def aid(self, key: str) -> AssumptionId:
        aid = self.aids.get(key)
        if aid is None:
            raise UnknownAidError(f"unknown assumption identifier {key!r}")
        return aid

    def offset_serials(self, base: int) -> None:
        """Start the AID/interval serial counters at ``base``.

        Sharded deployments (the parallel backend) give each shard's
        machine a disjoint serial range so AID keys like ``"h4#2"`` are
        globally unique — two shards must never mint the same key for
        different assumptions.  Call before the first ``aid_init``.
        """
        if self._aid_serials or self._interval_serials:
            raise HopeError("offset_serials must be called before any aid_init/guess")
        self._aid_serials = base
        self._interval_serials = base

    def adopt_aid(self, key: str) -> AssumptionId:
        """Fetch ``key``, creating a *mirror* of a remote AID if unknown.

        A mirror starts pending and is resolved by relayed definite
        affirms/denies from the shard that owns it; its serial is parsed
        back out of the key so ``repr`` and ordering match the owner's.
        Local keys return the existing object — adopting is idempotent
        and never shadows a locally minted AID.
        """
        aid = self.aids.get(key)
        if aid is None:
            name, sep, serial = key.rpartition("#")
            if not sep or not serial.isdigit():
                raise UnknownAidError(f"malformed assumption identifier {key!r}")
            aid = AssumptionId(name, serial=int(serial))
            self.aids[key] = aid
        return aid

    def subscribe(self, listener: Callable[[MachineEvent], None]) -> None:
        self._listeners.append(listener)

    def _bump_resolution_epoch(self) -> None:
        """Invalidate the tag-resolution caches.

        Called by every state change that can alter what a tag means at
        delivery time: affirms (both modes — a speculative affirm changes
        the affirmer graph), denies, finalizes (parked denies become
        definite, speculative affirms become unrevocable) and rollbacks
        (a dead affirmer releases its AID).  Guesses do not bump: a
        pending, unaffirmed tag resolves to itself regardless of how many
        intervals depend on it.
        """
        self.resolution_epoch += 1
        if self._resolve_cache:
            self._resolve_cache = {}
        if self._resolve_key_cache:
            self._resolve_key_cache = {}

    def _emit(self, event: MachineEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # ordinary computation
    # ------------------------------------------------------------------
    def step(self, pid: str, label: str, **detail) -> None:
        """Record an ordinary (non-HOPE) event in the process history."""
        record = self.process(pid)
        record.append("event", label=label, **detail)

    # ------------------------------------------------------------------
    # guess — Eq 1-6
    # ------------------------------------------------------------------
    def guess(self, pid: str, aid: AssumptionId, ps: object = None) -> bool:
        """Execute guess(X) in process ``pid``; returns the G value.

        ``ps`` is the checkpoint payload stored in A.PS (Eq 1) — the pure
        machine stores the history index if None is given; the runtime
        passes its replay checkpoint.
        """
        record = self.process(pid)
        self.stats["guesses"] += 1
        if aid.affirmed:
            record.g = True
            record.append("guess_skip", aid=aid.key, value=True)
            self._emit(GuessSkippedEvent(pid, aid, True))
            return True
        if aid.denied:
            record.g = False
            record.append("guess_skip", aid=aid.key, value=False)
            self._emit(GuessSkippedEvent(pid, aid, False))
            return False
        self._make_interval(record, [aid], head_aid=aid, ps=ps)
        return True

    def guess_many(
        self,
        pid: str,
        aids: Iterable[AssumptionId],
        ps: object = None,
    ) -> Optional[Interval]:
        """Implicit guesses from a tagged receive (§3: the receiver
        "implicitly applies a guess primitive to each of the AIDs in the
        message's tag").

        All tag AIDs not already among the receiver's dependencies are
        folded into a single new interval whose checkpoint sits just
        before the receive — the per-interval rollback granularity of
        Def 4.4.  Returns the interval, or None when the tags add no new
        dependencies (no checkpoint is needed then).

        Callers must filter out denied AIDs first (a message tagged with a
        denied AID is from a dead speculative world and must be dropped,
        which is the runtime's job).
        """
        record = self.process(pid)
        current_deps = record.current.ido if record.current is not None else self.depsets.empty
        fresh = [a for a in aids if a.pending and a not in current_deps]
        if not fresh:
            return None
        self.stats["implicit_guesses"] += len(fresh)
        return self._make_interval(record, fresh, head_aid=None, ps=ps)

    def _make_interval(
        self,
        record: ProcessRecord,
        new_aids: list[AssumptionId],
        head_aid: Optional[AssumptionId],
        ps: object,
    ) -> Interval:
        start_index = record._next_index
        if ps is None:
            ps = start_index
        self._interval_serials += 1
        interval = Interval(
            pid=record.name,
            ps=ps,                      # Eq 1 (A.PS) and Eq 2 (A.PID)
            start_index=start_index,
            aid=head_aid,
            parent=record.current,
            serial=self._interval_serials,
        )
        inherited = record.current.ido if record.current is not None else self.depsets.empty
        interval.ido = self.depsets.extend(inherited, new_aids)   # Eq 3
        # Eq 4, generalized to every member of A.IDO: Lemma 5.1 demands
        # X ∈ A.IDO ⟺ A ∈ X.DOM, and Theorem 5.1's proof relies on
        # inherited dependencies being in DOM (the definite deny of an
        # inherited X must reach this interval through X.DOM).
        for aid in interval.ido:
            aid.dom.add(interval)
        record.intervals.append(interval)
        record.current = interval                       # Eq 5: S.I ← A
        record.speculative.add(interval)                # Eq 5: S.IS ∪ {A}
        record.g = True                                 # Eq 5: S.G ← True
        record.append(                                  # Eq 6: HP ← HP · S
            "guess",
            aid=head_aid.key if head_aid is not None else None,
            tags=tuple(sorted(a.key for a in new_aids)),
        )
        self._emit(GuessEvent(record.name, interval))
        return interval

    # ------------------------------------------------------------------
    # affirm — Eq 7-14
    # ------------------------------------------------------------------
    def affirm(self, pid: str, aid: AssumptionId, via: str = "affirm") -> None:
        """Execute affirm(X) in process ``pid``."""
        record = self.process(pid)
        self.stats["affirms"] += 1
        if not self._check_resolution(aid, wanted=AidStatus.AFFIRMED, pid=pid, via=via):
            record.append("affirm_noop", aid=aid.key, via=via)
            return
        self._bump_resolution_epoch()
        current = record.current
        if current is None:
            self._affirm_definite(record, aid, via)
        else:
            self._affirm_speculative(record, current, aid, via)

    def _affirm_definite(self, record: ProcessRecord, aid: AssumptionId, via: str) -> None:
        """Definite affirm: Eq 7-9.  Cannot be undone."""
        aid.status = AidStatus.AFFIRMED
        aid.resolved_by = record.name
        record.append("affirm", aid=aid.key, mode="definite", via=via)
        self._shed_affirmed(aid)
        self._emit(AffirmEvent(record.name, aid, definite=True))

    def _shed_affirmed(self, aid: AssumptionId) -> None:
        """The Eq 7-9 set operations: release every dependent of an
        affirmed AID, finalizing those whose IDO empties."""
        for dependent in sorted(aid.dom, key=_interval_order):   # Eq 7: ∀B ∈ X.DOM
            if not dependent.speculative:
                continue
            dependent.ido = self.depsets.discard(dependent.ido, aid)   # Eq 8
            aid.dom.discard(dependent)                           # Eq 9
            self.processes[dependent.pid].append(
                "ido_update", aid=aid.key, interval=dependent.label
            )
            if not dependent.ido:                                # Eq 9: finalize
                self._finalize(dependent)
        aid.dom.clear()

    def _affirm_speculative(
        self,
        record: ProcessRecord,
        current: Interval,
        aid: AssumptionId,
        via: str,
    ) -> None:
        """Speculative affirm: Eq 10-14.  May later be undone by rollback."""
        aid.speculative_affirmer = current
        current.spec_affirms.append(aid)
        record.append("affirm", aid=aid.key, mode="speculative", via=via)
        dom_snapshot = sorted(aid.dom, key=_interval_order)
        # current.ido is an immutable interned DepSet, so it doubles as
        # the loop snapshot (a dependent's Eq 12 rewrite cannot alias it).
        affirmer_ido = current.ido
        for dependent in dom_snapshot:                           # Eq 11: ∀B ∈ X.DOM
            if not dependent.speculative:
                continue
            for upstream in sorted(affirmer_ido, key=_aid_order):
                upstream.dom.add(dependent)                      # Eq 10
            dependent.ido = self.depsets.discard(                # Eq 12
                self.depsets.union(dependent.ido, affirmer_ido), aid
            )
            aid.dom.discard(dependent)                           # Eq 14
            self.processes[dependent.pid].append(
                "ido_update", aid=aid.key, interval=dependent.label
            )
            if not dependent.ido:                                # Eq 13
                self._finalize(dependent)
        aid.dom.clear()
        self._emit(AffirmEvent(record.name, aid, definite=False))

    # ------------------------------------------------------------------
    # deny — Eq 15-16
    # ------------------------------------------------------------------
    def deny(self, pid: str, aid: AssumptionId, via: str = "deny") -> None:
        """Execute deny(X) in process ``pid``."""
        record = self.process(pid)
        self.stats["denies"] += 1
        if not self._check_resolution(aid, wanted=AidStatus.DENIED, pid=pid, via=via):
            record.append("deny_noop", aid=aid.key, via=via)
            return
        self._bump_resolution_epoch()
        current = record.current
        definite = current is None or aid in current.ido         # Eq 15 guard
        if definite:
            self._deny_definite(record, aid, via)
        else:
            self._deny_speculative(record, current, aid, via)

    def _deny_definite(self, record: ProcessRecord, aid: AssumptionId, via: str) -> None:
        """Definite deny: Eq 15.  Rolls back every dependent of X.

        Note the Eq 15 guard includes X ∈ A.IDO: a process denying an
        assumption it itself depends on makes the deny definite — the
        denier is about to roll itself back, but the denial survives.
        """
        aid.status = AidStatus.DENIED
        aid.resolved_by = record.name
        record.append("deny", aid=aid.key, mode="definite", via=via)
        self._emit(DenyEvent(record.name, aid, definite=True))
        self._deny_cascade(aid)

    def _deny_speculative(
        self,
        record: ProcessRecord,
        current: Interval,
        aid: AssumptionId,
        via: str,
    ) -> None:
        """Speculative deny: Eq 16.  Parked in A.IHD until finalize."""
        current.ihd.add(aid)
        record.append("deny", aid=aid.key, mode="speculative", via=via)
        self._emit(DenyEvent(record.name, aid, definite=False))

    def _deny_cascade(self, aid: AssumptionId) -> None:
        """Roll back all of X.DOM (the ∀B ∈ X.DOM of Eq 15 and Eq 22)."""
        for dependent in sorted(aid.dom, key=_interval_order):
            if dependent.speculative:
                self._rollback(dependent, cause=aid)
        aid.dom.clear()

    # ------------------------------------------------------------------
    # free_of — Eq 17-19
    # ------------------------------------------------------------------
    def free_of(self, pid: str, aid: AssumptionId) -> None:
        """Execute free_of(X): assert the caller is causally free of X.

        Eq 17-19: definite state ⇒ definite affirm; speculative but not
        dependent on X ⇒ speculative affirm; dependent on X ⇒ deny (which
        is definite by the Eq 15 guard, so the violator rolls back —
        Theorem 6.3).
        """
        record = self.process(pid)
        self.stats["free_ofs"] += 1
        current = record.current
        if aid.affirmed or aid.denied:
            # A resolved AID: the constraint is trivially decided.  The
            # interesting case is the re-execution after a free_of-induced
            # self-rollback (Figure 2's WorryWart): X is already denied and
            # the re-executed free_of must be a harmless no-op.
            if current is not None and aid in current.ido:
                raise MachineInvariantError(
                    f"{pid!r} depends on resolved AID {aid.key} — "
                    "a resolved AID must have an empty DOM"
                )
            if self.strict:
                raise ResolutionConflictError(
                    f"free_of({aid.key}) after the AID was already "
                    f"{aid.status.value} (strict mode)"
                )
            record.append("free_of_noop", aid=aid.key)
            return
        record.append("free_of", aid=aid.key)
        if current is None:
            self.affirm(pid, aid, via="free_of")                 # Eq 17
        elif aid not in current.ido:
            self.affirm(pid, aid, via="free_of")                 # Eq 18
        else:
            self.deny(pid, aid, via="free_of")                   # Eq 19

    # ------------------------------------------------------------------
    # finalize — Eq 20-23
    # ------------------------------------------------------------------
    def _finalize(self, interval: Interval) -> None:
        """Make ``interval`` definite.  Internal: not a user primitive (§5.2)."""
        if interval.ido:                                         # Eq 20
            raise FinalizePreconditionError(
                f"finalize({interval.label}) with non-empty IDO "
                f"{sorted(a.key for a in interval.ido)}"
            )
        if not interval.speculative:
            return
        self.stats["finalizes"] += 1
        self._bump_resolution_epoch()
        interval.state = IntervalState.DEFINITE
        record = self.processes[interval.pid]
        record.speculative.discard(interval)                     # Eq 21
        record.append("finalize", interval=interval.label)
        if record.current is interval and record.speculative:
            raise MachineInvariantError(
                f"current interval {interval.label} finalized while older "
                f"speculative intervals remain — violates the Theorem 5.1 "
                f"IDO-subset chain"
            )
        self._emit(FinalizeEvent(record.name, interval))
        # Lemma 6.1: a speculative affirm whose asserting interval is made
        # definite has the same effect as a definite affirm — record the
        # now-unrevocable status and release any dependents the AID
        # accumulated after the speculative affirm (e.g. later guesses).
        for affirmed in interval.spec_affirms:
            if affirmed.pending:
                affirmed.status = AidStatus.AFFIRMED
                affirmed.resolved_by = interval.pid
                self._emit(AffirmEvent(interval.pid, affirmed, definite=True))
                self._shed_affirmed(affirmed)
        for parked in sorted(interval.ihd, key=_aid_order):      # Eq 22
            if parked.denied:
                continue
            if parked.affirmed:
                # A definite affirm landed while this deny was parked.
                # The paper calls conflicting resolutions a user error with
                # undefined meaning; we resolve the race deterministically:
                # in lenient mode the earlier definite affirm wins and the
                # parked deny dies; strict mode refuses.
                if self.strict:
                    raise ResolutionConflictError(
                        f"speculative deny({parked.key}) became definite at "
                        f"finalize({interval.label}) but the AID was already "
                        "affirmed"
                    )
                continue
            parked.status = AidStatus.DENIED
            parked.resolved_by = interval.pid
            self._emit(DenyEvent(interval.pid, parked, definite=True))
            self._deny_cascade(parked)
        if not record.speculative:                               # Eq 23
            record.current = None
            record.append("definite")

    # ------------------------------------------------------------------
    # rollback — Eq 24
    # ------------------------------------------------------------------
    def _rollback(self, interval: Interval, cause: Optional[AssumptionId] = None) -> None:
        """Roll back ``interval``: truncate history, discard descendants.

        Internal: only reachable through a definite deny (Eq 15/22).
        """
        if interval.definite:
            raise IntervalStateError(
                f"rollback of definite interval {interval.label} — "
                "impossible by Theorem 5.2"
            )
        if interval.rolled_back:
            return
        self._bump_resolution_epoch()
        record = self.processes[interval.pid]
        discarded = [
            iv
            for iv in record.intervals
            if iv.speculative and iv.start_index >= interval.start_index
        ]
        for dead in discarded:
            dead.state = IntervalState.ROLLED_BACK
            record.speculative.discard(dead)
            for dep_aid in dead.ido:
                dep_aid.dom.discard(dead)
            for affirmed in dead.spec_affirms:
                # Footnote 2: the rollback of a speculative affirm acts as
                # a deny for X's former dependents (already arranged by the
                # Eq 12 IDO merge); X itself returns to PENDING so the
                # re-execution may resolve it again.
                if affirmed.speculative_affirmer is dead:
                    affirmed.speculative_affirmer = None
            dead.spec_affirms.clear()
        self.stats["rollbacks"] += 1
        self.stats["intervals_discarded"] += len(discarded)
        record.truncate_from(interval.start_index)               # Eq 24: Del(HP, A)
        # Resume into the newest interval that survives the truncation.
        # This is usually interval.parent, but the parent may have been
        # finalized in the meantime — a finalized prefix stays definite
        # (Theorem 5.2), so the process resumes with I = ∅ in that case.
        survivors = [
            iv
            for iv in record.intervals
            if iv.speculative and iv.start_index < interval.start_index
        ]
        record.current = survivors[-1] if survivors else None
        record.g = False                                         # Eq 24: S.G ← False
        record.rollback_count += 1
        record.append(
            "resume",
            from_interval=interval.label,
            aid=interval.aid.key if interval.aid is not None else None,
            cause=cause.key if cause is not None else None,
        )
        self._emit(
            RollbackEvent(
                record.name,
                resume_interval=interval,
                discarded=tuple(discarded),
                cause=cause,
            )
        )

    # ------------------------------------------------------------------
    # resolution-conflict policy
    # ------------------------------------------------------------------
    def _check_resolution(
        self,
        aid: AssumptionId,
        wanted: AidStatus,
        pid: str,
        via: str,
    ) -> bool:
        """Gate a resolution attempt.  Returns True when it should proceed.

        Strict mode: any second resolution raises.  Lenient: redundant
        same-direction resolutions return False (no-op); contradictions
        raise.  A second affirm while a live speculative affirm is pending
        is a user error in both modes (two distinct intervals claiming the
        same assumption).
        """
        if aid.status is not AidStatus.PENDING:
            if self.strict:
                raise ResolutionConflictError(
                    f"{via}({aid.key}) by {pid!r}: AID already "
                    f"{aid.status.value} by {aid.resolved_by!r} (strict mode)"
                )
            if aid.status is wanted:
                return False
            raise ResolutionConflictError(
                f"{via}({aid.key}) by {pid!r} conflicts with earlier "
                f"{aid.status.value} by {aid.resolved_by!r}"
            )
        affirmer = aid.speculative_affirmer
        if affirmer is not None and affirmer.speculative:
            raise ResolutionConflictError(
                f"{via}({aid.key}) by {pid!r}: AID already speculatively "
                f"affirmed by live interval {affirmer.label}"
            )
        return True

    # ------------------------------------------------------------------
    # invariants (used by tests and the model checker)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`MachineInvariantError` on any broken invariant.

        Checked facts:

        * Lemma 5.1 symmetry: X ∈ A.IDO ⟺ A ∈ X.DOM, over live intervals
          and pending AIDs;
        * S.IS consistency: a process's speculative set is exactly its
          live speculative intervals, and S.I is its newest member;
        * the Theorem 5.1 subset chain: consecutive live intervals of one
          process satisfy earlier.IDO ⊆ later.IDO;
        * resolved AIDs have empty DOM;
        * definite intervals have empty IDO (Eq 20).
        """
        for aid in self.aids.values():
            if not aid.pending and aid.dom:
                raise MachineInvariantError(
                    f"resolved AID {aid.key} has non-empty DOM"
                )
            for member in aid.dom:
                if not member.speculative:
                    raise MachineInvariantError(
                        f"{aid.key}.DOM contains non-speculative {member.label}"
                    )
                if aid not in member.ido:
                    raise MachineInvariantError(
                        f"Lemma 5.1 broken: {member.label} ∈ {aid.key}.DOM "
                        f"but {aid.key} ∉ IDO"
                    )
        for record in self.processes.values():
            live = [iv for iv in record.intervals if iv.speculative]
            if set(live) != record.speculative:
                raise MachineInvariantError(
                    f"{record.name!r}: IS does not match live intervals"
                )
            if record.current is None:
                if record.speculative:
                    raise MachineInvariantError(
                        f"{record.name!r}: I = ∅ but IS non-empty"
                    )
            else:
                if record.current is not (live[-1] if live else None):
                    raise MachineInvariantError(
                        f"{record.name!r}: I is not the newest live interval"
                    )
            for earlier, later in zip(live, live[1:]):
                if not earlier.ido <= later.ido:
                    raise MachineInvariantError(
                        f"Theorem 5.1 subset chain broken in {record.name!r}: "
                        f"{earlier.label}.IDO ⊄ {later.label}.IDO"
                    )
            for interval in record.intervals:
                if interval.definite and interval.ido:
                    raise MachineInvariantError(
                        f"definite interval {interval.label} has non-empty IDO"
                    )
                if interval.speculative:
                    for aid in interval.ido:
                        if interval not in aid.dom:
                            raise MachineInvariantError(
                                f"Lemma 5.1 broken: {aid.key} ∈ "
                                f"{interval.label}.IDO but interval ∉ DOM"
                            )

    # ------------------------------------------------------------------
    # fossil collection (commit frontier)
    # ------------------------------------------------------------------
    def fossil_collect(self, pinned_keys: frozenset = frozenset()):
        """Reclaim committed state behind each process's commit frontier.

        See :mod:`repro.core.fossil` for what is reclaimed and why it is
        sound (Theorem 6.1).  ``pinned_keys`` are AID string keys that
        must remain resolvable by :meth:`aid` — callers embedding the
        machine (the runtime) pin tags of in-flight messages and
        user-held handles.  Must be called between primitives, never from
        an event listener.  Returns :class:`repro.core.fossil.FossilStats`.
        """
        from .fossil import collect

        return collect(self, pinned_keys)

    # ------------------------------------------------------------------
    # crash support (optimistic recovery)
    # ------------------------------------------------------------------
    def forget_process(self, pid: str) -> list[Interval]:
        """Discard a crashed process's speculative machine state.

        A crash destroys the incarnation that could have been rolled back,
        so its live intervals are marked rolled-back and unlinked from DOM
        sets — but *without* the resume bookkeeping of Eq 24: there is no
        incarnation to resume, and messages the process sent speculatively
        are NOT retracted; their fate rides on their AID tags, which is
        precisely the optimistic-recovery assumption of [24].  Speculative
        affirms by the crashed process release their AIDs to PENDING (the
        recovery procedure re-resolves them); parked IHD denies die.

        Returns the discarded intervals (the runtime uses them to mark
        outputs uncommitted).
        """
        record = self.process(pid)
        self._bump_resolution_epoch()
        discarded = [iv for iv in record.intervals if iv.speculative]
        for dead in discarded:
            dead.state = IntervalState.ROLLED_BACK
            record.speculative.discard(dead)
            for dep_aid in dead.ido:
                dep_aid.dom.discard(dead)
            for affirmed in dead.spec_affirms:
                if affirmed.speculative_affirmer is dead:
                    affirmed.speculative_affirmer = None
            dead.spec_affirms.clear()
        record.current = None
        record.g = None
        record.truncate_from(0)
        record.append("crash", discarded=len(discarded))
        return discarded

    # ------------------------------------------------------------------
    # tag resolution (for message delivery)
    # ------------------------------------------------------------------
    def resolve_tags(
        self, tags: Iterable[AssumptionId]
    ) -> tuple[bool, frozenset[AssumptionId]]:
        """Map a message's AID tags to the dependencies they mean *now*.

        Tags are attached at send time but interpreted at delivery time,
        by which point the assumption landscape may have shifted:

        * an **affirmed** tag imposes no dependency (the assumption held);
        * a **denied** tag marks the message as coming from a discarded
          speculative world — the message is dead and must be dropped
          (returns ``(False, ∅)``);
        * a **speculatively affirmed** tag is replaced by the affirming
          interval's own current dependencies (recursively) — this is the
          delivery-side mirror of the Eq 12 IDO merge, and what makes
          Theorem 6.3 hold across in-flight messages;
        * an untouched **pending** tag stands for itself.

        Results are memoized per distinct tag set; the cache lives for
        one resolution epoch (any affirm/deny/finalize/rollback flushes
        it), so repeated deliveries between dependency changes — the
        common case in a message-heavy workload — skip the graph walk.
        """
        tagset = frozenset(tags)
        cached = self._resolve_cache.get(tagset)
        if cached is not None:
            self.stats["resolve_cache_hits"] += 1
            return cached
        self.stats["resolve_cache_misses"] += 1
        deps: set[AssumptionId] = set()
        stack = list(tagset)
        seen: set[AssumptionId] = set()
        result: tuple[bool, frozenset[AssumptionId]] = (True, frozenset())
        while stack:
            aid = stack.pop()
            if aid in seen:
                continue
            seen.add(aid)
            if aid.denied:
                result = (False, frozenset())
                break
            if aid.affirmed:
                continue
            affirmer = aid.speculative_affirmer
            if affirmer is not None and affirmer.speculative:
                stack.extend(affirmer.ido)
            else:
                deps.add(aid)
        else:
            result = (True, frozenset(deps))
        self._resolve_cache[tagset] = result
        return result

    def resolve_tag_keys(
        self, tag_keys: frozenset
    ) -> tuple[bool, frozenset[AssumptionId]]:
        """:meth:`resolve_tags`, keyed directly on a message's string-key
        tag set.  The delivery hot path hits this cache without even
        looking the AIDs up; it shares the epoch rule with
        :meth:`resolve_tags`."""
        if not tag_keys:
            # Untagged messages never consult the resolution graph at all;
            # skip the cache (and its hit counters) entirely.
            return _LIVE_NO_DEPS
        cached = self._resolve_key_cache.get(tag_keys)
        if cached is not None:
            self.stats["resolve_cache_hits"] += 1
            return cached
        result = self.resolve_tags(self.aid(key) for key in tag_keys)
        self._resolve_key_cache[tag_keys] = result
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def dependencies_of(self, pid: str) -> DepSet:
        """The AID set the process currently depends on (its message tag).

        Returns the interval's interned :class:`DepSet` directly — it is
        immutable, so no defensive re-freeze is needed, and its cached
        :attr:`~DepSet.tag_keys` view makes per-send tagging O(1).
        """
        record = self.process(pid)
        if record.current is None:
            return self.depsets.empty
        return record.current.ido

    def is_definite(self, pid: str) -> bool:
        return self.process(pid).is_definite

    def __repr__(self) -> str:
        return (
            f"<Machine procs={len(self.processes)} aids={len(self.aids)} "
            f"rollbacks={self.stats['rollbacks']}>"
        )
