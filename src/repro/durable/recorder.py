"""DurableRecorder: what the engine persists, and how a run is rebuilt.

Only *committed* state goes to disk — exactly the prefix of each
process's effect log that the commit frontier has passed (PR 2,
Theorem 6.1: finalized state never rolls back), plus the metadata needed
to make that prefix replayable in a fresh process tree:

* per-process committed log entries, with enough send-side detail
  (destination, payload, tags) to re-inject messages whose *receive*
  had not committed by the crash;
* promoted rebase snapshots (``p.commit_point`` states) and the log
  ``base`` they anchor, so fossil-collected prefixes stay restorable;
* committed emitted outputs (the run's observable product);
* the committed slice of the AID registry — key, name, and definite
  status.  Definite statuses are stable (an AFFIRMED/DENIED assumption
  never reverts), so they can be snapshotted as plain values;
* machine serial counters, the network message counter, and the clock.

Speculative state is intentionally *not* persisted: a resumed run
replays the committed prefix (replay invokes no handlers) and then
re-executes the speculative frontier live, exactly as a rollback would.
That is the HOPE model's own crash story — optimism is free to die with
the world, commitments are not.

Write path: the engine calls ``note_send``/``note_resolution`` on the
hot path (cheap side-buffer appends), ``flush_proc`` + ``end_pass`` from
the fossil-collection pass (committed entries become WAL records, a
sealed batch marker makes them durable), and every ``snapshot_every``-th
pass consolidates into a new sealed envelope, rotating the WAL so disk
stays bounded like RAM.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..runtime.messages import ReceivedMessage
from .codec import DurableError, decode_value, encode_value
from .store import DurableStore

_RESOLUTION_KINDS = ("affirm", "deny", "free_of")


def _fresh_proc_doc() -> Dict[str, Any]:
    return {"base": 0, "entries": [], "outputs": [], "rebase": None}


class _ProcImage:
    """In-memory mirror of one process's persisted slice (encoded form)."""

    __slots__ = ("base", "entries", "outputs", "rebase", "out_floor",
                 "send_extras", "res_extras")

    def __init__(self) -> None:
        self.base = 0
        self.entries: List[list] = []     # [kind, encoded_result, extra|None]
        self.outputs: List[list] = []     # [encoded_value, log_index, time]
        self.rebase: Optional[list] = None  # [encoded_state, time]
        self.out_floor = 0                # outputs below this log index flushed
        # Hot-path side buffers, folded into WAL records at flush time and
        # truncated on rollback exactly like the effect log itself.
        self.send_extras: List[tuple] = []  # (pos, msg_id, dst, payload, tags)
        self.res_extras: List[tuple] = []   # (pos, aid_key)

    @property
    def cursor(self) -> int:
        return self.base + len(self.entries)


class DurableRecorder:
    """Engine-side durable persistence: WAL + sealed snapshot envelopes."""

    def __init__(self, system, root: str, *, seed: int,
                 opts: Optional[Dict[str, Any]] = None) -> None:
        options = dict(opts or {})
        self._resuming = bool(options.pop("_resuming", False))
        self.snapshot_every = int(options.pop("snapshot_every", 4))
        retain = int(options.pop("retain", 2))
        fsync = bool(options.pop("fsync", True))
        if options:
            raise DurableError(
                f"unknown durable_opts key(s): {sorted(options)}; "
                "allowed: snapshot_every, retain, fsync"
            )
        if self.snapshot_every < 1:
            raise DurableError(f"snapshot_every must be >= 1, got {self.snapshot_every}")
        self.system = system
        self.seed = seed
        self.store = DurableStore(root, fsync=fsync, retain=retain)
        self.generation = 0
        self.prev_seal = ""
        self.batch_index = 0
        self.passes_since_snapshot = 0
        self._dirty_since_marker = False
        self._dirty_since_snapshot = False
        self.procs: Dict[str, _ProcImage] = {}
        self.registry: Dict[str, list] = {}       # aid key -> [name, status]
        self.open_sends: Dict[str, dict] = {}     # str(msg_id) -> send record
        #: msg_ids whose committed *receive* flushed before the matching
        #: committed send did (possible: processes flush in spawn order
        #: within a pass, and the receiver may sit earlier in it).  The
        #: send's later flush consumes the marker instead of opening an
        #: in-flight record that nothing would ever close.
        self.consumed: set = set()
        self.stats: Dict[str, Any] = {
            "snapshots_written": 0,
            "wal_records": 0,
            "wal_bytes": 0,
            "wal_batches": 0,
            "envelopes_rejected": 0,
            "wal_records_discarded": 0,
            "injected_messages": 0,
            "resumed": False,
            "resumed_generation": None,
        }
        if not self._resuming:
            if self.store.has_run_state():
                raise DurableError(
                    f"{root} already holds a durable run — reload it with "
                    "HopeSystem.resume(...) instead of starting a fresh one"
                )
            self.store.open_wal(0)

    # -- hot-path hooks (engine calls these; all O(1) appends) ---------------

    def _img(self, name: str) -> _ProcImage:
        img = self.procs.get(name)
        if img is None:
            img = self.procs[name] = _ProcImage()
        return img

    def note_send(self, name: str, pos: int, msg_id: int, dst: str,
                  payload: Any, tags) -> None:
        self._img(name).send_extras.append(
            (pos, msg_id, dst, payload, tuple(tags or ()))
        )

    def note_resolution(self, name: str, pos: int, aid_key: str) -> None:
        self._img(name).res_extras.append((pos, aid_key))

    def on_rollback(self, name: str, index: int) -> None:
        """The effect log was truncated to ``index``; drop the speculative
        side-buffer suffix the same way.  ``index`` is always at or past
        the commit frontier, so flushed records are never affected."""
        img = self._img(name)
        if img.send_extras:
            img.send_extras = [e for e in img.send_extras if e[0] < index]
        if img.res_extras:
            img.res_extras = [e for e in img.res_extras if e[0] < index]

    # -- fossil-pass flushing ------------------------------------------------

    def flush_proc(self, proc, target: int) -> None:
        """Persist ``proc``'s committed log entries and outputs below the
        absolute position ``target`` (the commit frontier for this pass)."""
        img = self._img(proc.name)
        cursor = img.cursor
        if target > cursor:
            send_x = {e[0]: e for e in img.send_extras if e[0] < target}
            res_x = {e[0]: e[1] for e in img.res_extras if e[0] < target}
            for pos in range(cursor, target):
                entry = proc.log.entry_at(pos)
                kind = entry.kind
                enc = encode_value(entry.result)
                extra = None
                if kind == "send":
                    _, msg_id, dst, payload, tags = send_x[pos]
                    extra = {"d": dst, "pl": encode_value(payload), "g": list(tags)}
                    if msg_id in self.consumed:
                        self.consumed.discard(msg_id)
                    else:
                        self.open_sends[str(msg_id)] = {
                            "s": proc.name, "d": dst, "pl": extra["pl"],
                            "g": extra["g"], "m": msg_id,
                        }
                elif kind in _RESOLUTION_KINDS:
                    key = res_x[pos]
                    extra = {"a": key}
                    if kind != "free_of":
                        status = self._definite_status(key, kind)
                        extra["st"] = status
                        ent = self.registry.setdefault(
                            key, [key.rpartition("#")[0], "pending"]
                        )
                        ent[1] = status
                elif kind == "recv":
                    result = entry.result
                    if isinstance(result, ReceivedMessage):
                        if str(result.msg_id) in self.open_sends:
                            del self.open_sends[str(result.msg_id)]
                        else:
                            self.consumed.add(result.msg_id)
                elif kind == "aid_init":
                    handle = entry.result
                    self.registry.setdefault(handle.key, [handle.name, "pending"])
                rec = {"t": "e", "p": proc.name, "i": pos, "k": kind, "r": enc}
                if extra is not None:
                    rec["x"] = extra
                self._append(rec)
                img.entries.append([kind, enc, extra])
            img.send_extras = [e for e in img.send_extras if e[0] >= target]
            img.res_extras = [e for e in img.res_extras if e[0] >= target]
        if target > img.out_floor:
            for record in proc.outputs:
                if img.out_floor <= record.log_index < target:
                    enc = encode_value(record.value)
                    self._append({"t": "o", "p": proc.name,
                                  "i": record.log_index, "v": enc,
                                  "tm": record.time})
                    img.outputs.append([enc, record.log_index, record.time])
            img.out_floor = target

    def _definite_status(self, key: str, kind: str) -> str:
        """Status to persist for a committed affirm/deny.  A committed
        resolution entry implies the AID is definite (a speculative affirm
        inside a still-open interval blocks the frontier), and definite
        statuses never revert — so the machine's live answer is final.
        The entry's own direction is the fallback once the AID has been
        fossil-retired."""
        aid = self.system.machine.aids.get(key)
        if aid is not None:
            if aid.affirmed:
                return "affirmed"
            if aid.denied:
                return "denied"
        return "affirmed" if kind == "affirm" else "denied"

    def note_promotion(self, proc) -> None:
        """Fossil collection promoted a rebase point: trim the persisted
        image below the new base and capture the promoted state."""
        img = self._img(proc.name)
        new_base = proc.log.base
        if new_base > img.base:
            img.entries = img.entries[new_base - img.base:]
            img.base = new_base
        if proc.rebase is not None:
            img.rebase = [encode_value(proc.rebase.state), proc.rebase.time]
        self._dirty_since_snapshot = True

    def end_pass(self, now: float, force_snapshot: bool = False) -> None:
        """Close the fossil pass: seal the WAL batch (durability point) and
        periodically consolidate into a fresh envelope."""
        if self._dirty_since_marker:
            self.batch_index += 1
            self.stats["wal_bytes"] += self.store.write_marker(self.batch_index)
            self.stats["wal_batches"] += 1
            self._dirty_since_marker = False
        self.passes_since_snapshot += 1
        due = self.passes_since_snapshot >= self.snapshot_every
        if (due or force_snapshot) and self._dirty_since_snapshot:
            self.write_snapshot(now)

    def _append(self, rec: Dict[str, Any]) -> None:
        self.stats["wal_bytes"] += self.store.append_record(rec)
        self.stats["wal_records"] += 1
        self._dirty_since_marker = True
        self._dirty_since_snapshot = True

    def write_snapshot(self, now: float) -> None:
        machine = self.system.machine
        gen = self.generation + 1
        doc = {
            "v": 1,
            "gen": gen,
            "prev": self.prev_seal,
            "seed": self.seed,
            "time": now,
            "aid_serials": machine._aid_serials,
            "interval_serials": machine._interval_serials,
            "messages_sent": self.system.network.messages_sent,
            "aids": {k: list(v) for k, v in self.registry.items()},
            "open_sends": {k: dict(v) for k, v in self.open_sends.items()},
            "consumed": sorted(self.consumed),
            "procs": {
                name: {
                    "base": img.base,
                    "entries": img.entries,
                    "outputs": img.outputs,
                    "rebase": img.rebase,
                }
                for name, img in self.procs.items()
            },
        }
        self.prev_seal = self.store.write_envelope(gen, doc)
        self.generation = gen
        self.batch_index = 0
        self.passes_since_snapshot = 0
        self._dirty_since_marker = False
        self._dirty_since_snapshot = False
        self.stats["snapshots_written"] += 1

    def begin_fresh(self) -> None:
        """Resume target was empty: start recording as a fresh run."""
        self.store.open_wal(0)

    # -- recovery ------------------------------------------------------------

    def load_image(self) -> Optional[Dict[str, Any]]:
        """Scan the run directory for the newest restorable state.

        Walks envelopes newest-first; a CRC/seal/chain failure rejects
        that generation (counted) and falls back one.  The chosen
        envelope's WAL suffix is then applied, generation by generation,
        stopping at the first torn tail (discarded records counted).
        Returns the merged image, or None when the directory holds no
        restorable state at all.
        """
        store = self.store
        env_gens = store.envelope_gens()
        base_doc: Optional[Dict[str, Any]] = None
        base_gen = 0
        base_seal = ""
        for g in sorted(env_gens, reverse=True):
            try:
                doc, seal = store.load_envelope(g)
            except DurableError:
                self.stats["envelopes_rejected"] += 1
                continue
            if g - 1 in env_gens:
                try:
                    _, prev_seal = store.load_envelope(g - 1)
                except DurableError:
                    prev_seal = None
                if prev_seal is not None and doc.get("prev") != prev_seal:
                    # A validly-sealed envelope that does not chain onto its
                    # predecessor: a stale or transplanted file.  Reject it.
                    self.stats["envelopes_rejected"] += 1
                    continue
            base_doc, base_gen, base_seal = doc, g, seal
            break
        if base_doc is None:
            image: Dict[str, Any] = {
                "v": 1, "gen": 0, "seed": self.seed, "time": 0.0,
                "aid_serials": 0, "interval_serials": 0, "messages_sent": 0,
                "aids": {}, "open_sends": {}, "consumed": [], "procs": {},
            }
        else:
            image = base_doc
        wal_gens = store.wal_gens()
        applied_any = False
        g = base_gen
        while g in wal_gens:
            records, discarded, clean = store.scan_wal(g)
            self.stats["wal_records_discarded"] += discarded
            if records:
                self._apply_wal(image, records)
                applied_any = True
            if not clean:
                break
            g += 1
        image["_seal"] = base_seal
        image["_maxgen"] = max(env_gens + wal_gens + [0])
        if base_doc is None and not applied_any:
            return None
        return image

    def _apply_wal(self, image: Dict[str, Any], records: List[dict]) -> None:
        procs = image["procs"]
        for rec in records:
            t = rec.get("t")
            if t == "e":
                p = procs.setdefault(rec["p"], _fresh_proc_doc())
                pos = rec["i"]
                expect = p["base"] + len(p["entries"])
                if pos != expect:
                    raise DurableError(
                        f"WAL gap for process {rec['p']!r}: found entry "
                        f"{pos}, expected {expect} (store is inconsistent)"
                    )
                extra = rec.get("x")
                kind = rec["k"]
                p["entries"].append([kind, rec["r"], extra])
                if kind == "send":
                    msg_id = rec["r"]
                    consumed = image.setdefault("consumed", [])
                    if msg_id in consumed:
                        consumed.remove(msg_id)
                    else:
                        image["open_sends"][str(msg_id)] = {
                            "s": rec["p"], "d": extra["d"], "pl": extra["pl"],
                            "g": extra["g"], "m": msg_id,
                        }
                elif kind == "recv":
                    result = decode_value(rec["r"])
                    if isinstance(result, ReceivedMessage):
                        if str(result.msg_id) in image["open_sends"]:
                            del image["open_sends"][str(result.msg_id)]
                        else:
                            image.setdefault("consumed", []).append(result.msg_id)
                elif kind == "aid_init":
                    handle = decode_value(rec["r"])
                    image["aids"].setdefault(handle.key, [handle.name, "pending"])
                elif kind in ("affirm", "deny") and extra:
                    key = extra.get("a")
                    status = extra.get("st")
                    if key and status:
                        ent = image["aids"].setdefault(
                            key, [key.rpartition("#")[0], "pending"]
                        )
                        ent[1] = status
            elif t == "o":
                p = procs.setdefault(rec["p"], _fresh_proc_doc())
                p["outputs"].append([rec["v"], rec["i"], rec["tm"]])
                tm = rec.get("tm")
                if tm is not None:
                    image["time"] = max(image.get("time", 0.0), tm)

    def restore(self, image: Dict[str, Any]) -> None:
        """Rebuild committed runtime state from a loaded image.  Called
        after ``build()`` has spawned the process tree; the engine's
        ``_defer_start`` kept the initial tasks unscheduled so replay can
        start from the restored logs instead."""
        # Engine-module imports are deferred: repro.runtime imports
        # repro.durable, not the other way around at module load.
        from ..core.aid import AidStatus
        from ..runtime.engine import OutputRecord
        from ..runtime.replay import RebasePoint, _make_entry
        from ..sim.channel import Message, Network

        system = self.system
        if image.get("v") != 1:
            raise DurableError(f"unsupported durable image version {image.get('v')!r}")
        if image.get("seed") != self.seed:
            raise DurableError(
                f"seed mismatch: durable run was recorded with seed "
                f"{image.get('seed')!r}, resume constructed with {self.seed!r}"
            )
        missing = sorted(set(image["procs"]) - set(system.procs))
        if missing:
            raise DurableError(
                f"durable state names process(es) {missing} that build() did "
                "not spawn — the resume build must recreate the same tree"
            )

        machine = system.machine
        machine._aid_serials = max(machine._aid_serials, int(image["aid_serials"]))
        machine._interval_serials = max(
            machine._interval_serials, int(image["interval_serials"])
        )

        for name, pdoc in image["procs"].items():
            proc = system.procs[name]
            img = self._img(name)
            img.base = int(pdoc["base"])
            img.entries = [list(e) for e in pdoc["entries"]]
            img.outputs = [list(o) for o in pdoc["outputs"]]
            img.rebase = list(pdoc["rebase"]) if pdoc.get("rebase") else None
            img.out_floor = img.cursor
            entries = []
            for kind, enc, _extra in img.entries:
                result = decode_value(enc)
                if kind == "aid_init":
                    # Re-pin the handle: the log entry holds the strong
                    # reference, the weak map gives tags a way back to it.
                    system._handles[result.key] = result
                entries.append(_make_entry((kind, result)))
            log = proc.log
            log.base = img.base
            log.entries = entries
            log.cursor = img.cursor
            log.pending = 0
            if img.rebase is not None and img.base > 0:
                proc.rebase = RebasePoint(
                    img.base, decode_value(img.rebase[0]), img.rebase[1]
                )
            proc.outputs = [
                OutputRecord(decode_value(v), int(i), None, tm)
                for v, i, tm in img.outputs
            ]

        for key, (aid_name, status) in image["aids"].items():
            aid = machine.adopt_aid(key)
            if status == "affirmed" and not aid.affirmed:
                aid.status = AidStatus.AFFIRMED
                aid.resolved_by = aid.resolved_by or "durable-resume"
            elif status == "denied" and not aid.denied:
                aid.status = AidStatus.DENIED
                aid.resolved_by = aid.resolved_by or "durable-resume"
            self.registry[key] = [aid_name, status]

        network = system.network
        self.open_sends = {k: dict(v) for k, v in image["open_sends"].items()}
        self.consumed = set(image.get("consumed", ()))
        max_msg = int(image["messages_sent"])
        for rec in self.open_sends.values():
            max_msg = max(max_msg, int(rec["m"]))
        network.messages_sent = max(network.messages_sent, max_msg)
        # Re-inject committed sends whose receive had not committed: the
        # crash may have eaten the in-flight copy.  Base-class scheduling
        # on purpose — a FaultyNetwork must not re-judge a committed send.
        for rec in sorted(self.open_sends.values(), key=lambda r: int(r["m"])):
            box = network.mailbox(rec["d"])
            message = Message(
                rec["s"], rec["d"], decode_value(rec["pl"]),
                frozenset(rec["g"]), system.sim.now, int(rec["m"]),
            )
            delay = network.latency.sample(rec["s"], rec["d"])
            Network._schedule_delivery(network, box, message, delay)
            self.stats["injected_messages"] += 1

        for name in system.procs:
            system._start_task(system.procs[name], delay=0.0)

        self.generation = int(image.get("_maxgen", image.get("gen", 0)))
        self.prev_seal = image.get("_seal", "")
        self.stats["resumed"] = True
        self.stats["resumed_generation"] = int(image.get("gen", 0))
        self._dirty_since_snapshot = True
        self.write_snapshot(system.sim.now)

    # -- reporting -----------------------------------------------------------

    def stats_entries(self) -> Dict[str, Any]:
        out = dict(self.stats)
        out["generation"] = self.generation
        return out

    def observe_gauges(self, registry) -> None:
        g = registry.gauge
        g("hope_durable_snapshots_total",
          "Sealed snapshot envelopes written").set(self.stats["snapshots_written"])
        g("hope_durable_wal_records_total",
          "Committed effect-WAL records written").set(self.stats["wal_records"])
        g("hope_durable_wal_bytes_total",
          "Bytes appended to the effect WAL").set(self.stats["wal_bytes"])
        g("hope_durable_envelopes_rejected_total",
          "Envelopes rejected at recovery (CRC/seal/chain)").set(
              self.stats["envelopes_rejected"])
        g("hope_durable_wal_records_discarded_total",
          "Torn-tail WAL records discarded at recovery").set(
              self.stats["wal_records_discarded"])
        g("hope_durable_injected_messages_total",
          "Committed in-flight sends re-injected at resume").set(
              self.stats["injected_messages"])
