"""On-disk layout for durable runs: sealed envelopes + effect WALs.

A run directory holds::

    key.bin             per-run HMAC key (32 random bytes, created once)
    snap-<gen>.env      sealed snapshot envelope, generation ``gen``
    wal-<gen>.jsonl     effect WAL with the records written *after*
                        envelope ``gen`` (gen 0: before any envelope)

Envelope file format — a header line then the JSON body::

    HOPEENV1 <gen> <crc32-of-body> <hmac-sha256-of-body>\\n
    {...body...}

The body carries ``prev``: the seal of generation ``gen - 1`` (empty for
the first), chaining generations so a stale sealed envelope cannot be
swapped in unnoticed.  Envelopes are written via temp file + fsync +
atomic rename (+ directory fsync), so a crash mid-write leaves either
the old generation or the new one, never a torn file.

WAL records are one compact JSON object per line with a trailing CRC32::

    {"i":7,"k":"send","p":"w0",...} <crc32>\\n

Records become durable in *batches*: a marker record (``"t":"m"``)
closes each batch with an HMAC over the batch's rolling SHA-256 digest,
and the file is flushed (+fsynced) at markers only.  Recovery discards
any suffix after the last valid marker — a torn tail is detected and
counted, never silently applied.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from .codec import DurableError, crc_hex, seal_hex, seals_match

_ENV_MAGIC = "HOPEENV1"
_ENV_RE = re.compile(r"^snap-(\d{8})\.env$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.jsonl$")
KEY_FILE = "key.bin"


def _env_name(gen: int) -> str:
    return f"snap-{gen:08d}.env"


def _wal_name(gen: int) -> str:
    return f"wal-{gen:08d}.jsonl"


def _json_bytes(doc: Any) -> bytes:
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")


class DurableStore:
    """File-level half of the durable subsystem: envelopes, WALs, the key.

    Owns no runtime state — the :class:`~repro.durable.recorder.DurableRecorder`
    decides *what* to persist; this class decides *how it lands on disk*.
    """

    def __init__(self, root: str, *, fsync: bool = True, retain: int = 2) -> None:
        if retain < 1:
            raise DurableError(f"retain must be >= 1, got {retain}")
        self.root = root
        self.fsync = fsync
        self.retain = retain
        os.makedirs(root, exist_ok=True)
        self.key = self._load_or_create_key()
        self._wal_fh = None
        self._wal_gen: Optional[int] = None
        # Rolling digest + count of record lines since the last marker,
        # mirrored by scan_wal during recovery.
        self._batch_digest = hashlib.sha256()
        self._batch_records = 0

    # -- key ----------------------------------------------------------------

    def _load_or_create_key(self) -> bytes:
        path = os.path.join(self.root, KEY_FILE)
        try:
            with open(path, "rb") as fh:
                key = fh.read()
            if len(key) < 16:
                raise DurableError(f"{path}: seal key too short ({len(key)} bytes)")
            return key
        except FileNotFoundError:
            key = os.urandom(32)
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
            try:
                os.write(fd, key)
                if self.fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
            return key

    # -- layout queries ------------------------------------------------------

    def has_run_state(self) -> bool:
        """Any envelope or WAL present (i.e. a run already lives here)?"""
        return bool(self.envelope_gens() or self.wal_gens())

    def envelope_gens(self) -> List[int]:
        return self._gens(_ENV_RE)

    def wal_gens(self) -> List[int]:
        return self._gens(_WAL_RE)

    def _gens(self, pattern) -> List[int]:
        gens = []
        for name in os.listdir(self.root):
            m = pattern.match(name)
            if m:
                gens.append(int(m.group(1)))
        gens.sort()
        return gens

    def _dir_fsync(self) -> None:
        if not self.fsync or not hasattr(os, "O_DIRECTORY"):
            return
        fd = os.open(self.root, os.O_RDONLY | os.O_DIRECTORY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- WAL writing ---------------------------------------------------------

    def open_wal(self, gen: int) -> None:
        """Start (or append to) the WAL for generation ``gen``."""
        self.close()
        path = os.path.join(self.root, _wal_name(gen))
        self._wal_fh = open(path, "a", encoding="utf-8")
        self._wal_gen = gen
        self._batch_digest = hashlib.sha256()
        self._batch_records = 0

    def append_record(self, rec: Dict[str, Any]) -> int:
        """Write one WAL record line (buffered; durable at the next marker).
        Returns the encoded size in bytes."""
        if self._wal_fh is None:
            raise DurableError("no WAL open — open_wal() first")
        body = _json_bytes(rec)
        line = body.decode("utf-8") + " " + crc_hex(body) + "\n"
        self._wal_fh.write(line)
        self._batch_digest.update(body)
        self._batch_records += 1
        return len(line)

    def write_marker(self, batch_index: int) -> int:
        """Seal the current batch with an HMAC marker and flush to disk."""
        if self._wal_fh is None:
            raise DurableError("no WAL open — open_wal() first")
        digest = self._batch_digest.hexdigest()
        mac = seal_hex(self.key, f"{self._wal_gen}:{batch_index}:{digest}".encode())
        body = _json_bytes({"t": "m", "n": batch_index, "h": mac})
        line = body.decode("utf-8") + " " + crc_hex(body) + "\n"
        self._wal_fh.write(line)
        self._wal_fh.flush()
        if self.fsync:
            os.fsync(self._wal_fh.fileno())
        self._batch_digest = hashlib.sha256()
        self._batch_records = 0
        return len(line)

    def close(self) -> None:
        if self._wal_fh is not None:
            self._wal_fh.flush()
            self._wal_fh.close()
            self._wal_fh = None
            self._wal_gen = None

    # -- envelope writing ----------------------------------------------------

    def write_envelope(self, gen: int, doc: Dict[str, Any]) -> str:
        """Atomically persist envelope ``gen``; rotate the WAL to ``gen``;
        prune generations older than the retention window.  Returns the
        envelope's seal (callers chain it into the *next* envelope)."""
        body = _json_bytes(doc)
        seal = seal_hex(self.key, body)
        header = f"{_ENV_MAGIC} {gen} {crc_hex(body)} {seal}\n"
        path = os.path.join(self.root, _env_name(gen))
        tmp = os.path.join(self.root, f".snap-{gen:08d}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(header.encode("utf-8"))
            fh.write(body)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._dir_fsync()
        self.open_wal(gen)
        self._prune(gen)
        return seal

    def _prune(self, gen: int) -> None:
        floor = gen - (self.retain - 1)
        for g in self.envelope_gens():
            if g < floor:
                self._unlink(_env_name(g))
        for g in self.wal_gens():
            if g < floor and g != self._wal_gen:
                self._unlink(_wal_name(g))

    def _unlink(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.root, name))
        except OSError:
            pass

    # -- reading / verification ----------------------------------------------

    def load_envelope(self, gen: int) -> Tuple[Dict[str, Any], str]:
        """Load and verify envelope ``gen``; raises DurableError on any
        integrity failure (missing, torn, CRC or seal mismatch)."""
        path = os.path.join(self.root, _env_name(gen))
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise DurableError(f"envelope {gen}: unreadable ({exc})")
        nl = raw.find(b"\n")
        if nl < 0:
            raise DurableError(f"envelope {gen}: truncated header")
        parts = raw[:nl].decode("utf-8", "replace").split()
        body = raw[nl + 1:]
        if len(parts) != 4 or parts[0] != _ENV_MAGIC:
            raise DurableError(f"envelope {gen}: bad header {parts!r}")
        if int(parts[1]) != gen:
            raise DurableError(f"envelope {gen}: header names generation {parts[1]}")
        if parts[2] != crc_hex(body):
            raise DurableError(f"envelope {gen}: CRC mismatch (torn or corrupt)")
        if not seals_match(parts[3], seal_hex(self.key, body)):
            raise DurableError(f"envelope {gen}: seal verification failed")
        try:
            doc = json.loads(body)
        except ValueError as exc:
            raise DurableError(f"envelope {gen}: body is not JSON ({exc})")
        return doc, parts[3]

    def scan_wal(self, gen: int) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Read WAL ``gen``, honoring batch markers.

        Returns ``(records, discarded, clean)``: the records covered by
        valid markers, how many record lines had to be discarded (torn
        tail, bad CRC, or an invalid marker), and whether the file ended
        exactly at a valid marker (``clean`` — recovery only chains into
        the *next* generation's WAL when this one ended cleanly).
        """
        path = os.path.join(self.root, _wal_name(gen))
        try:
            fh = open(path, "rb")
        except OSError:
            return [], 0, True
        records: List[Dict[str, Any]] = []
        pending: List[Dict[str, Any]] = []
        digest = hashlib.sha256()
        discarded = 0
        broken = False
        with fh:
            for raw_line in fh:
                line = raw_line.rstrip(b"\n")
                if not line:
                    continue
                sp = line.rfind(b" ")
                if sp < 0:
                    broken = True
                    break
                body, crc = line[:sp], line[sp + 1:]
                if crc.decode("ascii", "replace") != crc_hex(body):
                    broken = True
                    break
                try:
                    rec = json.loads(body)
                except ValueError:
                    broken = True
                    break
                if rec.get("t") == "m":
                    expect = seal_hex(
                        self.key, f"{gen}:{rec.get('n')}:{digest.hexdigest()}".encode()
                    )
                    if not seals_match(str(rec.get("h", "")), expect):
                        broken = True
                        break
                    records.extend(pending)
                    pending = []
                    digest = hashlib.sha256()
                else:
                    pending.append(rec)
                    digest.update(body)
        discarded += len(pending)
        clean = not broken and not pending
        return records, discarded, clean


# -- chaos corruption helpers (used by repro.chaos and the tests) ------------


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def corrupt_latest_envelope(root: str) -> Optional[str]:
    """Flip one byte in the newest envelope's body.  Returns the path, or
    None when no envelope exists yet."""
    gens = []
    for name in os.listdir(root):
        m = _ENV_RE.match(name)
        if m:
            gens.append(int(m.group(1)))
    if not gens:
        return None
    path = os.path.join(root, _env_name(max(gens)))
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        header_end = fh.read().find(b"\n")
    _flip_byte(path, header_end + 1 + max(0, (size - header_end) // 2))
    return path


def corrupt_wal_tail(root: str) -> Optional[str]:
    """Flip one byte in the last line of the newest non-empty WAL *on the
    replay path* — recovery only reads WAL generations at or after the
    newest envelope, so damaging an older (already-consolidated) WAL
    would never be noticed.  Returns the path, or None when there is
    nothing recovery would read."""
    env_gens = [
        int(m.group(1))
        for name in os.listdir(root)
        if (m := _ENV_RE.match(name))
    ]
    floor = max(env_gens) if env_gens else 0
    candidates = []
    for name in os.listdir(root):
        m = _WAL_RE.match(name)
        if (
            m
            and int(m.group(1)) >= floor
            and os.path.getsize(os.path.join(root, name)) > 0
        ):
            candidates.append(int(m.group(1)))
    if not candidates:
        return None
    path = os.path.join(root, _wal_name(max(candidates)))
    with open(path, "rb") as fh:
        raw = fh.read()
    stripped = raw.rstrip(b"\n")
    if not stripped:
        return None
    start = stripped.rfind(b"\n") + 1
    _flip_byte(path, start + (len(stripped) - start) // 2)
    return path
