"""Value and seal codecs for the durable store.

Everything on disk is line-oriented JSON.  Scalar effect results (None,
bool, int, float, str) are stored as raw JSON values; anything richer —
``ReceivedMessage`` tuples, ``AidHandle``\\ s, user payloads — is pickled
and base64-wrapped in a one-key dict, ``{"~pkl": "..."}``.  A user value
that happens to *be* a dict is never confused with the wrapper because
dicts are not scalars: they always go through the pickle path themselves.

Integrity is layered: every WAL line carries a CRC32 of its JSON body
(catches torn writes and bit rot), batch markers and envelopes carry an
HMAC-SHA256 under the per-run key (catches tampering and cross-run file
mixups).  Stdlib only — no external dependencies.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import pickle
import zlib
from typing import Any

from ..core.errors import HopeError


class DurableError(HopeError):
    """A durable-store operation failed (corruption, bad layout, misuse)."""


_SCALARS = (type(None), bool, int, float, str)
_PICKLE_KEY = "~pkl"


def encode_value(value: Any) -> Any:
    """JSON-encodable form of an effect result / payload / state."""
    if type(value) in _SCALARS:
        return value
    blob = pickle.dumps(value, protocol=4)
    return {_PICKLE_KEY: base64.b64encode(blob).decode("ascii")}


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, dict) and _PICKLE_KEY in obj:
        return pickle.loads(base64.b64decode(obj[_PICKLE_KEY]))
    return obj


def crc_hex(data: bytes) -> str:
    return format(zlib.crc32(data) & 0xFFFFFFFF, "08x")


def seal_hex(key: bytes, data: bytes) -> str:
    return hmac.new(key, data, hashlib.sha256).hexdigest()


def seals_match(a: str, b: str) -> bool:
    return hmac.compare_digest(a, b)
