"""repro.durable — sealed snapshot + effect-WAL persistence for HOPE runs.

The commit frontier (PR 2) already proves which state can never roll
back; this package makes exactly that state survive a host crash.  See
docs/DURABILITY.md for the envelope format, the recovery contract, and
what is deliberately *not* persisted.

Entry points:

* ``HopeSystem(durable_dir="run/")`` — record a run durably.
* ``HopeSystem.resume("run/", build)`` — reload the newest verifiable
  snapshot, replay the WAL suffix, and continue.
* ``repro.chaos.run_kill_resume_matrix`` — kill a child process mid-run
  at seeded points and prove the resumed committed state is byte-
  identical to an uninterrupted twin.
"""

from .codec import DurableError, decode_value, encode_value
from .recorder import DurableRecorder
from .store import DurableStore, corrupt_latest_envelope, corrupt_wal_tail

__all__ = [
    "DurableError",
    "DurableRecorder",
    "DurableStore",
    "corrupt_latest_envelope",
    "corrupt_wal_tail",
    "decode_value",
    "encode_value",
]
