"""Command-line interface: check and run mini-HOPE programs.

Usage::

    python -m repro check program.hope
    python -m repro run program.hope \\
        --spawn server=Server:[60] \\
        --spawn worker=Worker:[10] \\
        --latency 5 --seed 1 --trace

``--spawn`` may repeat; its value is ``instance=Process:json_args`` where
``json_args`` is a JSON array of arguments passed to the process (default
``[]``).  Spawns happen in the order given.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .lang import CheckError, check_program, compile_program, parse
from .obs import FORMATS, MetricsRegistry
from .runtime import HopeSystem
from .sim import ConstantLatency, FaultPlan, LinkFaults, Partition, Tracer


def parse_partition(raw: str) -> Partition:
    """Parse ``--partition a,b|c,d:START-HEAL`` (HEAL optional: ``5-``
    never heals)."""
    try:
        groups, window = raw.rsplit(":", 1)
        side_a, side_b = groups.split("|", 1)
        start_text, _, heal_text = window.partition("-")
        start = float(start_text)
        heal = float(heal_text) if heal_text else None
        return Partition(
            tuple(filter(None, side_a.split(","))),
            tuple(filter(None, side_b.split(","))),
            start=start,
            heal_at=heal,
        )
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"--partition needs a,b|c,d:START-HEAL (HEAL optional), got {raw!r}: {exc}"
        )


def fault_plan_from_args(args) -> Optional[FaultPlan]:
    """Build the FaultPlan the run/chaos flags describe, or None."""
    default = LinkFaults(
        drop=args.drop_rate,
        duplicate=args.dup_rate,
        reorder=args.reorder_rate,
        reorder_window=args.reorder_window if args.reorder_rate > 0 else 0.0,
        jitter=args.jitter,
    )
    partitions = tuple(args.partition)
    if default.is_null and not partitions:
        return None
    return FaultPlan(default=default, partitions=partitions)


def add_fault_arguments(parser) -> None:
    group = parser.add_argument_group("fault injection (repro.sim.faults)")
    group.add_argument(
        "--drop-rate", type=float, default=0.0, metavar="P",
        help="per-message drop probability on every link",
    )
    group.add_argument(
        "--dup-rate", type=float, default=0.0, metavar="P",
        help="per-message duplication probability",
    )
    group.add_argument(
        "--reorder-rate", type=float, default=0.0, metavar="P",
        help="per-message reorder probability",
    )
    group.add_argument(
        "--reorder-window", type=float, default=5.0, metavar="T",
        help="max extra delay for reordered messages (with --reorder-rate)",
    )
    group.add_argument(
        "--jitter", type=float, default=0.0, metavar="T",
        help="uniform extra latency in [0, T) per message",
    )
    group.add_argument(
        "--partition", action="append", type=parse_partition, default=[],
        metavar="a,b|c,d:START-HEAL",
        help="timed partition between two process groups (repeatable; "
        "omit HEAL to never heal)",
    )
    group.add_argument(
        "--reliable", action="store_true",
        help="ack/retry delivery with receiver dedup (repro.runtime.resilience)",
    )
    group.add_argument(
        "--failure-detector", action="store_true",
        help="heartbeat failure detector: suspected peers' pending AIDs are denied",
    )


class SpawnSpec:
    """One --spawn argument: instance=Process:json_args."""

    def __init__(self, raw: str) -> None:
        try:
            instance, rest = raw.split("=", 1)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--spawn needs instance=Process[:json_args], got {raw!r}"
            )
        if ":" in rest:
            process, args_text = rest.split(":", 1)
            try:
                args = json.loads(args_text)
            except json.JSONDecodeError as exc:
                raise argparse.ArgumentTypeError(
                    f"bad JSON args in --spawn {raw!r}: {exc}"
                )
            if not isinstance(args, list):
                raise argparse.ArgumentTypeError(
                    f"--spawn args must be a JSON array, got {args_text!r}"
                )
        else:
            process, args = rest, []
        self.instance = instance
        self.process = process
        self.args = args

    def __repr__(self) -> str:
        return f"SpawnSpec({self.instance}={self.process}:{self.args})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HOPE: run or check mini-HOPE programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="statically check a program")
    check.add_argument("path", help="mini-HOPE source file")

    run = sub.add_parser("run", help="run a program on the HOPE runtime")
    run.add_argument("path", help="mini-HOPE source file")
    run.add_argument(
        "--spawn",
        action="append",
        type=SpawnSpec,
        default=[],
        metavar="instance=Process[:json_args]",
        help="spawn a process instance (repeatable, in order)",
    )
    run.add_argument("--latency", type=float, default=1.0, help="network latency")
    run.add_argument("--seed", type=int, default=0, help="root random seed")
    run.add_argument(
        "--backend",
        choices=["sim", "parallel"],
        default="sim",
        help="execution backend: the deterministic simulator (default) or "
        "real multiprocessing workers sharding the processes "
        "(see docs/PERFORMANCE.md §7; requires --latency > 0)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --backend parallel (default: 2)",
    )
    run.add_argument(
        "--until", type=float, default=None, help="stop at this virtual time"
    )
    run.add_argument(
        "--max-events", type=int, default=1_000_000, help="livelock guard"
    )
    run.add_argument(
        "--trace", action="store_true", help="print the event trace at the end"
    )
    run.add_argument(
        "--aid-mode",
        choices=["registry", "aid_task"],
        default="registry",
        help="dependency-tracking control plane",
    )
    run.add_argument(
        "--kernel",
        choices=["wheel", "heap", "window"],
        default="wheel",
        help="event-queue kernel: hierarchical timer wheel (default), the "
        "binary-heap oracle, or the bisect-based sorted window — "
        "identical traces every way (see docs/PERFORMANCE.md §6 and §8)",
    )
    run.add_argument(
        "--fast-rollback",
        action="store_true",
        help="restore rollbacks from shadow replicas (see docs/PERFORMANCE.md §3)",
    )
    run.add_argument(
        "--fossil-collect",
        action="store_true",
        help="reclaim committed state behind the commit frontier "
        "(bounded memory on long runs; see docs/PERFORMANCE.md §4)",
    )
    run.add_argument(
        "--fossil-interval",
        type=int,
        default=64,
        metavar="N",
        help="fossil-collect after every N finalizes (with --fossil-collect)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top 25 functions by "
        "cumulative time after the run (see docs/PERFORMANCE.md §8)",
    )
    run.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="with --profile: also dump raw pstats data to PATH "
        "(load with pstats.Stats(PATH) or any profile viewer)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write speculation metrics and interval spans at the end "
        "('-' for stdout; see docs/PERFORMANCE.md §5)",
    )
    run.add_argument(
        "--metrics-format",
        choices=list(FORMATS),
        default="summary",
        help="exporter for --metrics-out (default: summary)",
    )
    run.add_argument(
        "--durable-dir",
        metavar="DIR",
        default=None,
        help="record sealed snapshots + an effect WAL into DIR so a killed "
        "run can be resumed with `repro resume` (implies fossil "
        "collection; see docs/DURABILITY.md)",
    )
    add_fault_arguments(run)

    resume = sub.add_parser(
        "resume",
        help="resume a durable run from its snapshot/WAL directory "
        "(see docs/DURABILITY.md for the recovery contract)",
    )
    resume.add_argument("path", help="mini-HOPE source file (same program)")
    resume.add_argument(
        "--durable-dir",
        metavar="DIR",
        required=True,
        help="the directory the interrupted run recorded into",
    )
    resume.add_argument(
        "--spawn",
        action="append",
        type=SpawnSpec,
        default=[],
        metavar="instance=Process[:json_args]",
        help="spawn flags of the original run — resume must recreate the "
        "same process tree (repeatable, in order)",
    )
    resume.add_argument("--latency", type=float, default=1.0, help="network latency")
    resume.add_argument(
        "--seed", type=int, default=0,
        help="root random seed (must match the recorded run)",
    )
    resume.add_argument(
        "--kernel",
        choices=["wheel", "heap", "window"],
        default="wheel",
        help="event-queue kernel",
    )
    resume.add_argument(
        "--fossil-interval", type=int, default=64, metavar="N",
        help="fossil-collect after every N finalizes",
    )
    resume.add_argument(
        "--until", type=float, default=None, help="stop at this virtual time"
    )
    resume.add_argument(
        "--max-events", type=int, default=1_000_000, help="livelock guard"
    )
    resume.add_argument(
        "--trace", action="store_true",
        help="print the post-resume event trace at the end",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeds x fault plans over the chaos workloads "
        "(invariants + fault-free twin equality)",
    )
    chaos.add_argument(
        "--workload",
        action="append",
        default=[],
        metavar="NAME",
        help="workload to sweep (repeatable; default: all registered)",
    )
    chaos.add_argument(
        "--seeds",
        default="1,2,3",
        metavar="S1,S2,...",
        help="comma-separated seeds (default: 1,2,3)",
    )
    chaos.add_argument(
        "--repro-dir",
        default="chaos-repros",
        metavar="DIR",
        help="where minimal failing fault plans are written",
    )
    chaos.add_argument(
        "--repro",
        default=None,
        metavar="FILE",
        help="re-run a reproducer file instead of the matrix",
    )
    chaos.add_argument(
        "--max-events", type=int, default=None, help="per-case livelock guard"
    )
    chaos.add_argument(
        "--no-verify-determinism",
        action="store_true",
        help="skip the fingerprint re-run check",
    )
    chaos.add_argument(
        "--failure-detector", action="store_true",
        help="also run the heartbeat failure detector in every case",
    )
    chaos.add_argument(
        "--list-plans", action="store_true",
        help="list the standard fault plans and workloads, then exit",
    )
    chaos.add_argument(
        "--kill-at",
        action="append",
        type=float,
        default=[],
        metavar="FRAC",
        help="kill/resume mode: crash a durable child at FRAC of the "
        "twin's event count, resume, and require byte-identical "
        "committed state (repeatable; see docs/DURABILITY.md)",
    )

    verify = sub.add_parser(
        "verify",
        help="model-check the scenario matrix: DPOR-reduced exhaustive "
        "interleaving enumeration (default) or randomized exploration",
    )
    verify.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="only scenarios whose name contains SUBSTR (repeatable; "
        "default: the whole standard matrix)",
    )
    verify.add_argument(
        "--mode",
        choices=["dpor", "full", "random"],
        default="dpor",
        help="dpor: partial-order-reduced enumeration (default); full: "
        "every tie permutation (the reduction-soundness oracle); random: "
        "the randomized explorer",
    )
    verify.add_argument("--seed", type=int, default=0, help="root random seed")
    verify.add_argument(
        "--latency", type=float, default=0.5, help="network latency for dpor/full"
    )
    verify.add_argument(
        "--kernel",
        choices=["wheel", "heap", "window"],
        default="wheel",
        help="event-queue kernel to explore under",
    )
    verify.add_argument(
        "--aid-mode",
        choices=["registry", "aid_task"],
        default="registry",
        help="dependency-tracking control plane",
    )
    verify.add_argument(
        "--max-schedules",
        type=int,
        default=2000,
        metavar="N",
        help="per-scenario execution budget; exhausting it fails the "
        "scenario (incomplete enumeration proves nothing)",
    )
    verify.add_argument(
        "--max-events", type=int, default=200_000, help="per-run livelock guard"
    )
    verify.add_argument(
        "--runs", type=int, default=50, metavar="N",
        help="run count for --mode random",
    )
    verify.add_argument(
        "--strict-orphans",
        action="store_true",
        help="reject quiescent states with pending AIDs nobody speculates "
        "on (check_quiescent(allow_pending_orphans=False))",
    )
    verify.add_argument(
        "--repro-dir",
        default="verify-repros",
        metavar="DIR",
        help="where minimal failing choice prefixes are written",
    )
    verify.add_argument(
        "--repro",
        default=None,
        metavar="FILE",
        help="replay a DPOR reproducer file instead of exploring",
    )
    return parser


def cmd_check(path: str, out) -> int:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        program = parse(source)
    except SyntaxError as exc:
        print(f"syntax error: {exc}", file=out)
        return 2
    report = check_program(program)
    for warning in report.warnings:
        print(f"warning: {warning}", file=out)
    for error in report.errors:
        print(f"error: {error}", file=out)
    if report.ok:
        print(f"{path}: OK ({len(program.processes)} process(es))", file=out)
        return 0
    return 1


def cmd_run(args, out) -> int:
    with open(args.path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        compiled = compile_program(source)
    except (SyntaxError, CheckError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    for warning in compiled.warnings:
        print(f"warning: {warning}", file=out)
    if not args.spawn:
        print(
            "error: nothing to run — add --spawn instance=Process[:json_args]",
            file=out,
        )
        return 1
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    faults = fault_plan_from_args(args)
    system = HopeSystem(
        seed=args.seed,
        latency=ConstantLatency(args.latency),
        trace=tracer,
        aid_mode=args.aid_mode,
        kernel=args.kernel,
        fast_rollback=args.fast_rollback,
        fossil_collect=args.fossil_collect,
        fossil_interval=args.fossil_interval,
        metrics=registry,
        faults=faults,
        reliable=args.reliable,
        failure_detector=args.failure_detector,
        backend=args.backend,
        workers=args.workers,
        durable_dir=args.durable_dir,
    )
    for spec in args.spawn:
        compiled.spawn(system, spec.instance, spec.process, *spec.args)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        final = system.run(until=args.until, max_events=args.max_events)
    finally:
        if profiler is not None:
            profiler.disable()
    stats = system.stats()
    print(f"finished at t={final:g}", file=out)
    for spec in args.spawn:
        proc = system.procs[spec.instance]
        outputs = system.committed_outputs(spec.instance)
        status = "done" if proc.done else "blocked"
        print(f"[{spec.instance}] {status}, result={proc.result!r}", file=out)
        for value in outputs:
            print(f"[{spec.instance}] output: {value!r}", file=out)
    print(
        f"stats: rollbacks={stats['rollbacks']} messages={stats['messages_sent']} "
        f"wasted={stats['wasted_time']:g} guesses={stats['guesses']}",
        file=out,
    )
    if "faults" in stats:
        fs = stats["faults"]
        print(
            f"faults: dropped={fs['dropped']} duplicated={fs['duplicated']} "
            f"reordered={fs['reordered']} partition_dropped={fs['partition_dropped']}",
            file=out,
        )
    if "reliable" in stats:
        rs = stats["reliable"]
        print(
            f"reliable: sent={rs['sent']} retries={rs['retries']} "
            f"acked={rs['acked']} dup_suppressed={rs['dup_suppressed']} "
            f"exhausted={rs['exhausted']}",
            file=out,
        )
    if "detector" in stats:
        ds = stats["detector"]
        print(
            f"detector: suspects={ds['suspects']} false={ds['false_suspicions']} "
            f"denies={ds['detector_denies']}",
            file=out,
        )
    if tracer is not None:
        print("\ntrace:", file=out)
        print(tracer.format(), file=out)
    if registry is not None:
        rendered = system.export_metrics(args.metrics_format)
        if args.metrics_out == "-":
            print(rendered, file=out, end="")
        else:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(rendered)
            print(f"metrics: wrote {args.metrics_format} to {args.metrics_out}", file=out)
    if profiler is not None:
        import pstats

        print("\nprofile (top 25 by cumulative time):", file=out)
        stats_obj = pstats.Stats(profiler, stream=out)
        stats_obj.sort_stats("cumulative").print_stats(25)
        if args.profile_out is not None:
            stats_obj.dump_stats(args.profile_out)
            print(f"profile: wrote pstats data to {args.profile_out}", file=out)
    return 0


def cmd_resume(args, out) -> int:
    with open(args.path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        compiled = compile_program(source)
    except (SyntaxError, CheckError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    if not args.spawn:
        print(
            "error: resume must recreate the original process tree — add "
            "the run's --spawn flags",
            file=out,
        )
        return 1

    def build(system: HopeSystem) -> None:
        for spec in args.spawn:
            compiled.spawn(system, spec.instance, spec.process, *spec.args)

    from .durable import DurableError

    tracer = Tracer() if args.trace else None
    try:
        system = HopeSystem.resume(
            args.durable_dir,
            build,
            seed=args.seed,
            latency=ConstantLatency(args.latency),
            trace=tracer,
            kernel=args.kernel,
            fossil_collect=True,
            fossil_interval=args.fossil_interval,
        )
    except DurableError as exc:
        print(f"error: {exc}", file=out)
        return 1
    durable = system.stats().get("durable", {})
    if durable.get("resumed"):
        print(
            f"resumed from generation {durable.get('resumed_generation')} "
            f"at t={system.sim.now:g} "
            f"(rejected envelopes: {durable.get('envelopes_rejected', 0)}, "
            f"torn WAL records discarded: "
            f"{durable.get('wal_records_discarded', 0)})",
            file=out,
        )
    else:
        print("no recoverable state found — starting fresh", file=out)
    final = system.run(until=args.until, max_events=args.max_events)
    print(f"finished at t={final:g}", file=out)
    for spec in args.spawn:
        proc = system.procs[spec.instance]
        status = "done" if proc.done else "blocked"
        print(f"[{spec.instance}] {status}, result={proc.result!r}", file=out)
        for value in system.committed_outputs(spec.instance):
            print(f"[{spec.instance}] output: {value!r}", file=out)
    if tracer is not None:
        print("\ntrace:", file=out)
        print(tracer.format(), file=out)
    return 0


def cmd_chaos(args, out) -> int:
    from .chaos import (
        KILL_RESUME_WORKLOADS,
        PLAN_DESCRIPTIONS,
        WORKLOADS,
        format_kill_report,
        format_report,
        run_kill_resume_matrix,
        run_matrix,
        run_reproducer,
    )

    if args.list_plans:
        print("fault plans (the standard matrix sweeps each):", file=out)
        for name, desc in PLAN_DESCRIPTIONS.items():
            print(f"  {name:<11} {desc}", file=out)
        print("\nworkloads:", file=out)
        for name, workload in WORKLOADS.items():
            print(f"  {name:<11} {workload.description}", file=out)
        print("\nkill/resume workloads (--kill-at):", file=out)
        for name, workload in KILL_RESUME_WORKLOADS.items():
            print(f"  {name:<11} {workload.description}", file=out)
        return 0
    if args.repro is not None:
        try:
            result = run_reproducer(args.repro)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(f"reproducer {args.repro}: {result!r}", file=out)
        if result.failure:
            print(f"failure: {result.failure}", file=out)
            return 1
        print("reproducer no longer fails", file=out)
        return 0
    try:
        seeds = [int(s) for s in args.seeds.split(",") if s]
    except ValueError:
        print(f"error: --seeds must be comma-separated ints, got {args.seeds!r}",
              file=out)
        return 2
    if args.kill_at:
        workloads = args.workload or None
        if workloads is not None:
            unknown = sorted(set(workloads) - set(KILL_RESUME_WORKLOADS))
            if unknown:
                print(
                    f"error: unknown kill/resume workload(s) {unknown} "
                    f"(expected one of {sorted(KILL_RESUME_WORKLOADS)})",
                    file=out,
                )
                return 2
        report = run_kill_resume_matrix(
            workloads=workloads, seeds=seeds, fracs=args.kill_at,
        )
        print(format_kill_report(report), file=out)
        return 0 if not report["failures"] else 1
    report = run_matrix(
        workloads=args.workload or None,
        seeds=seeds,
        detector=args.failure_detector,
        repro_dir=args.repro_dir,
        verify_determinism=not args.no_verify_determinism,
        max_events=args.max_events,
    )
    print(format_report(report), file=out)
    return 0 if not report["failures"] else 1


def cmd_verify(args, out) -> int:
    import os

    from .verify import DporExplorer, explore, run_dpor_reproducer, standard_scenarios

    if args.repro is not None:
        run = run_dpor_reproducer(args.repro)
        print(
            f"reproducer {args.repro}: {run.steps} steps, "
            f"choices={run.choices}", file=out,
        )
        if run.violations:
            print(f"failure: {run.violations}", file=out)
            return 1
        print("reproducer no longer fails", file=out)
        return 0
    if args.mode == "random":
        report = explore(
            n_runs=args.runs,
            root_seed=args.seed,
            check_determinism=True,
            aid_mode=args.aid_mode,
            shuffle_ties=True,
        )
        print(report.summary(), file=out)
        return 0 if report.ok else 1
    scenarios = standard_scenarios()
    if args.scenario:
        scenarios = [
            sc for sc in scenarios
            if any(want in sc.name for want in args.scenario)
        ]
        if not scenarios:
            print(f"error: no scenario matches {args.scenario!r}", file=out)
            return 2
    # Test seam: lets the integration suite plant a schedule-dependent bug
    # and assert the whole find -> shrink -> reproduce pipeline end to end.
    inject = os.environ.get("REPRO_VERIFY_INJECT_BUG", "") not in ("", "0")
    exit_code = 0
    for scenario in scenarios:
        explorer = DporExplorer(
            scenario,
            seed=args.seed,
            latency=args.latency,
            aid_mode=args.aid_mode,
            kernel=args.kernel,
            prune=args.mode != "full",
            max_schedules=args.max_schedules,
            max_events=args.max_events,
            allow_pending_orphans=not args.strict_orphans,
            inject_bug=inject,
            repro_dir=args.repro_dir,
        )
        report = explorer.explore()
        print(report.summary(), file=out)
        if not report.ok:
            exit_code = 1
    return exit_code


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args.path, out)
    if args.command == "chaos":
        return cmd_chaos(args, out)
    if args.command == "verify":
        return cmd_verify(args, out)
    if args.command == "resume":
        return cmd_resume(args, out)
    return cmd_run(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
