"""Command-line interface: check and run mini-HOPE programs.

Usage::

    python -m repro check program.hope
    python -m repro run program.hope \\
        --spawn server=Server:[60] \\
        --spawn worker=Worker:[10] \\
        --latency 5 --seed 1 --trace

``--spawn`` may repeat; its value is ``instance=Process:json_args`` where
``json_args`` is a JSON array of arguments passed to the process (default
``[]``).  Spawns happen in the order given.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .lang import CheckError, check_program, compile_program, parse
from .obs import FORMATS, MetricsRegistry
from .runtime import HopeSystem
from .sim import ConstantLatency, Tracer


class SpawnSpec:
    """One --spawn argument: instance=Process:json_args."""

    def __init__(self, raw: str) -> None:
        try:
            instance, rest = raw.split("=", 1)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--spawn needs instance=Process[:json_args], got {raw!r}"
            )
        if ":" in rest:
            process, args_text = rest.split(":", 1)
            try:
                args = json.loads(args_text)
            except json.JSONDecodeError as exc:
                raise argparse.ArgumentTypeError(
                    f"bad JSON args in --spawn {raw!r}: {exc}"
                )
            if not isinstance(args, list):
                raise argparse.ArgumentTypeError(
                    f"--spawn args must be a JSON array, got {args_text!r}"
                )
        else:
            process, args = rest, []
        self.instance = instance
        self.process = process
        self.args = args

    def __repr__(self) -> str:
        return f"SpawnSpec({self.instance}={self.process}:{self.args})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HOPE: run or check mini-HOPE programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="statically check a program")
    check.add_argument("path", help="mini-HOPE source file")

    run = sub.add_parser("run", help="run a program on the HOPE runtime")
    run.add_argument("path", help="mini-HOPE source file")
    run.add_argument(
        "--spawn",
        action="append",
        type=SpawnSpec,
        default=[],
        metavar="instance=Process[:json_args]",
        help="spawn a process instance (repeatable, in order)",
    )
    run.add_argument("--latency", type=float, default=1.0, help="network latency")
    run.add_argument("--seed", type=int, default=0, help="root random seed")
    run.add_argument(
        "--until", type=float, default=None, help="stop at this virtual time"
    )
    run.add_argument(
        "--max-events", type=int, default=1_000_000, help="livelock guard"
    )
    run.add_argument(
        "--trace", action="store_true", help="print the event trace at the end"
    )
    run.add_argument(
        "--aid-mode",
        choices=["registry", "aid_task"],
        default="registry",
        help="dependency-tracking control plane",
    )
    run.add_argument(
        "--fast-rollback",
        action="store_true",
        help="restore rollbacks from shadow replicas (see docs/PERFORMANCE.md §3)",
    )
    run.add_argument(
        "--fossil-collect",
        action="store_true",
        help="reclaim committed state behind the commit frontier "
        "(bounded memory on long runs; see docs/PERFORMANCE.md §4)",
    )
    run.add_argument(
        "--fossil-interval",
        type=int,
        default=64,
        metavar="N",
        help="fossil-collect after every N finalizes (with --fossil-collect)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write speculation metrics and interval spans at the end "
        "('-' for stdout; see docs/PERFORMANCE.md §5)",
    )
    run.add_argument(
        "--metrics-format",
        choices=list(FORMATS),
        default="summary",
        help="exporter for --metrics-out (default: summary)",
    )
    return parser


def cmd_check(path: str, out) -> int:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        program = parse(source)
    except SyntaxError as exc:
        print(f"syntax error: {exc}", file=out)
        return 2
    report = check_program(program)
    for warning in report.warnings:
        print(f"warning: {warning}", file=out)
    for error in report.errors:
        print(f"error: {error}", file=out)
    if report.ok:
        print(f"{path}: OK ({len(program.processes)} process(es))", file=out)
        return 0
    return 1


def cmd_run(args, out) -> int:
    with open(args.path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        compiled = compile_program(source)
    except (SyntaxError, CheckError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    for warning in compiled.warnings:
        print(f"warning: {warning}", file=out)
    if not args.spawn:
        print(
            "error: nothing to run — add --spawn instance=Process[:json_args]",
            file=out,
        )
        return 1
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    system = HopeSystem(
        seed=args.seed,
        latency=ConstantLatency(args.latency),
        trace=tracer,
        aid_mode=args.aid_mode,
        fast_rollback=args.fast_rollback,
        fossil_collect=args.fossil_collect,
        fossil_interval=args.fossil_interval,
        metrics=registry,
    )
    for spec in args.spawn:
        compiled.spawn(system, spec.instance, spec.process, *spec.args)
    final = system.run(until=args.until, max_events=args.max_events)
    stats = system.stats()
    print(f"finished at t={final:g}", file=out)
    for spec in args.spawn:
        proc = system.procs[spec.instance]
        outputs = system.committed_outputs(spec.instance)
        status = "done" if proc.done else "blocked"
        print(f"[{spec.instance}] {status}, result={proc.result!r}", file=out)
        for value in outputs:
            print(f"[{spec.instance}] output: {value!r}", file=out)
    print(
        f"stats: rollbacks={stats['rollbacks']} messages={stats['messages_sent']} "
        f"wasted={stats['wasted_time']:g} guesses={stats['guesses']}",
        file=out,
    )
    if tracer is not None:
        print("\ntrace:", file=out)
        print(tracer.format(), file=out)
    if registry is not None:
        rendered = system.export_metrics(args.metrics_format)
        if args.metrics_out == "-":
            print(rendered, file=out, end="")
        else:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(rendered)
            print(f"metrics: wrote {args.metrics_format} to {args.metrics_out}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "check":
        return cmd_check(args.path, out)
    return cmd_run(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
