"""The parallel backend: real OS workers behind the ``Backend`` seam.

``HopeSystem(backend="parallel", workers=N)`` shards its processes over
``N`` forked workers, each running a full single-shard
:class:`~repro.runtime.engine.HopeSystem` (see :mod:`.worker`), and
coordinates them with a conservative window protocol:

* **Lookahead** ``L`` is the constant message latency: any information a
  shard emits at virtual time ``t`` (a message, a relayed resolution)
  takes effect elsewhere no earlier than ``t + L``.
* Each round the coordinator computes ``T`` — the earliest pending
  event across all shards and in-flight frames — and grants every shard
  the window ``[T, T + L)``.  Nothing generated inside the window can
  land inside it, so shards run their windows concurrently without ever
  seeing an event out of order.

Cross-shard speculation needs no extra machinery beyond the frames: a
message from a speculative interval carries its AID tag keys, the
receiving shard adopts *mirror* AIDs for foreign keys, and definite
affirm/deny resolutions are relayed (one latency later) by the
``__remote__`` pseudo-process.  Retraction frames are an optimisation;
correctness rests on tag resolution dropping dead messages, exactly as
in the single-simulator runtime.

Determinism contract (see docs/LIMITATIONS.md): the *committed* state of
a parallel run is deterministic and matches the sim twin for
branch-symmetric programs; event interleavings and per-shard trace
streams are not byte-identical to the sim's.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Any, Callable, Generator, Optional

from ..core.aid import AidStatus
from ..core.errors import HopeError
from ..runtime.backend import Backend
from ..sim.latency import ConstantLatency
from .wire import (
    DETECTOR_DENY,
    AckFrame,
    MsgFrame,
    ResolveFrame,
    RetractFrame,
    ShardSpec,
    fid_origin,
    frame_apply_time,
    frame_sort_key,
)
from .worker import worker_main

#: Options a parallel system cannot honour (each names the conflicting
#: subsystem so the constructor error explains itself).
_REJECTED = {
    "trace": "tracing is per-shard; run the sim backend for a trace",
    "faults": "fault plans assume one shared network fate stream",
    "reliable": "reliable delivery duplicates the wire-format acks",
    "failure_detector": "worker death is the detector (coordinator-side)",
    "fossil_collect": "fossil collection cannot see cross-shard pins",
    "shuffle_ties": "tie shuffling is a model-checking (sim) feature",
    "controller": "directed scheduling is a model-checking (sim) feature",
    "transport": "the parallel backend installs its own ShardTransport",
}

_STATUS_RANK = {"pending": 0, "affirmed": 1, "denied": 2}


class _SpeculativeOutput:
    """Interval stand-in for a worker output that never committed."""

    __slots__ = ()
    definite = False


_SPECULATIVE = _SpeculativeOutput()


class ParallelBackend(Backend):
    """Coordinator living in the user's process; workers live in forks."""

    name = "parallel"

    def __init__(self, engine, workers: int, config: dict,
                 opts: Optional[dict] = None) -> None:
        self.engine = engine
        self.workers = workers
        self.config = config
        self.opts = dict(opts or {})
        self._validate()
        latency = config["latency"]
        self.lookahead: float = latency.value
        #: (name, fn, args) in spawn order — the placement domain.
        self.specs: list = []
        self.placement: dict = {}
        self._ran = False
        self._stats: Optional[dict] = None
        self._aid_statuses: dict = {}
        self._windows = 0
        self._crashed_workers: list = []

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        config = self.config
        offenders = [
            f"{key} ({why})" for key, why in _REJECTED.items() if config[key]
        ]
        if offenders:
            raise HopeError(
                "parallel backend does not support: " + "; ".join(offenders)
            )
        if config["aid_mode"] != "registry":
            raise HopeError(
                "parallel backend requires aid_mode='registry' — the "
                "aid_task control plane owns a single-simulator task"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise HopeError(f"workers must be a positive int, got {self.workers!r}")
        latency = config["latency"]
        if not isinstance(latency, ConstantLatency) or latency.value <= 0:
            raise HopeError(
                "parallel backend requires latency=ConstantLatency(L) with "
                "L > 0 — the constant latency is the conservative lookahead "
                f"window (got {latency!r})"
            )
        unknown = set(self.opts) - {"placement", "crash_at"}
        if unknown:
            raise HopeError(f"unknown parallel_opts: {sorted(unknown)}")

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    def spawn(self, name: str, fn: Callable[..., Generator], *args: Any):
        from ..runtime.engine import ProcessRuntime

        if self._ran:
            raise HopeError(
                "parallel backend: all spawns must precede run() — shards "
                "are laid out once (no dynamic placement)"
            )
        if name in self.engine.procs:
            raise HopeError(f"process {name!r} already spawned")
        # Facade record in the coordinator: results/outputs are filled in
        # from the worker's final report after run().
        proc = ProcessRuntime(name, fn, args)
        self.engine.procs[name] = proc
        self.specs.append((name, fn, args))
        return proc

    def run(self, until: Optional[float], max_events: Optional[int]) -> float:
        if self._ran:
            raise HopeError("parallel backend: run() may only be called once")
        if not self.specs:
            self._ran = True
            self._stats = self._base_stats()
            return 0.0
        self._ran = True
        self.placement = self._place()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX only
            raise HopeError(
                "parallel backend requires the 'fork' start method (POSIX)"
            ) from exc
        crash_at = dict(self.opts.get("crash_at") or {})
        conns: dict = {}
        procs: dict = {}
        for w in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            spec = ShardSpec(
                index=w,
                nworkers=self.workers,
                specs=tuple(s for s in self.specs if self.placement[s[0]] == w),
                placement=self.placement,
                lookahead=self.lookahead,
                config=self.config,
                crash_at=crash_at.get(w),
                max_events=max_events,
            )
            proc = ctx.Process(target=worker_main, args=(child_conn, spec),
                               daemon=True)
            proc.start()
            child_conn.close()
            conns[w] = parent_conn
            procs[w] = proc
        try:
            final = self._coordinate(until, conns)
        finally:
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs.values():
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5)
        return final

    def stats(self) -> Optional[dict]:
        return self._stats if self._stats is not None else self._base_stats()

    def aid_status(self, key: str):
        status = self._aid_statuses.get(key)
        return AidStatus(status) if status is not None else None

    def owns_metrics(self) -> bool:
        # Worker registries are snapshotted (gauges refreshed shard-side)
        # and merged after run(); a coordinator-side refresh would clobber
        # the merged gauges with this process's empty timeline.
        return self._ran and self.config["metered"]

    # ------------------------------------------------------------------
    # coordination
    # ------------------------------------------------------------------
    def _place(self) -> dict:
        placement = {
            name: i % self.workers
            for i, (name, _fn, _args) in enumerate(self.specs)
        }
        overrides = self.opts.get("placement") or {}
        for name, w in overrides.items():
            if name not in placement:
                raise HopeError(f"placement override for unknown process {name!r}")
            if not isinstance(w, int) or not 0 <= w < self.workers:
                raise HopeError(
                    f"placement[{name!r}] = {w!r} outside workers 0..{self.workers - 1}"
                )
            placement[name] = w
        return placement

    def _coordinate(self, until: Optional[float], conns: dict) -> float:
        lookahead = self.lookahead
        alive = dict(conns)
        next_times: dict = {}
        pending: dict = {w: [] for w in conns}
        aid_owner: dict = {}   # key -> (proc name, worker)
        prev_until = 0.0
        detector_seq = 0
        horizon = (math.nextafter(until, math.inf) if until is not None
                   else None)

        def handle_death(w: int) -> None:
            # Fail-stop: the coordinator *is* the failure detector.  Every
            # assumption the dead shard minted and never resolved gets a
            # definite deny in the survivors, rolling their dependent
            # speculation back (the paper's Eq 15 cascade, administered
            # by the __detector__ pseudo-process).
            nonlocal detector_seq
            self._crashed_workers.append(w)
            alive.pop(w, None)
            next_times.pop(w, None)
            pending.pop(w, None)
            for name, widx in self.placement.items():
                if widx == w:
                    proc = self.engine.procs[name]
                    proc.crashed = True
                    proc.done = False
            for key, (_owner, widx) in sorted(aid_owner.items()):
                if widx != w:
                    continue
                if self._aid_statuses.get(key) in ("affirmed", "denied"):
                    continue
                self._aid_statuses[key] = "denied"
                detector_seq += 1
                frame = ResolveFrame(DETECTOR_DENY, key, -1, prev_until,
                                     detector_seq)
                for survivor in pending:
                    pending[survivor].append(frame)

        def recv_reports() -> dict:
            reports = {}
            for w in sorted(alive):
                try:
                    msg = alive[w].recv()
                except (EOFError, OSError):
                    handle_death(w)
                    continue
                if msg[0] == "error":
                    info = msg[1]
                    raise HopeError(
                        f"parallel worker {info['index']} failed: "
                        f"{info['error']}\n{info['traceback']}"
                    )
                reports[w] = msg[1]
            return reports

        def route(origin: int, frame) -> None:
            kind = type(frame)
            if kind is ResolveFrame:
                for w in pending:
                    if w != origin:
                        pending[w].append(frame)
                return
            if kind is AckFrame:
                dst_w = fid_origin(frame.fid)
            else:  # MsgFrame / RetractFrame
                dst_w = self.placement[frame.dst]
            if dst_w in pending:   # frames to dead shards vanish
                pending[dst_w].append(frame)

        def absorb(reports: dict) -> None:
            for w in sorted(reports):
                payload = reports[w]
                next_times[w] = payload["next_time"]
                for key, owner in payload["new_aids"]:
                    aid_owner[key] = (owner, w)
                for frame in payload["frames"]:
                    route(w, frame)

        absorb(recv_reports())    # initial unprompted reports
        while True:
            candidates = [t for t in next_times.values() if t is not None]
            for frames in pending.values():
                for frame in frames:
                    t = frame_apply_time(frame, lookahead)
                    if t is not None:
                        candidates.append(t)
            if not candidates or not alive:
                break
            head = min(candidates)
            if until is not None and head > until:
                break
            bound = head + lookahead
            if horizon is not None and bound > horizon:
                bound = horizon
            for w in sorted(alive):
                frames = sorted(pending[w],
                                key=lambda f: frame_sort_key(f, lookahead))
                pending[w] = []
                try:
                    alive[w].send(("grant", bound, frames))
                except (BrokenPipeError, OSError):
                    handle_death(w)
            prev_until = bound
            self._windows += 1
            absorb(recv_reports())

        finals = self._collect_finals(alive, handle_death)
        return self._merge(finals, until)

    def _collect_finals(self, alive: dict, handle_death) -> dict:
        for w in sorted(alive):
            try:
                alive[w].send(("finish",))
            except (BrokenPipeError, OSError):
                handle_death(w)
        finals = {}
        for w in sorted(alive):
            try:
                msg = alive[w].recv()
            except (EOFError, OSError):
                handle_death(w)
                continue
            if msg[0] == "error":
                info = msg[1]
                raise HopeError(
                    f"parallel worker {info['index']} failed: "
                    f"{info['error']}\n{info['traceback']}"
                )
            finals[w] = msg[1]
        return finals

    # ------------------------------------------------------------------
    # result merge
    # ------------------------------------------------------------------
    def _merge(self, finals: dict, until: Optional[float]) -> float:
        from ..runtime.engine import OutputRecord

        summed: dict = {}
        per_worker_events: dict = {}
        for w in sorted(finals):
            final = finals[w]
            for name, info in final["procs"].items():
                proc = self.engine.procs[name]
                proc.done = info["done"]
                proc.crashed = info["crashed"]
                proc.result = info["result"]
                proc.restarts = info["restarts"]
                proc.outputs = [
                    OutputRecord(value, i, None if committed else _SPECULATIVE,
                                 time)
                    for i, (value, committed, time) in enumerate(info["outputs"])
                ]
            for key, status in final["aids"].items():
                if (_STATUS_RANK[status]
                        > _STATUS_RANK.get(self._aid_statuses.get(key,
                                                                  "pending"), 0)):
                    self._aid_statuses[key] = status
            _sum_numeric(summed, final["stats"])
            per_worker_events[w] = final["stats"].get("sim_events", 0)
            if self.config["metered"] and final["metrics"] is not None:
                from ..obs.metrics import merge_registry_dump

                merge_registry_dump(self.engine.metrics, final["metrics"])
        self._stats = {
            **self._base_stats(),
            "windows": self._windows,
            "crashed_workers": sorted(self._crashed_workers),
            "per_worker_events": per_worker_events,
            **summed,
        }
        nows = [final["now"] for final in finals.values()]
        final_time = max(nows) if nows else 0.0
        if until is not None and final_time < until:
            final_time = until
        return final_time

    def _base_stats(self) -> dict:
        return {
            "backend": "parallel",
            "workers": self.workers,
            "lookahead": self.lookahead,
            "os_cpus": os.cpu_count() or 1,
        }


def _sum_numeric(acc: dict, stats: dict) -> None:
    """Fold a worker stats dict into ``acc``: numbers add, nested dicts
    recurse, everything else (mode strings, ...) keeps the first value."""
    for key, value in stats.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            acc[key] = acc.get(key, 0) + value
        elif isinstance(value, dict):
            acc.setdefault(key, {})
            _sum_numeric(acc[key], value)
        else:
            acc.setdefault(key, value)
