"""Parallel-backend worker: one OS process hosting one shard.

Each worker builds a full :class:`~repro.runtime.engine.HopeSystem`
(sim backend) over a :class:`~.shard.ShardTransport`, spawns its slice
of the processes, and then obeys the coordinator's window protocol:

1. report ``next_time`` (earliest pending local event) and drain
   outbound frames;
2. receive a *grant* ``(until, frames)`` — inject the frames (already
   coordinator-sorted), then run every local event with
   ``time < until``;
3. repeat until the coordinator sends *finish*, then ship a final
   report: per-process results/outputs, AID statuses, stats, and (when
   metered) a metrics dump.

The conservative-window safety argument lives in
:meth:`repro.parallel.backend.ParallelBackend._coordinate`; the worker
only ever trusts the granted bound.
"""

from __future__ import annotations

import os
import traceback

from .shard import RemoteBridge, ShardTransport
from .wire import SERIAL_STRIDE, ShardSpec


def _build_system(spec: ShardSpec):
    """Construct the shard's HopeSystem + bridge (returns both)."""
    from ..obs.metrics import MetricsRegistry
    from ..runtime.engine import HopeSystem

    config = spec.config
    holder = {}

    def transport_factory(sim, latency_model, streams):
        transport = ShardTransport(
            sim, latency_model, placement=spec.placement, index=spec.index,
            lookahead=spec.lookahead,
        )
        holder["transport"] = transport
        return transport

    system = HopeSystem(
        seed=config["seed"],
        latency=config["latency"],
        rollback_overhead=config["rollback_overhead"],
        strict_aids=config["strict_aids"],
        speculation=config["speculation"],
        fast_rollback=config["fast_rollback"],
        kernel=config["kernel"],
        metrics=MetricsRegistry() if config["metered"] else None,
        transport=transport_factory,
    )
    transport = holder["transport"]
    # Disjoint serial ranges: shard k mints AID keys "name#<k*STRIDE+n>",
    # so mirror adoption on other shards is collision-free.
    system.machine.offset_serials(spec.index * SERIAL_STRIDE)
    bridge = RemoteBridge(system, transport, spec.index, spec.lookahead)
    system.remote = bridge
    for name, fn, args in spec.specs:
        system.spawn(name, fn, *args)
    # Mailboxes for every endpoint (remote senders need none locally,
    # but inbound frames address co-located destinations by name).
    return system, bridge, transport


def _run_window(system, bound: float, max_events) -> None:
    """Run every local event strictly before ``bound``."""
    sim = system.sim
    while True:
        t = sim.peek_time()
        if t is None or t >= bound:
            return
        sim.step()
        if max_events is not None and sim.events_processed > max_events:
            from ..sim.kernel import EventLimitExceeded

            raise EventLimitExceeded(
                f"shard exceeded {max_events} events at t={sim.now:.6g}; "
                "likely livelock"
            )


def _report(system, bridge, transport) -> dict:
    return {
        "next_time": system.sim.peek_time(),
        "frames": transport.drain_outbound(),
        "new_aids": bridge.drain_new_aids(),
    }


def _final_report(spec: ShardSpec, system, transport) -> dict:
    from ..obs.metrics import dump_registry

    now = system.sim.now
    system.timeline.close_all(now)
    procs = {}
    for name, proc in system.procs.items():
        procs[name] = {
            "done": proc.done,
            "crashed": proc.crashed,
            "result": proc.result,
            "restarts": proc.restarts,
            "outputs": [(r.value, r.committed, r.time) for r in proc.outputs],
        }
    return {
        "index": spec.index,
        "now": now,
        "procs": procs,
        "aids": {key: aid.status.value
                 for key, aid in system.machine.aids.items()},
        "stats": system.stats(),
        "metrics": (dump_registry(system.metrics_snapshot())
                    if spec.config["metered"] else None),
    }


def worker_main(conn, spec: ShardSpec) -> None:
    """Entry point of a forked worker (never returns normally)."""
    try:
        system, bridge, transport = _build_system(spec)
        crash_at = spec.crash_at
        conn.send(("report", _report(system, bridge, transport)))
        while True:
            cmd = conn.recv()
            if cmd[0] == "finish":
                conn.send(("final", _final_report(spec, system, transport)))
                conn.close()
                os._exit(0)
            _op, until, frames = cmd
            for frame in frames:
                bridge.inject(frame)
            if crash_at is not None and until > crash_at:
                # Fail-stop mid-window: run up to the crash instant, then
                # vanish without a word — mid-speculation, AIDs pending.
                _run_window(system, crash_at, spec.max_events)
                os._exit(17)
            _run_window(system, until, spec.max_events)
            conn.send(("report", _report(system, bridge, transport)))
    except BaseException as exc:  # noqa: BLE001 - ship the diagnosis out
        try:
            conn.send(("error", {
                "index": spec.index,
                "error": repr(exc),
                "traceback": traceback.format_exc(),
            }))
        except Exception:
            pass
        os._exit(1)
