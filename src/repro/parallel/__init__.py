"""Real-parallel execution backend (the "PVM redux" of the paper's §8
outlook): HOPE processes sharded over OS workers, coordinated with a
conservative lookahead window, speculation crossing shard boundaries as
wire-format frames.

Entry point: ``HopeSystem(backend="parallel", workers=N,
latency=ConstantLatency(L))`` — see :class:`ParallelBackend`.
"""

from .backend import ParallelBackend
from .shard import RemoteBridge, ShardTransport, WireStats
from .wire import (
    AckFrame,
    MsgFrame,
    ResolveFrame,
    RetractFrame,
    ShardSpec,
)

__all__ = [
    "AckFrame",
    "MsgFrame",
    "ParallelBackend",
    "RemoteBridge",
    "ResolveFrame",
    "RetractFrame",
    "ShardSpec",
    "ShardTransport",
    "WireStats",
]
