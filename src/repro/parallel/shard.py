"""Worker-side shard plumbing: the transport and the remote bridge.

A shard is an ordinary :class:`~repro.runtime.engine.HopeSystem` (sim
backend) hosting a subset of the processes, with two extra pieces:

* :class:`ShardTransport` — a :class:`~repro.sim.channel.Network`
  subclass.  Sends between co-located processes take the normal
  simulator path, byte-for-byte; sends whose destination lives on
  another worker become :class:`~.wire.MsgFrame` records queued for the
  coordinator.  The returned :class:`RemoteDelivery` duck-types
  :class:`~repro.sim.channel.Delivery`, so the engine's rollback
  machinery retracts cross-shard messages with the same call it uses
  locally.

* :class:`RemoteBridge` — the object the engine sees as ``self.remote``.
  It adopts mirror AIDs for keys minted on other shards, relays definite
  affirm/deny resolutions outward (and applies inbound ones through the
  ``__remote__`` machine pseudo-process), reports fresh ``aid_init``
  ownership to the coordinator for crash handling, and dedups/acks
  inbound message frames.

Safety note: cross-shard retraction is *not* load-bearing.  A message
sent from a speculative interval carries the interval's AID tag keys; if
the assumption is denied before delivery, the receiving shard's
``resolve_tag_keys`` sees the denied (mirror) AID and drops the message
(``drop_dead_message``), exactly as in the single-simulator runtime.
:class:`~.wire.RetractFrame` merely saves the wire hop when the rollback
wins the race.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.events import AffirmEvent, DenyEvent
from ..sim.channel import Delivery, Message, Network, UnknownEndpointError
from .wire import (
    AFFIRM,
    DENY,
    DETECTOR_DENY,
    AckFrame,
    MsgFrame,
    ResolveFrame,
    RetractFrame,
    fid_origin,
    make_fid,
)

#: Machine pseudo-process that applies relayed remote resolutions.  Like
#: the failure detector's ``__detector__``, it never speculates, so its
#: affirms/denies are definite (Eq 7-9 / Eq 15).
REMOTE_PID = "__remote__"
DETECTOR_PID = "__detector__"


class WireStats:
    """Cross-shard traffic counters (per worker; summed by the backend)."""

    __slots__ = (
        "frames_out", "frames_in", "acks_in", "acks_out", "dup_suppressed",
        "retracts_out", "retracts_in", "retracts_unsent", "resolves_out",
        "resolves_in", "resolve_noops",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in self.__slots__}


class RemoteDelivery:
    """Retractable handle on a message that left the shard.

    Duck-types the :class:`~repro.sim.channel.Delivery` surface the
    engine touches (``message``, ``retract``, ``delivered``); there is no
    local delivery event to cancel, so retraction either unsends the
    queued frame or emits a :class:`RetractFrame`.
    """

    __slots__ = ("message", "_transport")

    def __init__(self, message: Message, transport: "ShardTransport") -> None:
        self.message = message
        self._transport = transport

    def retract(self) -> None:
        if not self.message.dead:
            self._transport.retract_remote(self.message)

    @property
    def delivered(self) -> bool:
        return False  # delivery happens on the destination shard

    def __repr__(self) -> str:
        return f"RemoteDelivery({self.message!r})"


class ShardTransport(Network):
    """Routes intra-shard messages locally, inter-shard ones as frames."""

    def __init__(self, sim, latency, *, placement: dict, index: int,
                 lookahead: float) -> None:
        super().__init__(sim, latency)
        self.placement = placement
        self.index = index
        self.lookahead = lookahead
        self.wire = WireStats()
        #: Frames queued since the last drain (shipped once per window).
        self.outbound: list = []
        self._seq = 0
        self._fid_seq = 0
        #: Inbound fid -> local Delivery, for applying RetractFrames.
        self._in_deliveries: dict[int, Delivery] = {}
        #: Inbound fids already injected (wire-level dedup; the pipes
        #: themselves never duplicate, so this is format armour).
        self._seen_fids: set = set()
        #: Outbound fids awaiting an AckFrame.
        self._await_ack: set = set()

    # -- outbound ------------------------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def send(self, src: str, dst: str, payload: Any,
             tags: Optional[frozenset] = None,
             latency_override: Optional[float] = None,
             msg_id: Optional[int] = None) -> Delivery:
        owner = self.placement.get(dst)
        if owner is None:
            raise UnknownEndpointError(
                f"no endpoint named {dst!r} in the shard placement — the "
                "parallel backend requires all processes spawned before run()"
            )
        if owner == self.index:
            return super().send(src, dst, payload, tags=tags,
                                latency_override=latency_override,
                                msg_id=msg_id)
        self._fid_seq += 1
        fid = make_fid(self.index, self._fid_seq)
        now = self.sim.now
        message = Message(src, dst, payload, tags, send_time=now, msg_id=fid)
        delay = (latency_override if latency_override is not None
                 else self.latency.sample(src, dst))
        self.outbound.append(MsgFrame(
            fid, src, dst, payload, tuple(sorted(message.tags)),
            now, now + delay,
        ))
        self._await_ack.add(fid)
        self.messages_sent += 1
        self.tag_count_total += len(message.tags)
        self.wire.frames_out += 1
        return RemoteDelivery(message, self)

    def retract_remote(self, message: Message) -> None:
        message.dead = True
        fid = message.msg_id
        for i, frame in enumerate(self.outbound):
            if type(frame) is MsgFrame and frame.fid == fid:
                # Never shipped: unsend silently — the rollback beat the
                # window boundary, so the wire never sees the message.
                del self.outbound[i]
                self._await_ack.discard(fid)
                self.wire.frames_out -= 1
                self.wire.retracts_unsent += 1
                return
        self.outbound.append(RetractFrame(fid, message.dst, self.next_seq()))
        self.wire.retracts_out += 1

    def drain_outbound(self) -> list:
        frames, self.outbound = self.outbound, []
        return frames

    # -- inbound (called by RemoteBridge, in coordinator-sorted order) --
    def inject_message(self, frame: MsgFrame) -> None:
        if frame.fid in self._seen_fids:
            self.wire.dup_suppressed += 1
            return
        self._seen_fids.add(frame.fid)
        message = Message(frame.src, frame.dst, frame.payload,
                          frozenset(frame.tags), send_time=frame.send_time,
                          msg_id=frame.fid)
        box = self.mailbox(frame.dst)
        # The window protocol guarantees deliver_time >= now: a frame
        # sent at t inside window [T, T+L) lands at t+L >= T+L, and no
        # worker has run past T+L when the frame is injected.
        event = self._schedule_delivery(box, message,
                                        frame.deliver_time - self.sim.now)
        self._in_deliveries[frame.fid] = Delivery(message, event)
        self.outbound.append(AckFrame(frame.fid))
        self.wire.frames_in += 1
        self.wire.acks_out += 1

    def inject_retract(self, frame: RetractFrame) -> None:
        delivery = self._in_deliveries.pop(frame.fid, None)
        if delivery is not None:
            delivery.retract()
        else:
            # Retract outran the message (cannot happen with the sorted
            # grant order, but the wire format tolerates it): remember
            # the fid so the late message is dropped as a duplicate.
            self._seen_fids.add(frame.fid)
        self.wire.retracts_in += 1

    def inject_ack(self, frame: AckFrame) -> None:
        self._await_ack.discard(frame.fid)
        self.wire.acks_in += 1

    @property
    def unacked(self) -> int:
        return len(self._await_ack)

    # -- engine-facing polymorphic hooks -------------------------------
    def stats_entries(self) -> dict:
        return {"wire": self.wire.as_dict()}


class RemoteBridge:
    """The shard's view of everything beyond its own simulator."""

    def __init__(self, system, transport: ShardTransport, index: int,
                 lookahead: float) -> None:
        self.system = system
        self.machine = system.machine
        self.transport = transport
        self.index = index
        self.lookahead = lookahead
        #: (key, owner_process) pairs minted since the last report.
        self.new_aids: list = []
        #: Keys whose definite resolution was already relayed (or arrived
        #: from outside) — each crosses the wire at most once per shard.
        self._relayed: set = set()
        self.machine.create_process(REMOTE_PID)
        self.machine.create_process(DETECTOR_PID)
        self.machine.subscribe(self._on_machine_event)

    # -- engine hooks (HopeSystem.remote) ------------------------------
    def note_aid_init(self, key: str, owner: str) -> None:
        self.new_aids.append((key, owner))

    def lookup_aid(self, key: str):
        """Resolve an AID key, adopting a mirror for remote-minted keys."""
        return self.machine.adopt_aid(key)

    def drain_new_aids(self) -> list:
        aids, self.new_aids = self.new_aids, []
        return aids

    # -- outbound resolutions ------------------------------------------
    def _on_machine_event(self, event) -> None:
        if type(event) is AffirmEvent and event.definite:
            kind = AFFIRM
        elif type(event) is DenyEvent and event.definite:
            kind = DENY
        else:
            return
        key = event.aid.key
        if key in self._relayed:
            return
        self._relayed.add(key)
        self.transport.outbound.append(ResolveFrame(
            kind, key, self.index, self.system.sim.now,
            self.transport.next_seq(),
        ))
        self.transport.wire.resolves_out += 1

    # -- inbound frames (coordinator-sorted grant order) ---------------
    def inject(self, frame) -> None:
        kind = type(frame)
        if kind is MsgFrame:
            for key in frame.tags:
                self.machine.adopt_aid(key)
            self.transport.inject_message(frame)
        elif kind is ResolveFrame:
            self._inject_resolve(frame)
        elif kind is RetractFrame:
            self.transport.inject_retract(frame)
        elif kind is AckFrame:
            self.transport.inject_ack(frame)
        else:  # pragma: no cover - coordinator only routes known frames
            raise TypeError(f"unknown frame {frame!r}")

    def _inject_resolve(self, frame: ResolveFrame) -> None:
        self.transport.wire.resolves_in += 1
        if frame.kind == DETECTOR_DENY:
            # Coordinator-issued: apply at the window boundary it names
            # (every surviving worker has run strictly past-less of it).
            apply_time = frame.time
        else:
            # Peer-relayed: the resolution "message" travels one network
            # latency, same as any other cross-shard information.
            apply_time = frame.time + self.lookahead
        # A resolution that already reached this shard (e.g. the mirror
        # was adopted and resolved by a second relay path) applies as a
        # no-op inside _apply_resolution, not here: the pending check
        # must happen at apply time, not inject time.
        self.system.sim.schedule_at(apply_time, self._apply_resolution,
                                    frame, label=f"remote-{frame.kind}")

    def _apply_resolution(self, frame: ResolveFrame) -> None:
        aid = self.machine.adopt_aid(frame.key)
        if not aid.pending:
            self.transport.wire.resolve_noops += 1
            return
        # Mark relayed *before* applying: the resulting definite event is
        # the relay's own arrival, not news this shard must re-broadcast.
        # (Resolutions *cascaded* from it — locally parked denies, spec
        # affirms finalized by the shed — have their own keys and relay
        # normally.)
        self._relayed.add(frame.key)
        pid = DETECTOR_PID if frame.kind == DETECTOR_DENY else REMOTE_PID
        if frame.kind == AFFIRM:
            self.machine.affirm(pid, aid, via="remote")
        else:
            self.machine.deny(pid, aid, via="remote")
