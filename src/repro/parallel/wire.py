"""Wire format for the parallel backend: frames between shard workers.

Everything that crosses a worker boundary is a compact :func:`~typing.
NamedTuple` frame shipped over a ``multiprocessing`` pipe (stdlib pickle
— the container has no msgpack, and the frames are all plain scalars and
small tuples, so pickle's framing overhead is the only cost).  Frames
carry *identifiers*, never live objects: a message frame names its AID
tags by key, and the receiving shard adopts mirror
:class:`~repro.core.aid.AssumptionId` objects for keys it has never seen
(:meth:`repro.core.machine.Machine.adopt_aid`).

Identifier scheme
-----------------

* **fid** — globally unique frame/message id.  ``fid = (src_worker + 1)
  * FID_STRIDE + seq`` so the origin worker is recoverable
  (``fid_origin``) and fids can never collide with the small per-network
  local ``msg_id`` counters (local ids start at 1; the lowest fid is
  ``FID_STRIDE``).
* **AID serials** — each shard machine starts its serial counter at
  ``worker_index * SERIAL_STRIDE`` (:meth:`Machine.offset_serials`), so
  two shards never mint the same ``name#serial`` key for different
  assumptions and mirror adoption is unambiguous.

Determinism
-----------

Frame *application order* must not depend on OS scheduling.  Every frame
created by a shard gets a per-shard monotonically increasing ``seq``;
the coordinator sorts each grant's frames by :func:`frame_sort_key`
— ``(apply_time, type_rank, origin, seq)`` — before handing them to a
worker, giving a total order that is a pure function of the computation.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

#: Fid namespace width per worker (also the per-shard AID serial stride).
FID_STRIDE = 1_000_000_000
SERIAL_STRIDE = 1_000_000_000

#: ResolveFrame kinds.  ``affirm``/``deny`` are relayed definite
#: resolutions, applied at ``time + lookahead`` by the ``__remote__``
#: pseudo-process.  ``detector_deny`` is the coordinator's failure-
#: detector action for a dead worker's assumptions, applied at ``time``
#: exactly by the ``__detector__`` pseudo-process.
AFFIRM = "affirm"
DENY = "deny"
DETECTOR_DENY = "detector_deny"


def make_fid(worker_index: int, seq: int) -> int:
    return (worker_index + 1) * FID_STRIDE + seq


def fid_origin(fid: int) -> int:
    return fid // FID_STRIDE - 1


class MsgFrame(NamedTuple):
    """One cross-shard message: payload plus the sender's AID tag keys."""

    fid: int
    src: str
    dst: str
    payload: Any
    tags: tuple          # sorted AID key strings
    send_time: float
    deliver_time: float  # send_time + lookahead


class RetractFrame(NamedTuple):
    """Kill an already shipped message (sender's interval rolled back).

    In-flight optimization only: even without it the receiver drops the
    message at delivery, because its tags name the denied AID (the
    ``drop_dead_message`` path).  ``dst`` names the destination process
    so the coordinator can route without a fid table."""

    fid: int
    dst: str
    seq: int


class AckFrame(NamedTuple):
    """Receipt acknowledgement, routed back to ``fid_origin(fid)``."""

    fid: int


class ResolveFrame(NamedTuple):
    """A definite affirm/deny crossing shard boundaries."""

    kind: str            # AFFIRM | DENY | DETECTOR_DENY
    key: str             # AID key ("name#serial")
    origin: int          # issuing worker index (-1: the coordinator)
    time: float          # issue time; applied at time (+ lookahead)
    seq: int


class ShardSpec(NamedTuple):
    """Everything a worker needs to build its shard (crosses via fork)."""

    index: int
    nworkers: int
    specs: tuple         # ((name, fn, args), ...) for this shard only
    placement: dict      # process name -> worker index (all processes)
    lookahead: float
    config: dict         # engine kwargs subset (seed, kernel, ...)
    crash_at: Optional[float]
    max_events: Optional[int]


_TYPE_RANK = {AckFrame: 0, RetractFrame: 1, MsgFrame: 2, ResolveFrame: 3}


def frame_sort_key(frame, lookahead: float) -> tuple:
    """Total order for injecting one grant's frames into a shard.

    Acks and retracts apply instantly at injection (they only flip
    bookkeeping bits), so they sort first; messages and resolutions sort
    by the virtual time their scheduled effect lands."""
    if type(frame) is MsgFrame:
        return (frame.deliver_time, 2, fid_origin(frame.fid), frame.fid)
    if type(frame) is ResolveFrame:
        apply = frame.time if frame.kind == DETECTOR_DENY else frame.time + lookahead
        return (apply, 3, frame.origin, frame.seq)
    if type(frame) is RetractFrame:
        return (-1.0, 1, fid_origin(frame.fid), frame.seq)
    return (-1.0, 0, fid_origin(frame.fid), frame.fid)


def frame_apply_time(frame, lookahead: float) -> Optional[float]:
    """Earliest virtual time the frame makes its destination busy, or
    None for bookkeeping-only frames (acks, retracts) that never wake an
    idle shard."""
    if type(frame) is MsgFrame:
        return frame.deliver_time
    if type(frame) is ResolveFrame:
        if frame.kind == DETECTOR_DENY:
            return frame.time
        return frame.time + lookahead
    return None
