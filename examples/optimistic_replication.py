"""Optimistic concurrency control for replicated data (§7 future work).

Three clients hammer a shared counter through local caches.  The
optimistic clients assume their cached version is current and keep
computing; the primary validates and affirms/denies.  Compare against
pessimistic clients that read synchronously before every update.

Run:  python examples/optimistic_replication.py
"""

from repro.apps.replication import (
    ReplicationWorkload,
    run_optimistic_replication,
    run_pessimistic_replication,
)
from repro.sim import ConstantLatency


def main() -> None:
    latency = ConstantLatency(15.0)

    print("=== no contention (each client its own key) ===")
    workload = ReplicationWorkload(
        n_clients=3, ops_per_client=6, keys=("a", "b", "c")
    )
    opt = run_optimistic_replication(workload, latency=latency)
    pess = run_pessimistic_replication(workload, latency=latency)
    print(f"  optimistic : makespan {opt.makespan:8.1f}, denials {opt.denials}")
    print(f"  pessimistic: makespan {pess.makespan:8.1f}")
    print(f"  final cells agree: {opt.cells == pess.cells}")

    print("\n=== heavy contention (one hot key) ===")
    workload = ReplicationWorkload(n_clients=3, ops_per_client=6, keys=("hot",))
    opt = run_optimistic_replication(workload, latency=latency)
    pess = run_pessimistic_replication(workload, latency=latency)
    version, value = opt.cells["hot"]
    print(
        f"  optimistic : makespan {opt.makespan:8.1f}, denials {opt.denials}, "
        f"rollbacks {opt.rollbacks}"
    )
    print(f"  pessimistic: makespan {pess.makespan:8.1f}")
    print(
        f"  every op applied exactly once: "
        f"{value == workload.total_ops} (counter = {value})"
    )


if __name__ == "__main__":
    main()
