"""The paper's worked example: Figures 1 and 2, runnable.

Compares the pessimistic worker (synchronous RPCs, Figure 1) against the
optimistic Call Streaming transformation (Figure 2) on the same report
workload, across the scenarios the paper discusses: page not full, page
full (PartPage denied), and the message-order race (free_of(Order)
violation).

Run:  python examples/call_streaming.py
"""

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    run_optimistic,
    run_pessimistic,
)


def show(title: str, config: CallStreamConfig) -> None:
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    reference = expected_output(config)
    print(f"\n=== {title} ===")
    print(f"  pessimistic makespan : {pess.makespan:10.2f}")
    print(f"  optimistic  makespan : {opt.makespan:10.2f}")
    gain = 100 * (pess.makespan - opt.makespan) / pess.makespan
    print(f"  latency gain         : {gain:9.1f}%")
    print(f"  rollbacks            : {opt.rollbacks}")
    same = pess.server_output == opt.server_output == reference
    print(f"  ledgers identical    : {same}")
    if not same:  # pragma: no cover - would indicate a bug
        print("  PESS:", pess.server_output)
        print("  OPT :", opt.server_output)


def main() -> None:
    show(
        "happy path: page not full, S1 wins the race",
        CallStreamConfig(report_lines=(10,), page_size=60, latency=25.0),
    )
    show(
        "page full: PartPage denied, worker redone with newpage",
        CallStreamConfig(report_lines=(70,), page_size=60, latency=25.0),
    )
    show(
        "order race: S3 overtakes S1, free_of(Order) repairs it",
        CallStreamConfig(
            report_lines=(10,),
            page_size=60,
            latency=25.0,
            summary_prep=0.0,
            wart_latency=3.0,
        ),
    )
    show(
        "streaming 20 reports with pipelined verification",
        CallStreamConfig(
            report_lines=tuple([10] * 20),
            page_size=10_000,
            latency=25.0,
            n_warts=20,
        ),
    )


if __name__ == "__main__":
    main()
