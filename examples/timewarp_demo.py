"""HOPE subsumes Time Warp (§2): one workload, three executions.

Timestamped jobs from three senders cross a jittery network that reorders
them.  A sequential oracle defines the correct order-sensitive result;
genuine Time Warp (anti-messages, GVT) and HOPE (order assumptions as
AIDs) must both reproduce it.

Run:  python examples/timewarp_demo.py
"""

from repro.apps.virtual_time import fold, run_hope_order
from repro.baselines.timewarp import SequentialOracle, TimeWarpEngine
from repro.bench import vt_workload
from repro.sim import RandomStreams, UniformLatency


def tw_handler(state, vt, payload):
    state["acc"] = fold(state["acc"], vt, payload)
    return []


def main() -> None:
    workload = vt_workload(n_senders=3, jobs_per_sender=8)
    jitter = UniformLatency(0.5, 8.0, RandomStreams(4)["net"])

    oracle = SequentialOracle()
    oracle.add_lp("sink", tw_handler, {"acc": 0})
    for stream in workload.streams:
        for job in stream:
            oracle.inject("sink", job.vt, job.value)
    oracle.run()
    truth = oracle.states["sink"]["acc"]
    print(f"sequential oracle   : state={truth}")

    engine = TimeWarpEngine(
        latency=UniformLatency(0.5, 8.0, RandomStreams(4)["net2"]),
        service_time=0.2,
    )
    engine.add_lp("sink", tw_handler, {"acc": 0})
    for stream in workload.streams:
        for job in stream:
            engine.inject("sink", job.vt, job.value)
    engine.run(max_events=1_000_000)
    tw = engine.lps["sink"].state["acc"]
    stats = engine.stats()
    print(
        f"Time Warp           : state={tw}, rollbacks={stats['rollbacks']}, "
        f"anti-messages={stats['antis_sent']}, efficiency={stats['efficiency']:.2f}"
    )

    hope = run_hope_order(workload, latency=jitter, seed=4)
    print(
        f"HOPE (order AIDs)   : state={hope.final_state}, "
        f"rollbacks={hope.rollbacks}"
    )

    print(f"\nall three agree: {truth == tw == hope.final_state}")


if __name__ == "__main__":
    main()
