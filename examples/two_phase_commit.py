"""Optimistic two-phase commit: don't wait for the votes.

A client streams six transactions.  The optimistic coordinator answers
before collecting votes; an abort anywhere transparently unwinds the
client's speculative balance — including later transactions built on it.

Run:  python examples/two_phase_commit.py
"""

from repro.apps.commit import CommitWorkload, run_optimistic_commit
from repro.sim import ConstantLatency


def show(title, plans):
    workload = CommitWorkload(transactions=tuple(plans))
    result = run_optimistic_commit(workload, latency=ConstantLatency(8.0))
    print(f"\n=== {title} ===")
    print(f"  decisions : {['commit' if d else 'ABORT' for d in result.decisions]}")
    print(f"  final balance (100 per commit): {result.balance}")
    print(f"  rollbacks : {result.rollbacks}")
    for entry in result.ledger:
        print(f"  committed : {entry}")


def main() -> None:
    yes = {0: True, 1: True, 2: True}
    show("all transactions commit", [yes, yes, yes])
    show(
        "participant 1 vetoes the middle transaction",
        [yes, {1: False}, yes],
    )
    show(
        "cascading speculation: an early abort rewinds everything built on it",
        [{0: False}, yes, yes],
    )


if __name__ == "__main__":
    main()
