"""Quickstart: your first optimistic program.

A worker must pick an algorithm before it knows whether a remote lock
will be granted.  Pessimistically it would wait a full round trip.  With
HOPE it *guesses* the lock is granted, runs the fast path speculatively,
and the lock service later affirms (keep the work) or denies (the worker
is automatically rolled back to the guess and takes the slow path).

Run:  python examples/quickstart.py
"""

from repro import HopeSystem
from repro.sim import ConstantLatency


def worker(p):
    lock = yield p.aid_init("lock-granted")
    yield p.send("lock-service", lock)          # ask, but don't wait
    if (yield p.guess(lock)):                   # True, speculatively
        yield p.emit("fast path: assumed the lock is ours")
        yield p.compute(2.0)
    else:                                       # only after a denial
        yield p.emit("slow path: waiting our turn")
        yield p.compute(8.0)
    yield p.emit("worker finished")
    return (yield p.now())


def lock_service(p, grant: bool):
    msg = yield p.recv()
    yield p.compute(3.0)                        # deciding takes a while
    if grant:
        yield p.affirm(msg.payload)
    else:
        yield p.deny(msg.payload)


def run(grant: bool) -> None:
    label = "GRANTED" if grant else "DENIED"
    print(f"\n=== lock {label} ===")
    system = HopeSystem(latency=ConstantLatency(1.0))
    system.spawn("worker", worker)
    system.spawn("lock-service", lock_service, grant)
    system.run()
    for line in system.committed_outputs("worker"):
        print(f"  committed: {line}")
    stats = system.stats()
    print(
        f"  finished at t={system.result_of('worker'):g}, "
        f"rollbacks={stats['rollbacks']}, wasted time={stats['wasted_time']:g}"
    )


def main() -> None:
    run(grant=True)    # speculation pays: fast path kept, no waiting
    run(grant=False)   # speculation fails: automatic rollback, slow path
    print(
        "\nNote the denied run: the fast-path output was withdrawn by the\n"
        "rollback and never committed — only the slow path's output counts."
    )


if __name__ == "__main__":
    main()
