"""See optimism: ASCII timelines of speculation, waiting, and rollback.

Renders Gantt-style charts of the same program under (a) full HOPE
speculation with a correct assumption, (b) a failed assumption (watch the
rolled-back work appear), and (c) blocking (pessimistic) mode.

Run:  python examples/timeline_visualization.py
"""

from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, render_timeline, render_utilization


def worker(p):
    yield p.compute(2.0)                   # definite prelude
    x = yield p.aid_init("assumption")
    yield p.send("verifier", x)
    if (yield p.guess(x)):
        yield p.compute(8.0)               # optimistic work
    else:
        yield p.compute(12.0)              # pessimistic fallback
    yield p.compute(2.0)                   # definite epilogue


def verifier(p, decision):
    msg = yield p.recv()
    yield p.compute(6.0)                   # verification takes a while
    if decision:
        yield p.affirm(msg.payload)
    else:
        yield p.deny(msg.payload)


def show(title, decision, speculation=True):
    system = HopeSystem(latency=ConstantLatency(1.0), speculation=speculation)
    system.spawn("worker", worker)
    system.spawn("verifier", verifier, decision)
    horizon = system.run()
    print(f"\n=== {title} (finished at t={horizon:g}) ===")
    print(render_timeline(system.timeline, horizon=horizon, width=60))
    print(render_utilization(system.timeline, horizon=horizon))


def main() -> None:
    show("speculation, assumption holds", decision=True)
    show("speculation, assumption fails (x = rolled-back work)", decision=False)
    show("blocking mode: no speculation, just waiting", decision=True,
         speculation=False)


if __name__ == "__main__":
    main()
