"""Optimistic recovery under crash injection (Strom & Yemini, §2).

A sender streams items to a receiver while logging them asynchronously to
stable storage — optimistically assuming each log write completes before
a failure.  We crash the sender mid-stream (orphaning unlogged items) and
later the receiver (losing volatile state), and show the committed output
is exactly-once anyway.

Run:  python examples/optimistic_recovery.py
"""

from repro.apps.recovery import RecoveryConfig, reference_ledger, run_recovery


def show(title: str, **kwargs) -> None:
    config = RecoveryConfig(items=tuple(range(12)), log_write_latency=9.0)
    result = run_recovery(config, **kwargs)
    ok = result.ledger == reference_ledger(config)
    print(f"\n=== {title} ===")
    print(f"  crashes injected : {result.crashes}")
    print(f"  HOPE rollbacks   : {result.rollbacks}")
    print(f"  committed items  : {len(result.ledger)} / {len(config.items)}")
    print(f"  exactly-once     : {ok}")
    if not ok:  # pragma: no cover - would indicate a bug
        print("  ledger:", result.ledger)


def main() -> None:
    show("failure-free run")
    show("sender crashes at t=7 (orphans denied, suffix resent)",
         crash_sender_at=[7.0], restart_after=3.0)
    show("receiver crashes at t=15 (replay from checkpoint)",
         crash_receiver_at=[15.0], restart_after=3.0)
    show("both crash",
         crash_sender_at=[6.0], crash_receiver_at=[18.0], restart_after=3.0)


if __name__ == "__main__":
    main()
