"""Figure 2 written in mini-HOPE, the embedded language.

The paper presents HOPE as primitives to embed in a host language; this
demo embeds them twice — the mini-HOPE program below is a near-verbatim
transcription of Figure 2, interpreted onto the HOPE runtime.

Run:  python examples/lang_demo.py
"""

from repro.lang import compile_program
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency

SOURCE = """
// Figure 2, transcribed: Worker + WorryWart + a print server.
process Worker(total) {
    var PartPage = aid_init("PartPage");
    var Order = aid_init("Order");
    send("worrywart", tuple(PartPage, Order, total));
    if (guess(PartPage)) {
        skip;                               // S2 elided optimistically
    } else {
        call("server", tuple("newpage"));   // S2, after a denial
    }
    guess(Order);
    compute(1);
    call("server", tuple("print", "Summary ...", 1));   // S3
}

process WorryWart(pagesize) {
    var msg = recv();
    var req = payload(msg);
    var PartPage = nth(req, 0);
    var Order = nth(req, 1);
    var total = nth(req, 2);
    var line = call("server", tuple("print", "Total is", total));  // S1
    free_of(Order);
    if (line < pagesize) {
        affirm(PartPage);
    } else {
        deny(PartPage);
    }
}

process Server(pagesize) {
    var line = 0;
    while (true) {
        var msg = recv();
        var op = payload(msg);
        compute(0.5);
        if (nth(op, 0) == "print") {
            line = line + nth(op, 2);
            emit(tuple("print", nth(op, 1), line));
            reply(msg, line);
        } else {
            line = 0;
            emit(tuple("newpage"));
            reply(msg, 0);
        }
    }
}
"""


def run(total_lines: int, pagesize: int) -> None:
    compiled = compile_program(SOURCE)
    system = HopeSystem(latency=ConstantLatency(10.0))
    compiled.spawn(system, "server", "Server", pagesize)
    compiled.spawn(system, "worrywart", "WorryWart", pagesize)
    compiled.spawn(system, "worker", "Worker", total_lines)
    system.run(max_events=500_000)
    print(f"\n--- total={total_lines}, pagesize={pagesize} ---")
    for op in system.committed_outputs("server"):
        print(f"  server printed: {op}")
    print(f"  rollbacks: {system.stats()['rollbacks']}")


def main() -> None:
    print("Figure 2 in mini-HOPE:")
    run(total_lines=10, pagesize=60)     # page not full: PartPage affirmed
    run(total_lines=70, pagesize=60)     # page full: PartPage denied, S2 runs


if __name__ == "__main__":
    main()
