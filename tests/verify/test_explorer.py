"""Model-checking harness tests: scenarios, invariants, exploration."""

import pytest

from repro.verify import (
    chain_scenario,
    check_quiescent,
    explore,
    free_of_scenario,
    run_scenario,
    two_aid_scenario,
)


@pytest.mark.parametrize("decide", [True, False])
@pytest.mark.parametrize("depth", [1, 3])
def test_chain_scenario_conforms(depth, decide):
    scenario = chain_scenario(depth=depth, decide=decide, verify_delay=2.0)
    outcome = run_scenario(scenario, seed=1, latency=1.0)
    assert outcome.ok, outcome.violations
    if not decide:
        assert outcome.rollbacks >= 1


@pytest.mark.parametrize("dx,dy", [(0.5, 4.0), (4.0, 0.5)])
@pytest.mark.parametrize("decide_x", [True, False])
@pytest.mark.parametrize("decide_y", [True, False])
def test_two_aid_scenario_all_verdict_orders(decide_x, decide_y, dx, dy):
    scenario = two_aid_scenario(decide_x, decide_y, dx, dy)
    outcome = run_scenario(scenario, seed=2, latency=0.5)
    assert outcome.ok, outcome.violations


@pytest.mark.parametrize("violate", [True, False])
def test_free_of_scenario_conforms(violate):
    scenario = free_of_scenario(violate)
    outcome = run_scenario(scenario, seed=3, latency=1.0)
    assert outcome.ok, outcome.violations
    if violate:
        assert outcome.rollbacks >= 1


def test_determinism_same_seed_same_fingerprint():
    scenario = chain_scenario(depth=2, decide=False, verify_delay=1.5)
    outcome = run_scenario(scenario, seed=9, latency=2.0, check_determinism=True)
    assert outcome.ok, outcome.violations


def test_exploration_campaign_registry_mode():
    report = explore(n_runs=60, root_seed=5)
    assert report.ok, report.summary()
    # the campaign must actually exercise rollbacks, not just happy paths
    assert sum(run.rollbacks for run in report.runs) > 5


def test_exploration_campaign_aid_task_mode():
    report = explore(n_runs=40, root_seed=11, aid_mode="aid_task")
    assert report.ok, report.summary()


def test_oracle_catches_a_wrong_reference():
    """Sanity: the harness is able to fail (a deliberately wrong oracle)."""
    scenario = chain_scenario(depth=1, decide=True, verify_delay=1.0)
    broken = type(scenario)(
        name=scenario.name,
        build=scenario.build,
        reference={"root": ["root-pessimistic"]},   # wrong on purpose
    )
    outcome = run_scenario(broken, seed=1, latency=1.0)
    assert not outcome.ok
    assert any("oracle mismatch" in v for v in outcome.violations)


@pytest.mark.parametrize("decide", [True, False])
def test_diamond_scenario_conforms(decide):
    from repro.verify import diamond_scenario

    scenario = diamond_scenario(decide=decide, verify_delay=2.0)
    outcome = run_scenario(scenario, seed=4, latency=1.0)
    assert outcome.ok, outcome.violations
    if not decide:
        assert outcome.rollbacks >= 1


def test_diamond_second_tag_folds_into_existing_interval():
    """The sink's second tagged receive must not create a new interval."""
    from repro.runtime import HopeSystem
    from repro.verify import diamond_scenario

    scenario = diamond_scenario(decide=True, verify_delay=30.0)
    system = HopeSystem()
    scenario.build(system)
    system.run(until=20.0)                   # both arrivals, verdict pending
    record = system.machine.process("sink")
    assert len(record.intervals) == 1


def test_per_run_seeds_disjoint_across_root_seeds():
    """Campaign seeds come from the seeded stream, so different root
    seeds explore different (seed, scenario) pairs instead of partially
    replaying each other (the old ``root * 10_007 + index`` arithmetic
    collided across campaigns)."""
    campaigns = {root: explore(n_runs=20, root_seed=root) for root in (0, 1, 2)}
    seed_sets = {
        root: {run.seed for run in report.runs}
        for root, report in campaigns.items()
    }
    for a in seed_sets:
        for b in seed_sets:
            if a < b:
                assert not (seed_sets[a] & seed_sets[b]), (a, b)


def test_per_run_seeds_reproducible_for_equal_root_seed():
    first = explore(n_runs=15, root_seed=9)
    second = explore(n_runs=15, root_seed=9)
    assert [r.seed for r in first.runs] == [r.seed for r in second.runs]
    assert [r.fingerprint for r in first.runs] == [
        r.fingerprint for r in second.runs
    ]


def test_summary_marks_failures_beyond_the_first_ten():
    from repro.verify import ExplorationReport, RunOutcome

    report = ExplorationReport()
    for index in range(13):
        report.runs.append(
            RunOutcome(
                scenario=f"s{index}", seed=index, latency=1.0,
                violations=["boom"],
            )
        )
    summary = report.summary()
    assert summary.count("FAIL") == 10
    assert "(+3 more failures)" in summary


def test_summary_no_marker_at_ten_or_fewer_failures():
    from repro.verify import ExplorationReport, RunOutcome

    report = ExplorationReport()
    for index in range(10):
        report.runs.append(
            RunOutcome(
                scenario=f"s{index}", seed=index, latency=1.0,
                violations=["boom"],
            )
        )
    assert "more failures" not in report.summary()
