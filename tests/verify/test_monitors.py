"""Monitor overhead and correctness: the LedgerMonitor delta rechecks.

The monitor used to rebuild every process's full committed ledger on
*every* machine event — O(processes x history) per event, quadratic over
a run.  It now rechecks only the ledger a FinalizeEvent/RollbackEvent
names, from its previously verified committed prefix.  ``scans`` counts
output records examined; doubling the workload must roughly double it,
not quadruple it.
"""

from repro.runtime import HopeSystem
from repro.sim import ConstantLatency
from repro.verify import LedgerMonitor, attach_monitors, check_quiescent


def guess_pipeline(system: HopeSystem, cycles: int) -> None:
    """A worker emitting one speculative output per affirm cycle."""

    def worker(p):
        for i in range(cycles):
            x = yield p.aid_init(f"x{i}")
            yield p.send("judge", x)
            yield p.guess(x)
            yield p.emit(i)
            yield p.compute(1.0)

    def judge(p):
        for _ in range(cycles):
            msg = yield p.recv()
            yield p.compute(0.1)
            yield p.affirm(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)


def run_monitored(cycles: int) -> LedgerMonitor:
    system = HopeSystem(seed=7, latency=ConstantLatency(0.5))
    ledger, _safety = attach_monitors(system)
    guess_pipeline(system, cycles)
    system.run(max_events=500_000)
    check_quiescent(system)
    ledger.assert_monotone()
    assert system.committed_outputs("worker") == list(range(cycles))
    return ledger


def test_monitor_scans_scale_linearly_not_quadratically():
    small = run_monitored(40)
    large = run_monitored(80)
    assert small.scans > 0
    # Linear scaling doubles; the old full-sweep monitor quadrupled
    # (80 cycles: ~4x the events each rescanning ~2x the history).
    assert large.scans < 3 * small.scans, (small.scans, large.scans)


def test_monitor_work_bounded_by_history():
    cycles = 60
    ledger = run_monitored(cycles)
    # Generous absolute bound: a handful of record-examinations per
    # output, independent of (events x history).
    assert ledger.scans < 40 * cycles, ledger.scans


def test_monitor_tracks_rollback_withdrawals():
    system = HopeSystem(seed=3, latency=ConstantLatency(0.5))
    ledger, _safety = attach_monitors(system)

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.emit("speculative")
        else:
            yield p.emit("pessimistic")
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(0.25)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run(max_events=100_000)
    check_quiescent(system)
    ledger.assert_monotone()
    assert system.stats()["rollbacks"] >= 1
    assert system.committed_outputs("worker") == ["pessimistic"]
