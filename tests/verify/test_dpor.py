"""DPOR explorer tests: exhaustiveness, reduction soundness, reproducers.

The hand-computed bounds below follow from the scenario structure at
``latency=0.5``:

* ``two_aid(x=True,y=True,dx=0.75,dy=0.75)`` — both verdicts land in one
  tie batch at t=1.25 *after* the worker guessed both AIDs, and both
  resolutions finalize worker intervals (footprints intersect on
  ``worker``), so that tie is the only dependent pair: exactly **2**
  inequivalent interleavings.  The unreduced tree is every permutation of
  every tie batch: 3! starts x 2 deliveries x 2 resolutions = **24**.
"""

import json

import pytest

from repro.core import HopeError
from repro.runtime import HopeSystem
from repro.sim import FaultPlan, LinkFaults
from repro.sim.kernel import SimulationError, Simulator
from repro.verify import (
    DporExplorer,
    ReplayDivergence,
    ScheduleController,
    orphan_scenario,
    run_dpor_reproducer,
    scenario_from_spec,
    standard_scenarios,
    two_aid_scenario,
)

TWO_AID = dict(decide_x=True, decide_y=True, dx=0.75, dy=0.75)


def explorer(scenario, **kwargs):
    kwargs.setdefault("latency", 0.5)
    return DporExplorer(scenario, **kwargs)


# ---------------------------------------------------------------------------
# exhaustiveness and reduction
# ---------------------------------------------------------------------------
def test_two_aid_dpor_matches_hand_computed_bound():
    report = explorer(two_aid_scenario(**TWO_AID)).explore()
    assert report.complete
    assert report.schedules == 2  # the resolution tie is the only dependent pair
    assert not report.failures, report.failures


def test_two_aid_full_enumeration_count():
    report = explorer(two_aid_scenario(**TWO_AID), prune=False).explore()
    assert report.complete
    assert report.schedules == 24  # 3! * 2 * 2 tie permutations
    assert not report.failures, report.failures


@pytest.mark.parametrize("decide_x", [True, False])
@pytest.mark.parametrize("decide_y", [True, False])
def test_dpor_reaches_every_outcome_full_enumeration_reaches(decide_x, decide_y):
    scenario = two_aid_scenario(decide_x, decide_y, 0.75, 0.75)
    reduced = explorer(scenario).explore()
    full = explorer(scenario, prune=False).explore()
    assert reduced.complete and full.complete
    assert reduced.schedules <= full.schedules
    assert reduced.outcomes() == full.outcomes()
    assert not reduced.failures and not full.failures


def test_every_standard_scenario_verifies_exhaustively():
    for scenario in standard_scenarios():
        report = explorer(scenario).explore()
        assert report.complete, scenario.name
        assert not report.failures, (scenario.name, report.summary())
        assert len(report.outcomes()) == 1, scenario.name


def test_exploration_deterministic_across_repeats():
    for prune in (True, False):
        first = explorer(two_aid_scenario(**TWO_AID), prune=prune).explore()
        second = explorer(two_aid_scenario(**TWO_AID), prune=prune).explore()
        assert [r.choices for r in first.runs] == [r.choices for r in second.runs]
        assert [r.fingerprint for r in first.runs] == [
            r.fingerprint for r in second.runs
        ]


def test_budget_exhaustion_reported_incomplete():
    report = explorer(two_aid_scenario(**TWO_AID), prune=False, max_schedules=5).explore()
    assert report.schedules == 5
    assert not report.complete
    assert not report.ok  # incomplete enumeration proves nothing


# ---------------------------------------------------------------------------
# replay determinism
# ---------------------------------------------------------------------------
def test_replaying_choices_reproduces_byte_identical_fingerprints():
    ex = explorer(two_aid_scenario(**TWO_AID), prune=False)
    report = ex.explore()
    for run in report.runs:
        _controller, replay = ex.execute(run.choices)
        assert replay.fingerprint == run.fingerprint
        assert replay.choices == run.choices


@pytest.mark.parametrize("kernel", ["wheel", "heap", "window"])
def test_kernels_explore_identical_trees(kernel):
    baseline = explorer(two_aid_scenario(**TWO_AID), prune=False).explore()
    report = explorer(
        two_aid_scenario(**TWO_AID), prune=False, kernel=kernel
    ).explore()
    assert [r.choices for r in report.runs] == [r.choices for r in baseline.runs]
    assert [r.fingerprint for r in report.runs] == [
        r.fingerprint for r in baseline.runs
    ]


def test_out_of_range_prescription_is_replay_divergence():
    ex = explorer(two_aid_scenario(**TWO_AID))
    with pytest.raises(ReplayDivergence):
        ex.execute([99])


# ---------------------------------------------------------------------------
# the controller seam
# ---------------------------------------------------------------------------
def test_controller_and_shuffle_ties_mutually_exclusive():
    with pytest.raises(HopeError):
        HopeSystem(shuffle_ties=True, controller=ScheduleController())


def test_controller_and_tie_breaker_mutually_exclusive():
    with pytest.raises(SimulationError):
        Simulator(tie_breaker=lambda events: events, controller=ScheduleController())


def test_controller_bad_index_rejected():
    class Bad(ScheduleController):
        def choose(self, time, events):
            return len(events)  # one past the end

    system = HopeSystem(controller=Bad())

    def proc(p):
        yield p.emit("hi")

    system.spawn("a", proc)
    with pytest.raises(SimulationError, match="out of a batch"):
        system.run()


# ---------------------------------------------------------------------------
# injected bug: find -> shrink -> reproduce
# ---------------------------------------------------------------------------
def test_injected_bug_found_shrunk_and_reproduced(tmp_path):
    ex = explorer(
        two_aid_scenario(**TWO_AID), inject_bug=True, repro_dir=str(tmp_path)
    )
    report = ex.explore()
    assert report.complete
    assert len(report.failures) == 1  # only the y-first interleaving trips it
    assert report.reproducer is not None

    payload = json.loads((tmp_path / report.reproducer.split("/")[-1]).read_text())
    assert payload["kind"] == "dpor"
    assert payload["failure"] == report.failures[0].violations
    # shrinking kept a verified-failing prefix no longer than the original
    assert len(payload["choices"]) <= len(payload["original_choices"])
    assert report.shrink_runs > 0

    replay = run_dpor_reproducer(report.reproducer)
    assert replay.violations == report.failures[0].violations
    # the reproducer's scenario spec round-trips
    rebuilt = scenario_from_spec(payload["scenario"])
    assert rebuilt.name == payload["scenario_name"]


def test_without_injected_bug_no_reproducer_written(tmp_path):
    report = explorer(
        two_aid_scenario(**TWO_AID), repro_dir=str(tmp_path)
    ).explore()
    assert report.reproducer is None
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# quiescence: the orphan branch, both ways
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("resolve", [True, False])
def test_orphan_scenario_lenient_quiescence_passes(resolve):
    report = explorer(orphan_scenario(resolve)).explore()
    assert report.complete and not report.failures


def test_orphan_strict_quiescence_rejects_unresolved_aid():
    report = explorer(
        orphan_scenario(False), allow_pending_orphans=False
    ).explore()
    assert report.complete
    assert report.failures
    assert all(
        any("pending orphan" in v for v in run.violations)
        for run in report.failures
    )


def test_orphan_strict_quiescence_accepts_resolved_aid():
    report = explorer(
        orphan_scenario(True), allow_pending_orphans=False
    ).explore()
    assert report.complete and not report.failures


# ---------------------------------------------------------------------------
# fault fates as choice points
# ---------------------------------------------------------------------------
def test_drop_fates_explored_under_reliable_delivery():
    from repro.verify import chain_scenario

    plan = FaultPlan(default=LinkFaults(drop=0.5))
    report = explorer(
        chain_scenario(1, True, 0.75), fault_plan=plan, reliable=True
    ).explore()
    assert report.complete
    assert not report.failures, report.summary()
    # at least one explored execution actually dropped a message
    assert report.schedules > explorer(chain_scenario(1, True, 0.75)).explore().schedules
    assert len(report.outcomes()) == 1  # losses are masked by resend


def test_reorder_fates_explored_without_reliability():
    from repro.verify import chain_scenario

    plan = FaultPlan(default=LinkFaults(reorder=0.5, reorder_window=1.0))
    report = explorer(chain_scenario(1, True, 0.75), fault_plan=plan).explore()
    assert report.complete
    assert not report.failures, report.summary()
    assert report.schedules >= 2  # each delivery branches on-time/late


def test_drop_fates_without_reliability_rejected():
    plan = FaultPlan(default=LinkFaults(drop=0.5))
    with pytest.raises(ValueError, match="reliable"):
        explorer(two_aid_scenario(**TWO_AID), fault_plan=plan)


def test_duplicate_fates_rejected():
    from repro.verify import DirectedFaultyNetwork, chain_scenario

    plan = FaultPlan(default=LinkFaults(duplicate=0.5))
    report_explorer = explorer(chain_scenario(1, True, 0.75), fault_plan=plan)
    with pytest.raises(SimulationError, match="duplicate"):
        report_explorer.execute()
