"""Interleaving-level exploration: permuted same-time event orderings."""

import pytest

from repro.runtime import HopeSystem
from repro.sim import Simulator, RandomStreams
from repro.verify import chain_scenario, explore, free_of_scenario, run_scenario


def test_tie_breaker_permutes_same_time_events():
    stream = RandomStreams(3)["ties"]
    sim = Simulator(tie_breaker=lambda: stream.randint(0, 1 << 30))
    order = []
    for tag in range(6):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert sorted(order) == list(range(6))
    assert order != list(range(6))          # seed 3 happens to permute


def test_tie_breaker_is_seeded_deterministic():
    def run(seed):
        stream = RandomStreams(seed)["ties"]
        sim = Simulator(tie_breaker=lambda: stream.randint(0, 1 << 30))
        order = []
        for tag in range(8):
            sim.schedule(2.0, order.append, tag)
        sim.run()
        return order

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_shuffled_system_equal_seed_reproduces():
    def run():
        system = HopeSystem(seed=11, shuffle_ties=True)
        out = []

        def a(p):
            yield p.compute(1.0)
            yield p.emit("a")
            out.append(("a", (yield p.now())))

        def b(p):
            yield p.compute(1.0)
            yield p.emit("b")
            out.append(("b", (yield p.now())))

        system.spawn("a", a)
        system.spawn("b", b)
        system.run()
        return out

    assert run() == run()


@pytest.mark.parametrize("seed", range(6))
def test_scenarios_conform_under_shuffled_schedules(seed):
    for scenario in (
        chain_scenario(depth=2, decide=False, verify_delay=1.0),
        free_of_scenario(violate=True),
        free_of_scenario(violate=False),
    ):
        outcome = run_scenario(
            scenario, seed=seed, latency=1.0, shuffle_ties=True
        )
        assert outcome.ok, (scenario.name, outcome.violations)


def test_shuffled_campaign_finds_no_violations():
    report = explore(n_runs=40, root_seed=101, shuffle_ties=True)
    assert report.ok, report.summary()
    assert sum(run.rollbacks for run in report.runs) > 0
