"""Hypothesis over the full runtime: random decisions, delays, latencies.

The strongest end-to-end property in the suite: for randomized verdicts,
verdict timings, network latencies, and control planes, the committed
outputs must equal the decision-derived reference and every invariant
must hold.  This complements the seeded explorer with adversarial,
shrinkable inputs.
"""

from hypothesis import given, settings, strategies as st

from repro.verify import chain_scenario, run_scenario, two_aid_scenario

_delay = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
_latency = st.floats(min_value=0.0, max_value=6.0, allow_nan=False)
_mode = st.sampled_from(["registry", "aid_task"])


@settings(max_examples=80, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=5),
    decide=st.booleans(),
    verify_delay=_delay,
    latency=_latency,
    mode=_mode,
)
def test_chain_conforms_for_all_parameters(depth, decide, verify_delay, latency, mode):
    scenario = chain_scenario(depth=depth, decide=decide, verify_delay=verify_delay)
    outcome = run_scenario(scenario, seed=0, latency=latency, aid_mode=mode)
    assert outcome.ok, outcome.violations


@settings(max_examples=80, deadline=None)
@given(
    decide_x=st.booleans(),
    decide_y=st.booleans(),
    dx=_delay,
    dy=_delay,
    latency=_latency,
    mode=_mode,
)
def test_two_aids_conform_for_all_verdict_timings(
    decide_x, decide_y, dx, dy, latency, mode
):
    scenario = two_aid_scenario(decide_x, decide_y, dx, dy)
    outcome = run_scenario(scenario, seed=0, latency=latency, aid_mode=mode)
    assert outcome.ok, outcome.violations
