"""Optimistic recovery: exactly-once output under crash schedules."""

import pytest

from repro.apps.recovery import (
    RecoveryConfig,
    reference_ledger,
    run_recovery,
)


def test_failure_free_run_commits_everything_in_order():
    config = RecoveryConfig(items=tuple(range(8)))
    result = run_recovery(config)
    assert result.ledger == reference_ledger(config)
    assert result.crashes == 0


def test_logging_aids_all_resolve_without_failures():
    config = RecoveryConfig(items=tuple(range(5)))
    from repro.apps.recovery import disk, receiver, sender
    from repro.runtime import HopeSystem
    from repro.sim import ConstantLatency

    system = HopeSystem(latency=ConstantLatency(config.latency))
    system.spawn("disk", disk, config.log_write_latency)
    system.spawn("sender", sender, config)
    system.spawn("receiver", receiver, config)
    system.run(max_events=1_000_000)
    assert system.pending_aids() == []
    assert all(a.affirmed for a in system.machine.aids.values())


def test_sender_crash_mid_stream_exactly_once():
    """Crash the sender while log writes are outstanding: orphans must be
    denied, the receiver rolled back, and the resent suffix committed."""
    config = RecoveryConfig(items=tuple(range(12)), log_write_latency=10.0)
    result = run_recovery(config, crash_sender_at=[7.0], restart_after=3.0)
    assert result.crashes == 1
    assert result.ledger == reference_ledger(config)


def test_sender_crash_forces_rollback_of_receiver():
    config = RecoveryConfig(items=tuple(range(12)), log_write_latency=25.0)
    result = run_recovery(config, crash_sender_at=[9.0], restart_after=3.0)
    assert result.ledger == reference_ledger(config)
    # long write latency ⇒ several optimistically processed items orphaned
    assert result.rollbacks >= 1


def test_receiver_crash_replays_from_checkpoint():
    config = RecoveryConfig(items=tuple(range(12)), checkpoint_every=4)
    result = run_recovery(config, crash_receiver_at=[15.0], restart_after=3.0)
    assert result.crashes == 1
    assert result.ledger == reference_ledger(config)


def test_double_sender_crash():
    config = RecoveryConfig(items=tuple(range(15)), log_write_latency=6.0)
    result = run_recovery(
        config, crash_sender_at=[5.0, 20.0], restart_after=2.0
    )
    assert result.crashes == 2
    assert result.ledger == reference_ledger(config)


def test_sender_and_receiver_crash():
    config = RecoveryConfig(
        items=tuple(range(14)), log_write_latency=7.0, checkpoint_every=3
    )
    result = run_recovery(
        config,
        crash_sender_at=[6.0],
        crash_receiver_at=[18.0],
        restart_after=3.0,
    )
    assert result.crashes == 2
    assert result.ledger == reference_ledger(config)


@pytest.mark.parametrize("crash_time", [3.0, 8.0, 13.0, 21.0, 34.0])
def test_crash_schedule_sweep_sender(crash_time):
    """Exactly-once must hold wherever the crash lands in the stream."""
    config = RecoveryConfig(items=tuple(range(10)), log_write_latency=9.0)
    result = run_recovery(config, crash_sender_at=[crash_time], restart_after=2.5)
    assert result.ledger == reference_ledger(config)


@pytest.mark.parametrize("crash_time", [6.0, 14.0, 25.0])
def test_crash_schedule_sweep_receiver(crash_time):
    config = RecoveryConfig(items=tuple(range(10)), checkpoint_every=2)
    result = run_recovery(config, crash_receiver_at=[crash_time], restart_after=2.5)
    assert result.ledger == reference_ledger(config)
