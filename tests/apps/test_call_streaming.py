"""Integration tests for the Figure 1/2 Call Streaming application.

The load-bearing assertion throughout: the server's *committed* ledger
under the optimistic (Figure 2) program equals the pessimistic
(Figure 1) ledger equals the independently computed serial reference —
for every combination of (page full?, message race?).
"""

import pytest

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    run_optimistic,
    run_pessimistic,
)


def both(config, seed=0):
    pess = run_pessimistic(config, seed)
    opt = run_optimistic(config, seed)
    return pess, opt


# ---------------------------------------------------------------- single report
def test_happy_path_page_not_full_no_race():
    config = CallStreamConfig(report_lines=(10,), page_size=60)
    pess, opt = both(config)
    reference = expected_output(config)
    assert pess.server_output == reference
    assert opt.server_output == reference
    assert opt.rollbacks == 0
    assert reference == [("print", "total-0", 10), ("print", "summary-0", 11)]


def test_happy_path_is_faster_than_pessimistic():
    config = CallStreamConfig(report_lines=(10,), page_size=60, latency=50.0)
    pess, opt = both(config)
    assert opt.makespan < pess.makespan
    # Figure 1 pays two sequential round trips; Figure 2 overlaps them.
    assert opt.makespan < 0.75 * pess.makespan


def test_page_full_triggers_rollback_and_newpage():
    config = CallStreamConfig(report_lines=(70,), page_size=60)
    pess, opt = both(config)
    reference = expected_output(config)
    assert ("newpage",) in reference
    assert pess.server_output == reference
    assert opt.server_output == reference
    assert opt.rollbacks >= 1


def test_order_race_detected_and_repaired():
    """summary_prep < wart_latency forces S3 to beat S1: free_of(Order)
    must deny, roll everything back, and the repaired run must commit the
    serial ledger."""
    config = CallStreamConfig(
        report_lines=(10,), page_size=60, summary_prep=0.0, wart_latency=3.0
    )
    pess, opt = both(config)
    reference = expected_output(config)
    assert pess.server_output == reference
    assert opt.server_output == reference
    assert opt.rollbacks >= 1


def test_order_race_plus_page_full():
    config = CallStreamConfig(
        report_lines=(70,), page_size=60, summary_prep=0.0, wart_latency=3.0
    )
    pess, opt = both(config)
    reference = expected_output(config)
    assert pess.server_output == reference
    assert opt.server_output == reference
    assert opt.rollbacks >= 2          # Order denial and PartPage denial


# ---------------------------------------------------------------- multi report
def test_stream_of_reports_equivalent():
    config = CallStreamConfig(
        report_lines=(10, 20, 15, 40, 5, 30), page_size=60, latency=20.0
    )
    pess, opt = both(config)
    reference = expected_output(config)
    assert pess.server_output == reference
    assert opt.server_output == reference


def test_stream_with_page_breaks_equivalent():
    config = CallStreamConfig(
        report_lines=(30, 40, 50, 45, 35, 20, 55), page_size=60, latency=15.0
    )
    pess, opt = both(config)
    reference = expected_output(config)
    assert ("newpage",) in reference
    assert pess.server_output == reference
    assert opt.server_output == reference
    assert opt.rollbacks >= 1


def test_streaming_beats_pessimistic_on_long_runs():
    """A single wart backlogs (S1s fall behind the streamed S3s), Order
    assumptions fail repeatedly — yet correctness holds and the optimistic
    run still wins on wall clock."""
    config = CallStreamConfig(
        report_lines=tuple([10] * 20), page_size=10_000, latency=25.0
    )
    pess, opt = both(config)
    assert opt.server_output == pess.server_output
    assert opt.makespan < pess.makespan
    assert opt.rollbacks > 0               # the backlog regime


def test_streaming_with_enough_warts_gives_large_speedup():
    """With verification pipelined across warts, no assumption fails and
    the worker never waits on the server — the paper's headline regime."""
    config = CallStreamConfig(
        report_lines=tuple([10] * 20), page_size=10_000, latency=25.0, n_warts=20
    )
    pess, opt = both(config)
    assert opt.server_output == pess.server_output
    speedup = (pess.makespan - opt.makespan) / pess.makespan
    assert opt.rollbacks == 0
    assert speedup > 0.5


def test_multiple_warts_pipeline_verification():
    slow = CallStreamConfig(
        report_lines=tuple([10] * 16), page_size=10_000, latency=25.0, n_warts=1
    )
    fast = CallStreamConfig(
        report_lines=tuple([10] * 16), page_size=10_000, latency=25.0, n_warts=4
    )
    opt_slow = run_optimistic(slow)
    opt_fast = run_optimistic(fast)
    assert opt_fast.server_output == opt_slow.server_output
    assert opt_fast.makespan <= opt_slow.makespan


def test_mixed_races_and_page_breaks_converge():
    """The stress case: some reports race, some fill the page."""
    preps = (0.0, 2.0, 0.0, 2.0, 2.0)
    config = CallStreamConfig(
        report_lines=(30, 40, 50, 10, 35),
        page_size=60,
        summary_prep_per_report=preps,
        wart_latency=3.0,
        latency=8.0,
    )
    pess, opt = both(config)
    reference = expected_output(config)
    assert pess.server_output == reference
    assert opt.server_output == reference


def test_no_pending_aids_at_quiescence():
    """Every PartPage/Order assumption must be resolved by run end (modulo
    AIDs orphaned by deep rollbacks, which have empty DOM)."""
    config = CallStreamConfig(report_lines=(10, 70, 20), page_size=60)
    from repro.apps.call_streaming import run_optimistic as run

    import repro.apps.call_streaming as cs

    system = cs._build_system(config, 0, None)
    system.spawn("server", cs.print_server, config.page_size, config.server_service_time)
    system.spawn("server_oneway", cs.oneway_gateway)
    system.spawn("worrywart-0", cs.worrywart, config, config.n_reports)
    system.spawn("worker", cs.optimistic_worker, config)
    system.run()
    for aid in system.pending_aids():
        assert not aid.dom, f"pending AID {aid.key} still has dependents"


def test_wasted_time_only_when_assumptions_fail():
    good = CallStreamConfig(report_lines=(10,), page_size=60)
    bad = CallStreamConfig(report_lines=(70,), page_size=60)
    assert run_optimistic(good).wasted_time == 0.0
    assert run_optimistic(bad).wasted_time > 0.0
