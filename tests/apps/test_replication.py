"""Optimistic replication tests: serializability and latency advantage."""

import pytest

from repro.apps.replication import (
    ReplicationWorkload,
    run_optimistic_replication,
    run_pessimistic_replication,
)
from repro.sim import ConstantLatency


def total_value(result):
    return sum(value for _version, value in result.cells.values())


def test_single_client_no_contention():
    workload = ReplicationWorkload(n_clients=1, ops_per_client=6, keys=("k",))
    result = run_optimistic_replication(workload)
    assert result.cells["k"] == (6, 6)
    assert result.denials == 0
    assert result.applied == 6


def test_contending_clients_converge_to_total():
    workload = ReplicationWorkload(n_clients=3, ops_per_client=4, keys=("k",))
    result = run_optimistic_replication(workload)
    version, value = result.cells["k"]
    assert value == workload.total_ops        # every op applied exactly once
    assert version == workload.total_ops
    assert result.denials > 0                 # contention really happened


def test_disjoint_keys_no_denials():
    workload = ReplicationWorkload(
        n_clients=3, ops_per_client=4, keys=("a", "b", "c")
    )
    # key_for(client, op) = keys[(client+op) % 3]: with compute spacing the
    # clients rotate in lockstep and never collide on a version.
    result = run_optimistic_replication(workload)
    assert total_value(result) == workload.total_ops


def test_pessimistic_converges_too():
    workload = ReplicationWorkload(n_clients=3, ops_per_client=4, keys=("k",))
    result = run_pessimistic_replication(workload)
    version, value = result.cells["k"]
    assert value == workload.total_ops


def test_optimistic_beats_pessimistic_without_contention():
    workload = ReplicationWorkload(n_clients=1, ops_per_client=10, keys=("k",))
    latency = ConstantLatency(20.0)
    opt = run_optimistic_replication(workload, latency=latency)
    pess = run_pessimistic_replication(workload, latency=latency)
    assert opt.cells == pess.cells
    # pessimistic pays read+update round trips; optimistic streams updates
    assert opt.makespan < 0.5 * pess.makespan


def test_high_contention_still_correct_with_many_rollbacks():
    workload = ReplicationWorkload(n_clients=4, ops_per_client=5, keys=("hot",))
    result = run_optimistic_replication(workload, latency=ConstantLatency(3.0))
    version, value = result.cells["hot"]
    assert value == workload.total_ops
    assert result.rollbacks > 0


def test_primary_ledger_versions_strictly_increase():
    workload = ReplicationWorkload(n_clients=2, ops_per_client=5, keys=("k",))
    from repro.apps.replication import primary, optimistic_client
    from repro.runtime import HopeSystem

    system = HopeSystem(latency=ConstantLatency(5.0))
    system.spawn("primary", primary)
    for c in range(workload.n_clients):
        system.spawn(f"client-{c}", optimistic_client, workload, c)
    system.run(max_events=2_000_000)
    versions = [
        entry[2] for entry in system.committed_outputs("primary")
        if entry[0] == "applied"
    ]
    assert versions == list(range(1, len(versions) + 1))
