"""The Jacobi app across execution modes: same fixed point everywhere."""

import pytest

from repro.apps.numerics import make_problem, solver, validator
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency


def run_mode(problem, **kwargs):
    system = HopeSystem(latency=ConstantLatency(5.0), **kwargs)
    system.spawn("validator", validator, problem)
    system.spawn("solver", solver, problem)
    makespan = system.run(max_events=5_000_000)
    return system, makespan


def test_blocking_mode_same_solution_slower():
    problem = make_problem(n=6, seed=1, dominance=3.0)
    spec_system, spec_time = run_mode(problem)
    block_system, block_time = run_mode(problem, speculation=False)
    spec = spec_system.result_of("solver")
    block = block_system.result_of("solver")
    assert spec["x"] == block["x"]            # identical fixed point
    assert spec["blocks"] == block["blocks"]
    assert block_system.stats()["rollbacks"] == 0
    assert spec_time < block_time             # optimism hides validation


def test_aid_task_mode_same_solution():
    problem = make_problem(n=5, seed=4, dominance=2.0)
    registry, _ = run_mode(problem)
    distributed, _ = run_mode(problem, aid_mode="aid_task", control_latency=1.0)
    assert registry.result_of("solver")["x"] == distributed.result_of("solver")["x"]
    assert distributed.stats()["control_messages"] > 0
