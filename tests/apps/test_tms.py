"""Assumption-based search tests: HOPE backtracking equals reference DFS."""

import pytest

from repro.apps.tms import (
    SearchProblem,
    clause_status,
    is_model,
    reference_solution,
    run_search,
)


def lit(var, polarity=True):
    return (var, polarity)


def test_clause_status():
    clause = (lit("a"), lit("b", False))
    assert clause_status(clause, {}) == "open"
    assert clause_status(clause, {"a": True}) == "sat"
    assert clause_status(clause, {"a": False}) == "open"
    assert clause_status(clause, {"a": False, "b": True}) == "violated"


def test_unknown_variable_rejected():
    problem = SearchProblem(variables=("a",), clauses=(((("b", True)),),))
    with pytest.raises(ValueError):
        run_search(problem)


def test_trivially_sat_no_backtracking():
    problem = SearchProblem(
        variables=("a", "b"),
        clauses=((lit("a"),), (lit("b"),)),
    )
    result = run_search(problem)
    assert result.model == {"a": True, "b": True}
    assert result.backtracks == 0


def test_single_flip():
    """(¬a) forces the first decision to be retracted."""
    problem = SearchProblem(variables=("a",), clauses=(((lit("a", False)),),))
    result = run_search(problem)
    assert result.model == {"a": False}
    assert result.backtracks >= 1


def test_matches_reference_dfs_order():
    problem = SearchProblem(
        variables=("a", "b", "c"),
        clauses=(
            (lit("a", False), lit("b", False)),
            (lit("b"), lit("c")),
            (lit("a", False), lit("c", False)),
        ),
    )
    expected = reference_solution(problem)
    result = run_search(problem)
    assert result.model == expected
    assert is_model(problem.clauses, result.model)


def test_deep_backtracking_chain():
    """Forces conflicts that unwind several decisions at once."""
    problem = SearchProblem(
        variables=("a", "b", "c", "d"),
        clauses=(
            (lit("a", False), lit("b", False), lit("c", False), lit("d", False)),
            (lit("a", False), lit("b", False), lit("c", False), lit("d")),
        ),
    )
    expected = reference_solution(problem)
    result = run_search(problem)
    assert result.model == expected
    assert result.backtracks >= 1


def test_unsat_detected():
    problem = SearchProblem(
        variables=("a",),
        clauses=((lit("a"),), (lit("a", False),)),
    )
    assert reference_solution(problem) is None
    result = run_search(problem)
    assert result.model is None
    assert result.backtracks >= 1


def test_unsat_three_vars():
    # classic: all eight combinations excluded pairwise via implications
    problem = SearchProblem(
        variables=("a", "b"),
        clauses=(
            (lit("a"), lit("b")),
            (lit("a"), lit("b", False)),
            (lit("a", False), lit("b")),
            (lit("a", False), lit("b", False)),
        ),
    )
    assert reference_solution(problem) is None
    result = run_search(problem)
    assert result.model is None


@pytest.mark.parametrize("n_vars", [4, 6])
def test_random_formulas_match_reference(n_vars):
    import random

    rng = random.Random(17 + n_vars)
    variables = tuple(f"v{i}" for i in range(n_vars))
    for trial in range(6):
        clauses = []
        for _ in range(n_vars * 2):
            width = rng.randint(1, 3)
            chosen = rng.sample(variables, width)
            clauses.append(tuple((v, rng.random() < 0.5) for v in chosen))
        problem = SearchProblem(variables=variables, clauses=tuple(clauses))
        expected = reference_solution(problem)
        result = run_search(problem)
        assert result.model == expected, f"trial {trial} diverged"
        if expected is not None:
            assert is_model(problem.clauses, result.model)
