"""Tests for the HOPE-expressed timestamp-order workload (§2 subsumption)."""

import pytest

from repro.apps.virtual_time import (
    DONE_TAG,
    Job,
    VtWorkload,
    fold,
    run_hope_order,
)
from repro.sim import ConstantLatency, SequenceLatency, UniformLatency, RandomStreams


def make_workload(streams):
    return VtWorkload(streams=tuple(tuple(s) for s in streams))


def test_reference_state_is_order_sensitive():
    a = make_workload([[Job(1.0, 5), Job(2.0, 7)]])
    b = make_workload([[Job(1.0, 7), Job(2.0, 5)]])
    assert a.reference_state() != b.reference_state()


def test_single_sender_in_order_no_rollbacks():
    workload = make_workload([[Job(float(i), i * 3) for i in range(1, 8)]])
    result = run_hope_order(workload, latency=ConstantLatency(2.0))
    assert result.final_state == workload.reference_state()
    assert result.ledger == workload.reference_ledger()
    assert result.rollbacks == 0


def test_two_senders_interleaved_in_arrival_order():
    """Constant latency: arrival order equals vt order across senders here."""
    workload = VtWorkload(
        streams=(
            tuple(Job(1.0 + 2 * i, i) for i in range(5)),
            tuple(Job(2.0 + 2 * i, 100 + i) for i in range(5)),
        ),
        send_spacing=2.0,
    )
    result = run_hope_order(workload, latency=ConstantLatency(1.0))
    assert result.final_state == workload.reference_state()
    assert result.rollbacks == 0


def test_straggler_triggers_rollback_and_correct_state():
    """A slow first packet arrives after later-vt packets: HOPE must deny
    the violated guard, roll back, and converge to the oracle fold."""
    workload = VtWorkload(
        streams=(
            (Job(1.0, 11),),                 # physically slow (latency 50)
            (Job(2.0, 22), Job(3.0, 33)),    # physically fast (latency 1)
        ),
        send_spacing=0.5,
    )
    latency = SequenceLatency([50.0, 1.0, 1.0, 1.0, 50.0, 1.0])
    result = run_hope_order(workload, latency=latency)
    assert result.final_state == workload.reference_state()
    assert result.ledger == workload.reference_ledger()
    assert result.rollbacks >= 1


def test_random_jitter_many_senders_converges():
    streams = []
    for s in range(4):
        jobs = [Job(0.7 + s * 0.1 + 3.0 * i, s * 1000 + i) for i in range(10)]
        streams.append(tuple(jobs))
    workload = VtWorkload(streams=tuple(streams), send_spacing=1.5)
    latency = UniformLatency(0.5, 12.0, RandomStreams(9)["net"])
    result = run_hope_order(workload, latency=latency, seed=9)
    assert result.final_state == workload.reference_state()
    assert result.ledger == workload.reference_ledger()


def test_all_guard_aids_resolved_at_quiescence():
    workload = make_workload([[Job(float(i), i) for i in range(1, 6)]])
    from repro.runtime import HopeSystem
    from repro.apps.virtual_time import vt_receiver, vt_sender

    system = HopeSystem(latency=ConstantLatency(1.0))
    system.spawn("receiver", vt_receiver, 1)
    system.spawn("sender-0", vt_sender, "receiver", workload.streams[0], 1.0)
    system.run()
    # Every surviving guard must end AFFIRMED: the receiver's self-affirms
    # become definite when its intervals finalize (Lemma 6.1).
    affirmed = [a for a in system.machine.aids.values() if a.affirmed]
    assert len(affirmed) == 5
    assert system.pending_aids() == []


def test_deny_of_violated_guard_is_definite():
    """The receiver denies a guard it depends on — Eq 15's X ∈ A.IDO case."""
    workload = VtWorkload(
        streams=((Job(1.0, 1),), (Job(2.0, 2),)),
        send_spacing=0.5,
    )
    latency = SequenceLatency([50.0, 1.0, 50.0, 1.0])
    result = run_hope_order(workload, latency=latency)
    assert result.final_state == workload.reference_state()
    assert result.rollbacks >= 1
