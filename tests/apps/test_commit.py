"""Optimistic two-phase commit tests."""

import pytest

from repro.apps.commit import (
    CommitWorkload,
    reference_balances,
    run_optimistic_commit,
)
from repro.sim import ConstantLatency


def workload(*vote_plans, **kwargs):
    return CommitWorkload(transactions=tuple(vote_plans), **kwargs)


def test_unanimous_yes_commits():
    result = run_optimistic_commit(workload({0: True, 1: True, 2: True}))
    assert result.decisions == [True]
    assert result.balance == 100
    assert result.ledger == [("balance-after", 0, 100)]
    assert result.rollbacks == 0


def test_single_no_aborts_and_unwinds_client():
    result = run_optimistic_commit(workload({0: True, 1: False, 2: True}))
    assert result.decisions == [False]
    assert result.balance == 0
    assert result.ledger == [("balance-after", 0, 0)]
    assert result.rollbacks >= 1


def test_transaction_sequence_mixed_outcomes():
    plans = (
        {0: True, 1: True, 2: True},
        {0: False},
        {0: True, 1: True, 2: True},
        {2: False},
        {0: True, 1: True, 2: True},
    )
    result = run_optimistic_commit(workload(*plans))
    assert result.decisions == [True, False, True, False, True]
    assert result.balance == 300
    assert result.ledger == reference_balances(workload(*plans))


def test_speculative_composition_across_transactions():
    """Txn 1 is built on txn 0's speculative result; aborting txn 0 must
    transparently rewind txn 1's world too, then both redo correctly."""
    plans = ({0: False}, {0: True, 1: True, 2: True})
    result = run_optimistic_commit(workload(*plans))
    assert result.decisions == [False, True]
    assert result.balance == 100
    assert result.ledger == reference_balances(workload(*plans))


def test_client_never_blocks_on_commit_latency():
    """The optimistic client's makespan is bounded by its own work plus
    the *last* transaction's confirmation, not two round trips per txn."""
    plans = tuple({0: True, 1: True, 2: True} for _ in range(6))
    w = workload(*plans, vote_delay=4.0, client_compute=1.0)
    result = run_optimistic_commit(w, latency=ConstantLatency(10.0))
    assert result.decisions == [True] * 6
    # Pessimistic 2PC: the client alone waits begin+decision (>= 34/txn,
    # >= 204 total) before building anything.  Optimistically the client's
    # six work units all overlap the vote pipeline; the makespan is the
    # coordinator's serial vote-collection (~24/txn), not the client.
    assert result.makespan < 170.0
    assert result.stats["wasted_time"] == 0.0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_vote_plans_match_reference(seed):
    import random

    rng = random.Random(seed)
    plans = tuple(
        {i: rng.random() < 0.7 for i in range(3)} for _ in range(5)
    )
    w = workload(*plans)
    result = run_optimistic_commit(w, seed=seed)
    assert result.decisions == w.expected_outcomes()
    assert result.ledger == reference_balances(w)
