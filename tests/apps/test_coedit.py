"""Co-operative editing: replica convergence under optimistic typing."""

import pytest

from repro.apps.coedit import CoEditWorkload, EditScript, run_coedit


def script(*edits):
    return EditScript(edits=tuple(edits))


def test_single_editor_types_in_order():
    workload = CoEditWorkload(
        scripts=(script((1.0, "a"), (1.0, "b"), (1.0, "c")),)
    )
    result = run_coedit(workload)
    assert result.documents[0] == ("a", "b", "c")
    assert result.converged
    assert result.rollbacks == 0


def test_two_editors_interleaved_without_conflict():
    """Editors alternate with enough think time that predictions hold."""
    workload = CoEditWorkload(
        scripts=(
            script((1.0, "a1"), (30.0, "a2")),
            script((14.0, "b1"), (30.0, "b2")),
        ),
        latency=2.0,
    )
    result = run_coedit(workload)
    assert result.converged
    assert result.rollbacks == 0
    assert result.documents[0] == ("a1", "b1", "a2", "b2")


def test_concurrent_edits_race_denial_then_convergence():
    """Both editors type at once: one prediction must fail, and all
    replicas must still converge on the sequencer's order."""
    workload = CoEditWorkload(
        scripts=(
            script((1.0, "left")),
            script((1.0, "right")),
        ),
        latency=3.0,
    )
    result = run_coedit(workload)
    assert result.converged
    assert result.denials >= 1
    assert result.rollbacks >= 1
    assert sorted(result.documents[0]) == ["left", "right"]


def test_burst_typing_from_both_editors_converges():
    workload = CoEditWorkload(
        scripts=(
            script((1.0, "a1"), (0.5, "a2"), (0.5, "a3")),
            script((1.2, "b1"), (0.5, "b2"), (0.5, "b3")),
        ),
        latency=4.0,
    )
    result = run_coedit(workload)
    assert result.converged
    assert len(result.order) == 6
    # every edit appears exactly once in the global order
    texts = sorted(entry[4] for entry in result.order)
    assert texts == ["a1", "a2", "a3", "b1", "b2", "b3"]


def test_three_editors_converge():
    workload = CoEditWorkload(
        scripts=(
            script((1.0, "x1"), (2.0, "x2")),
            script((1.5, "y1"), (2.0, "y2")),
            script((2.0, "z1"), (2.0, "z2")),
        ),
        latency=2.5,
    )
    result = run_coedit(workload)
    assert result.converged
    assert len(result.order) == 6


@pytest.mark.parametrize("seed", [0, 1])
def test_jittered_network_still_converges(seed):
    from repro.sim import RandomStreams, UniformLatency

    workload = CoEditWorkload(
        scripts=(
            script((1.0, "p1"), (1.0, "p2"), (1.0, "p3")),
            script((1.0, "q1"), (1.0, "q2"), (1.0, "q3")),
        ),
    )
    latency = UniformLatency(0.5, 6.0, RandomStreams(seed)["coedit"])
    result = run_coedit(workload, seed=seed, latency=latency)
    assert result.converged
    texts = sorted(entry[4] for entry in result.order)
    assert texts == ["p1", "p2", "p3", "q1", "q2", "q3"]
