"""Property-based crash schedules: exactly-once must hold everywhere."""

from hypothesis import given, settings, strategies as st

from repro.apps.recovery import RecoveryConfig, reference_ledger, run_recovery

_crash_time = st.floats(min_value=1.0, max_value=60.0, allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(crash_time=_crash_time, flush_every=st.integers(min_value=1, max_value=5))
def test_sender_crash_anywhere_exactly_once(crash_time, flush_every):
    config = RecoveryConfig(
        items=tuple(range(8)), log_write_latency=7.0, flush_every=flush_every
    )
    result = run_recovery(config, crash_sender_at=[crash_time], restart_after=2.5)
    assert result.ledger == reference_ledger(config)


@settings(max_examples=30, deadline=None)
@given(crash_time=_crash_time, checkpoint_every=st.integers(min_value=1, max_value=5))
def test_receiver_crash_anywhere_exactly_once(crash_time, checkpoint_every):
    config = RecoveryConfig(
        items=tuple(range(8)), checkpoint_every=checkpoint_every
    )
    result = run_recovery(config, crash_receiver_at=[crash_time], restart_after=2.5)
    assert result.ledger == reference_ledger(config)


@settings(max_examples=20, deadline=None)
@given(
    sender_crash=_crash_time,
    receiver_crash=_crash_time,
)
def test_double_crash_exactly_once(sender_crash, receiver_crash):
    config = RecoveryConfig(items=tuple(range(8)), log_write_latency=6.0)
    result = run_recovery(
        config,
        crash_sender_at=[sender_crash],
        crash_receiver_at=[receiver_crash],
        restart_after=3.0,
    )
    assert result.ledger == reference_ledger(config)
