"""Optimistic numerical computation tests."""

import numpy as np
import pytest

from repro.apps.numerics import (
    JacobiProblem,
    make_problem,
    run_optimistic_jacobi,
    run_pessimistic_jacobi,
)


def test_problem_generator_is_deterministic():
    a = make_problem(n=5, seed=3)
    b = make_problem(n=5, seed=3)
    assert a == b
    assert make_problem(n=5, seed=4) != a


def test_stable_system_converges_without_rollbacks():
    problem = make_problem(n=6, seed=1, dominance=3.0)
    result = run_optimistic_jacobi(problem)
    assert result.residual < problem.tolerance
    assert result.rollbacks == 0
    assert result.error_vs(problem.reference_solution()) < 1e-6


def test_stiff_system_rolls_back_and_still_converges():
    # low dominance + aggressive omega: fast blocks diverge
    problem = make_problem(
        n=6, seed=2, dominance=0.52, omega_fast=1.9, omega_safe=0.5,
        max_blocks=200, tolerance=1e-7,
    )
    result = run_optimistic_jacobi(problem)
    assert result.rollbacks > 0
    assert result.residual < problem.tolerance
    assert result.error_vs(problem.reference_solution()) < 1e-5


def test_optimistic_matches_pessimistic_solution():
    for dominance in (3.0, 0.55):
        problem = make_problem(
            n=5, seed=7, dominance=dominance, max_blocks=200, tolerance=1e-7
        )
        opt = run_optimistic_jacobi(problem)
        pess = run_pessimistic_jacobi(problem)
        assert opt.residual < problem.tolerance
        assert pess.residual < problem.tolerance
        # both land on the same fixed point (the true solution)
        reference = problem.reference_solution()
        assert opt.error_vs(reference) < 1e-5
        assert pess.error_vs(reference) < 1e-5


def test_optimistic_faster_when_validation_is_remote():
    from repro.sim import ConstantLatency

    problem = make_problem(n=6, seed=1, dominance=3.0)
    latency = ConstantLatency(20.0)
    opt = run_optimistic_jacobi(problem, latency=latency)
    pess = run_pessimistic_jacobi(problem, latency=latency)
    # pessimistic pays a validation round trip per block
    assert opt.makespan < 0.5 * pess.makespan


def test_block_ledger_committed_residuals_decrease_overall():
    from repro.runtime import HopeSystem
    from repro.apps.numerics import solver, validator
    from repro.sim import ConstantLatency

    problem = make_problem(n=6, seed=1, dominance=3.0)
    system = HopeSystem(latency=ConstantLatency(2.0))
    system.spawn("validator", validator, problem)
    system.spawn("solver", solver, problem)
    system.run(max_events=5_000_000)
    residuals = [entry[3] for entry in system.committed_outputs("solver")]
    assert residuals, "no blocks committed"
    assert residuals[-1] < residuals[0]
    assert residuals == sorted(residuals, reverse=True)
