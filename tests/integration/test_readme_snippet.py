"""The README quickstart snippet must behave exactly as documented."""

from repro import HopeSystem
from repro.sim import ConstantLatency


def worker(p):
    lock = yield p.aid_init("lock-granted")
    yield p.send("lock-service", lock)
    if (yield p.guess(lock)):
        yield p.emit("fast path")
        yield p.compute(2.0)
    else:
        yield p.emit("slow path")
        yield p.compute(8.0)


def lock_service(p, grant):
    msg = yield p.recv()
    yield p.compute(3.0)
    if grant:
        yield p.affirm(msg.payload)
    else:
        yield p.deny(msg.payload)


def test_readme_denied_lock():
    system = HopeSystem(latency=ConstantLatency(1.0))
    system.spawn("worker", worker)
    system.spawn("lock-service", lock_service, False)
    system.run()
    assert system.committed_outputs("worker") == ["slow path"]


def test_readme_granted_lock():
    system = HopeSystem(latency=ConstantLatency(1.0))
    system.spawn("worker", worker)
    system.spawn("lock-service", lock_service, True)
    system.run()
    assert system.committed_outputs("worker") == ["fast path"]
