"""Cross-feature integration: applications × control planes × failures."""

import pytest

from repro.apps.recovery import (
    RecoveryConfig,
    disk,
    receiver,
    reference_ledger,
    sender,
)
from repro.apps.replication import (
    ReplicationWorkload,
    optimistic_client,
    primary,
)
from repro.apps.tms import SearchProblem, reference_solution, run_search
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency


def _recovery_system(config, aid_mode, control_latency=1.0):
    system = HopeSystem(
        latency=ConstantLatency(config.latency),
        aid_mode=aid_mode,
        control_latency=control_latency,
    )
    system.spawn("disk", disk, config.log_write_latency)
    system.spawn("sender", sender, config)
    system.spawn("receiver", receiver, config)
    return system


@pytest.mark.parametrize("aid_mode", ["registry", "aid_task"])
def test_recovery_with_sender_crash_under_both_control_planes(aid_mode):
    config = RecoveryConfig(items=tuple(range(10)), log_write_latency=9.0)
    system = _recovery_system(config, aid_mode)
    system.failures.crash_at("sender", 7.0)
    system.sim.schedule_at(10.0, system.restart_process, "sender")
    system.run(max_events=5_000_000)
    assert system.committed_outputs("disk") == reference_ledger(config)


@pytest.mark.parametrize("aid_mode", ["registry", "aid_task"])
def test_replication_contention_under_both_control_planes(aid_mode):
    workload = ReplicationWorkload(n_clients=3, ops_per_client=3, keys=("hot",))
    system = HopeSystem(
        latency=ConstantLatency(5.0), aid_mode=aid_mode, control_latency=0.5
    )
    system.spawn("primary", primary)
    for c in range(workload.n_clients):
        system.spawn(f"client-{c}", optimistic_client, workload, c)
    system.run(max_events=5_000_000)
    applied = [
        entry
        for entry in system.committed_outputs("primary")
        if entry[0] == "applied"
    ]
    assert len(applied) == workload.total_ops
    # final value equals total ops: each increment applied exactly once
    assert applied[-1][3] == workload.total_ops


def test_search_with_rollback_overhead_still_matches_reference():
    problem = SearchProblem(
        variables=("a", "b", "c"),
        clauses=(
            (("a", False), ("b", False)),
            (("b", True), ("c", True)),
            (("a", False), ("c", False)),
        ),
    )
    result = run_search(problem, seed=3)
    assert result.model == reference_solution(problem)


def test_recovery_determinism_across_seeds_with_crashes():
    """Crash schedules are virtual-time events, so different seeds with a
    constant-latency network produce the same committed ledger."""
    config = RecoveryConfig(items=tuple(range(8)), log_write_latency=7.0)
    ledgers = []
    for seed in (0, 1, 2):
        system = _recovery_system(config, "registry")
        system.failures.crash_at("sender", 6.0)
        system.sim.schedule_at(9.0, system.restart_process, "sender")
        system.run(max_events=5_000_000)
        ledgers.append(system.committed_outputs("disk"))
    assert ledgers[0] == ledgers[1] == ledgers[2] == reference_ledger(config)


def test_machine_invariants_hold_after_every_app():
    """Belt and braces: the machine algebra must be intact at quiescence
    of each application run."""
    config = RecoveryConfig(items=tuple(range(6)))
    system = _recovery_system(config, "registry")
    system.run(max_events=5_000_000)
    system.machine.check_invariants()

    workload = ReplicationWorkload(n_clients=2, ops_per_client=3, keys=("k",))
    system2 = HopeSystem(latency=ConstantLatency(4.0))
    system2.spawn("primary", primary)
    for c in range(workload.n_clients):
        system2.spawn(f"client-{c}", optimistic_client, workload, c)
    system2.run(max_events=5_000_000)
    system2.machine.check_invariants()
