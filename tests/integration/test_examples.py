"""Every example script must run to completion and tell a coherent story."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "call_streaming.py",
        "optimistic_replication.py",
        "optimistic_recovery.py",
        "timewarp_demo.py",
        "lang_demo.py",
    } <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "fast path" in out
    assert "slow path" in out
    assert "rollbacks=1" in out


def test_call_streaming_example():
    out = run_example("call_streaming.py")
    assert out.count("ledgers identical    : True") == 4
    assert "order race" in out


def test_replication_example():
    out = run_example("optimistic_replication.py")
    assert "final cells agree: True" in out
    assert "exactly once: True" in out


def test_recovery_example():
    out = run_example("optimistic_recovery.py")
    assert out.count("exactly-once     : True") == 4


def test_timewarp_example():
    out = run_example("timewarp_demo.py")
    assert "all three agree: True" in out


def test_lang_example():
    out = run_example("lang_demo.py")
    assert "'print', 'Total is', 10" in out.replace('("', "('")
    assert "newpage" in out


def test_two_phase_commit_example():
    out = run_example("two_phase_commit.py")
    assert "'commit', 'ABORT', 'commit'" in out
    assert "final balance (100 per commit): 200" in out
    assert "cascading speculation" in out


def test_timeline_example():
    out = run_example("timeline_visualization.py")
    assert "rolled-back" in out
    assert "x" in out.split("assumption fails")[1].splitlines()[2]
    assert out.count("===") == 6
