"""Moderate-scale stress runs: correctness and bounded cost at size."""

import pytest

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    run_optimistic,
)
from repro.apps.virtual_time import Job, VtWorkload, run_hope_order
from repro.baselines.timewarp import SequentialOracle, TimeWarpEngine
from repro.bench import build_tw_ring
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, RandomStreams, UniformLatency


def test_hundred_report_stream_equivalent():
    config = CallStreamConfig(
        report_lines=tuple([10, 30, 70, 15][i % 4] for i in range(100)),
        page_size=60,
        latency=8.0,
        n_warts=10,
    )
    result = run_optimistic(config)
    assert result.server_output == expected_output(config)


def test_fifty_process_fanout_cascade():
    system = HopeSystem()
    width = 50

    def root(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            for i in range(width):
                yield p.send(f"leaf-{i}", i)
        yield p.compute(1.0)

    def leaf(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.send("collector", msg.payload)

    def collector(p):
        got = 0
        while got < width:
            yield p.recv()
            got += 1
            yield p.emit(got)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        yield p.deny(msg.payload)

    system.spawn("root", root)
    system.spawn("judge", judge)
    system.spawn("collector", collector)
    for i in range(width):
        system.spawn(f"leaf-{i}", leaf)
    system.run(max_events=1_000_000)
    # everything speculative died: the collector never commits a count
    assert system.committed_outputs("collector") == []
    stats = system.stats()
    assert stats["rollbacks"] == width + 2          # root, leaves, collector
    assert stats["sim_events"] < 4000               # cost stays linear-ish


def test_large_vt_run_with_jitter_matches_reference():
    streams = []
    for s in range(5):
        jobs = tuple(Job(0.3 + s * 0.1 + 2.0 * i, s * 10_000 + i) for i in range(40))
        streams.append(jobs)
    workload = VtWorkload(streams=tuple(streams), send_spacing=0.8)
    latency = UniformLatency(0.2, 6.0, RandomStreams(21)["stress"])
    result = run_hope_order(workload, latency=latency, seed=21)
    assert result.final_state == workload.reference_state()
    assert len(result.ledger) == 200


def test_timewarp_long_ring_matches_oracle():
    engine = TimeWarpEngine(
        latency=UniformLatency(0.2, 4.0, RandomStreams(5)["twnet"]),
        service_time=0.1,
        gvt_interval=25.0,
    )
    build_tw_ring(engine, n_lps=6, hops=150)
    engine.run(max_events=1_000_000)
    oracle = SequentialOracle()
    build_tw_ring(oracle, n_lps=6, hops=150)
    oracle.run()
    assert engine.final_states() == oracle.final_states()
    assert engine.stats()["gvt"] == float("inf")


def test_deep_replay_chain_is_exact():
    """A 300-effect prefix replayed after a rollback must restore state
    bit-for-bit (checked through an accumulated checksum)."""
    system = HopeSystem()
    checksums = []

    def worker(p):
        acc = 0
        for i in range(300):
            draw = yield p.random()
            acc = (acc * 31 + int(draw * 1e6)) % 1_000_003
        pre = acc
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            acc = 0                      # speculative clobber
            yield p.compute(5.0)
        checksums.append((pre, acc))

    def judge(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run(max_events=5_000_000)
    [(pre, post)] = checksums
    assert post == pre                   # clobber undone, prefix exact
    assert system.stats()["replayed_effects"] >= 300
