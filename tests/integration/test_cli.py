"""CLI tests: check and run mini-HOPE programs from files."""

import io
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
FIGURE2 = str(EXAMPLES / "figure2.hope")


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_check_figure2_ok():
    code, out = run_cli(["check", FIGURE2])
    assert code == 0
    assert "OK (3 process(es))" in out


def test_check_reports_errors(tmp_path):
    bad = tmp_path / "bad.hope"
    bad.write_text("process P() { undeclared = 1; }")
    code, out = run_cli(["check", str(bad)])
    assert code == 1
    assert "undeclared" in out


def test_check_reports_syntax_error(tmp_path):
    bad = tmp_path / "bad.hope"
    bad.write_text("process P( {")
    code, out = run_cli(["check", str(bad)])
    assert code == 2
    assert "syntax error" in out


def test_run_figure2_happy_path():
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--latency", "10",
        ]
    )
    assert code == 0
    assert "result='report-complete'" in out
    assert "'Total is', 10" in out
    assert "'Summary ...', 11" in out


def test_run_figure2_page_full_denies():
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[70]",
            "--latency", "10",
        ]
    )
    assert code == 0
    assert "newpage" in out
    assert "rollbacks=" in out
    # at least the PartPage rollback happened
    rollback_line = [l for l in out.splitlines() if l.startswith("stats:")][0]
    assert "rollbacks=0" not in rollback_line


def test_run_requires_spawn():
    code, out = run_cli(["run", FIGURE2])
    assert code == 1
    assert "nothing to run" in out


def test_run_with_trace():
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--trace",
        ]
    )
    assert code == 0
    assert "trace:" in out
    assert "guess" in out


def test_bad_spawn_spec_rejected():
    with pytest.raises(SystemExit):
        run_cli(["run", FIGURE2, "--spawn", "nonsense"])


def test_run_occ_example():
    code, out = run_cli(
        [
            "run",
            str(EXAMPLES / "occ.hope"),
            "--spawn", "primary=Primary:[4]",
            "--spawn", "alice=Client:[2]",
            "--spawn", "bob=Client:[2]",
            "--latency", "5",
        ]
    )
    assert code == 0
    assert "('committed', 4, 4)" in out
    assert out.count("applied") == 4        # every increment exactly once
    assert "rollbacks=" in out


_FIGURE2_SPAWNS = [
    "--spawn", "server=Server:[60]",
    "--spawn", "worrywart=WorryWart:[60]",
    "--spawn", "worker=Worker:[10]",
]


def test_run_metrics_to_stdout():
    code, out = run_cli(
        ["run", FIGURE2, *_FIGURE2_SPAWNS, "--metrics-out", "-"]
    )
    assert code == 0
    assert "speculation metrics" in out
    assert "hope_guesses_total" in out
    assert "wasted-work ratio" in out
    assert "interval spans" in out


def test_run_metrics_to_file(tmp_path):
    target = tmp_path / "metrics.jsonl"
    code, out = run_cli(
        [
            "run", FIGURE2, *_FIGURE2_SPAWNS,
            "--metrics-out", str(target),
            "--metrics-format", "jsonl",
        ]
    )
    assert code == 0
    assert f"metrics: wrote jsonl to {target}" in out
    import json

    rows = [json.loads(line) for line in target.read_text().splitlines()]
    names = {r.get("name") for r in rows}
    assert "hope_guesses_total" in names
    assert any(r["type"] == "span" for r in rows)


def test_run_metrics_prom_format(tmp_path):
    target = tmp_path / "metrics.prom"
    code, out = run_cli(
        [
            "run", FIGURE2, *_FIGURE2_SPAWNS,
            "--metrics-out", str(target),
            "--metrics-format", "prom",
        ]
    )
    assert code == 0
    text = target.read_text()
    assert "# TYPE hope_guesses_total counter" in text
    assert 'hope_commit_latency_bucket{le="+Inf"}' in text


def test_run_without_metrics_flag_prints_none():
    code, out = run_cli(["run", FIGURE2, *_FIGURE2_SPAWNS])
    assert code == 0
    assert "speculation metrics" not in out


def test_run_aid_task_mode():
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--aid-mode", "aid_task",
        ]
    )
    assert code == 0
    assert "'Summary ...', 11" in out


@pytest.mark.parametrize("kernel", ["heap", "wheel", "window"])
def test_run_kernel_flag_identical_output(kernel):
    """--kernel heap, wheel, and window produce the same run, down to the
    printed trace (the differential-oracle property, end to end)."""
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--trace",
            "--kernel", kernel,
        ]
    )
    assert code == 0
    assert "'Summary ...', 11" in out
    outputs = getattr(test_run_kernel_flag_identical_output, "_outputs", {})
    outputs[kernel] = out
    test_run_kernel_flag_identical_output._outputs = outputs
    if len(outputs) == 3:
        assert outputs["heap"] == outputs["wheel"] == outputs["window"]


def test_run_profile_prints_hotspots():
    """--profile wraps the run in cProfile and appends the cumulative
    top-25 report without disturbing the normal output."""
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--profile",
        ]
    )
    assert code == 0
    assert "'Summary ...', 11" in out
    assert "profile (top 25 by cumulative time):" in out
    assert "cumulative" in out
    # the runtime's own hot path shows up in the report
    assert "engine.py" in out


def test_run_profile_out_writes_pstats(tmp_path):
    import pstats

    dump = tmp_path / "run.prof"
    code, out = run_cli(
        [
            "run",
            FIGURE2,
            "--spawn", "server=Server:[60]",
            "--spawn", "worrywart=WorryWart:[60]",
            "--spawn", "worker=Worker:[10]",
            "--profile",
            "--profile-out", str(dump),
        ]
    )
    assert code == 0
    assert f"profile: wrote pstats data to {dump}" in out
    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0


# ---------------------------------------------------------------------------
# repro verify
# ---------------------------------------------------------------------------
def test_verify_standard_matrix_passes():
    code, out = run_cli(["verify", "--scenario", "two_aid", "--scenario", "orphan"])
    assert code == 0
    assert "schedules explored" in out
    assert "0 failing" in out
    assert "BUDGET EXHAUSTED" not in out


def test_verify_full_mode_matches_dpor_outcomes():
    code, out = run_cli(
        ["verify", "--scenario", "two_aid(x=True,y=True)", "--mode", "full"]
    )
    assert code == 0
    assert "(full, complete)" in out


def test_verify_budget_exhaustion_fails():
    code, out = run_cli(
        [
            "verify", "--scenario", "two_aid(x=True,y=True)",
            "--mode", "full", "--max-schedules", "3",
        ]
    )
    assert code == 1
    assert "BUDGET EXHAUSTED" in out


def test_verify_unknown_scenario_is_usage_error():
    code, out = run_cli(["verify", "--scenario", "no-such-scenario"])
    assert code == 2
    assert "no scenario matches" in out


def test_verify_injected_bug_writes_replayable_reproducer(tmp_path, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_VERIFY_INJECT_BUG", "1")
    code, out = run_cli(
        [
            "verify", "--scenario", "two_aid(x=True,y=True)",
            "--repro-dir", str(tmp_path),
        ]
    )
    assert code == 1
    assert "injected bug" in out
    repros = list(tmp_path.glob("repro-dpor-*.json"))
    assert len(repros) == 1
    payload = json.loads(repros[0].read_text())
    assert payload["kind"] == "dpor"
    assert str(repros[0]) in payload["command"]

    # the reproducer is self-contained (inject_bug is stored in the
    # payload): replaying it reproduces the violation without the env flag
    monkeypatch.delenv("REPRO_VERIFY_INJECT_BUG")
    code, out = run_cli(["verify", "--repro", str(repros[0])])
    assert code == 1
    assert "injected bug" in out

    # a replay whose recorded bug no longer exists exits clean
    payload["inject_bug"] = False
    repros[0].write_text(json.dumps(payload))
    code, out = run_cli(["verify", "--repro", str(repros[0])])
    assert code == 0
    assert "no longer fails" in out


def test_verify_random_mode():
    code, out = run_cli(["verify", "--mode", "random", "--runs", "10"])
    assert code == 0
    assert "10 runs, 0 failing" in out


# ----------------------------------------------------- durable runs (CLI)
FIG2_SPAWNS = [
    "--spawn", "server=Server:[60]",
    "--spawn", "worrywart=WorryWart:[60]",
    "--spawn", "worker=Worker:[10]",
]


def test_run_durable_then_resume_completed(tmp_path):
    code, out = run_cli(
        ["run", FIGURE2, *FIG2_SPAWNS, "--latency", "10",
         "--durable-dir", str(tmp_path)]
    )
    assert code == 0
    assert (tmp_path / "key.bin").exists()
    assert list(tmp_path.glob("snap-*.env")), "expected a sealed snapshot"
    code, out = run_cli(
        ["resume", FIGURE2, "--durable-dir", str(tmp_path),
         *FIG2_SPAWNS, "--latency", "10"]
    )
    assert code == 0
    assert "resumed from generation" in out
    assert "'Summary ...', 11" in out      # committed outputs preserved


def test_resume_empty_dir_starts_fresh(tmp_path):
    code, out = run_cli(
        ["resume", FIGURE2, "--durable-dir", str(tmp_path / "empty"),
         *FIG2_SPAWNS, "--latency", "10"]
    )
    assert code == 0
    assert "starting fresh" in out
    assert "result='report-complete'" in out


def test_resume_requires_spawns(tmp_path):
    code, out = run_cli(
        ["resume", FIGURE2, "--durable-dir", str(tmp_path)]
    )
    assert code == 1
    assert "--spawn" in out


def test_chaos_list_plans():
    code, out = run_cli(["chaos", "--list-plans"])
    assert code == 0
    assert "drop-light" in out and "storm" in out
    assert "kill/resume workloads" in out and "counter" in out


def test_chaos_kill_at_matrix():
    code, out = run_cli(
        ["chaos", "--kill-at", "0.55", "--workload", "counter",
         "--seeds", "1"]
    )
    assert code == 0
    assert "kill/resume matrix:" in out
    assert "corrupt=envelope" in out and "corrupt=wal" in out


def test_chaos_kill_at_unknown_workload():
    code, out = run_cli(
        ["chaos", "--kill-at", "0.5", "--workload", "nope", "--seeds", "1"]
    )
    assert code == 2
    assert "nope" in out


def test_chaos_repro_names_offending_field(tmp_path):
    import json

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"workload": "mesh", "seed": 1,
                               "plan": {"default": {"drp": 0.5}}}))
    code, out = run_cli(["chaos", "--repro", str(bad)])
    assert code == 2
    assert "field 'plan'" in out and "drp" in out

    bad.write_text(json.dumps({"seed": 1}))
    code, out = run_cli(["chaos", "--repro", str(bad)])
    assert code == 2
    assert "field 'workload' is missing" in out
