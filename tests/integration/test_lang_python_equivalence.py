"""Cross-implementation equivalence: Figure 2 in mini-HOPE vs in Python.

The interpreted figure2.hope program and the hand-written
repro.apps.call_streaming implementation must commit ledgers consistent
with the same serial reference — two independent encodings of the same
paper figure agreeing through the same runtime.
"""

from pathlib import Path

import pytest

from repro.apps.call_streaming import CallStreamConfig, expected_output
from repro.lang import compile_program
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency

FIGURE2 = Path(__file__).resolve().parents[2] / "examples" / "figure2.hope"


def run_hope_file(total_lines: int, pagesize: int):
    compiled = compile_program(FIGURE2.read_text())
    system = HopeSystem(latency=ConstantLatency(10.0))
    compiled.spawn(system, "server", "Server", pagesize)
    compiled.spawn(system, "worrywart", "WorryWart", pagesize)
    compiled.spawn(system, "worker", "Worker", total_lines)
    system.run(max_events=500_000)
    return system


@pytest.mark.parametrize("total_lines", [10, 70])
def test_hope_file_matches_python_reference(total_lines):
    pagesize = 60
    system = run_hope_file(total_lines, pagesize)
    # the figure2.hope labels differ ("Total is" vs "total-0"); compare
    # the structure: ops and line arithmetic
    config = CallStreamConfig(report_lines=(total_lines,), page_size=pagesize)
    reference = expected_output(config)
    committed = system.committed_outputs("server")
    assert len(committed) == len(reference)
    for mine, ref in zip(committed, reference):
        assert mine[0] == ref[0]                 # op kind in same order
        if mine[0] == "print":
            assert mine[2] == ref[2]             # identical line arithmetic
    # every AID resolved (modulo rollback orphans with no dependents)
    for aid in system.pending_aids():
        assert not aid.dom


def test_hope_file_page_full_rolls_back():
    system = run_hope_file(70, 60)
    assert system.stats()["rollbacks"] >= 1
    ops = [entry[0] for entry in system.committed_outputs("server")]
    assert ops == ["print", "newpage", "print"]
