"""The tutorial's code must actually work (docs/TUTORIAL.md §2)."""

from repro import HopeSystem
from repro.sim import ConstantLatency


def reader(p):
    cached = 41
    fresh = yield p.aid_init("cache-is-fresh")
    yield p.send("validator", (fresh, cached))
    if (yield p.guess(fresh)):
        result = cached * 2
    else:
        reply = yield p.recv()
        result = reply.payload * 2
    yield p.emit(result)


def validator(p, truth):
    msg = yield p.recv()
    fresh, cached = msg.payload
    yield p.compute(5.0)
    if cached == truth:
        yield p.affirm(fresh)
    else:
        yield p.send(msg.src, truth)
        yield p.deny(fresh)


def run(truth):
    system = HopeSystem(latency=ConstantLatency(2.0))
    system.spawn("reader", reader)
    system.spawn("validator", validator, truth)
    system.run()
    return system


def test_tutorial_fresh_cache_fast_path():
    system = run(41)
    assert system.committed_outputs("reader") == [82]
    assert system.stats()["rollbacks"] == 0


def test_tutorial_stale_cache_slow_path():
    system = run(99)
    assert system.committed_outputs("reader") == [198]
    assert system.stats()["rollbacks"] == 1


def test_tutorial_blocking_mode_same_answers():
    for truth, expected in [(41, 82), (99, 198)]:
        system = HopeSystem(latency=ConstantLatency(2.0), speculation=False)
        system.spawn("reader", reader)
        system.spawn("validator", validator, truth)
        system.run()
        assert system.committed_outputs("reader") == [expected]
