"""Time Warp tests: optimistic execution must match the sequential oracle."""

import pytest

from repro.baselines.timewarp import (
    Emission,
    LogicalProcess,
    SequentialOracle,
    TimeWarpEngine,
    TWMessage,
)
from repro.sim import ConstantLatency, SequenceLatency


# ---------------------------------------------------------------- handlers
def counting_handler(state, vt, payload):
    """Count events and keep a vt-ordered log; forward until a hop limit."""
    state["count"] += 1
    state["log"].append((vt, payload))
    hops = payload
    if hops > 0:
        return [Emission(state["next"], 1.5, hops - 1)]
    return []


def summing_handler(state, vt, payload):
    state["sum"] += payload
    state["history"].append((vt, payload))
    return []


# ---------------------------------------------------------------- unit level
def test_message_validation():
    with pytest.raises(ValueError):
        TWMessage("a", "b", send_vt=5.0, recv_vt=4.0, payload=None)
    with pytest.raises(ValueError):
        TWMessage("a", "b", 0.0, 1.0, None, sign=2)


def test_anti_of_anti_rejected():
    msg = TWMessage("a", "b", 0.0, 1.0, "x")
    anti = msg.anti()
    assert anti.uid == msg.uid and anti.sign == -1
    with pytest.raises(ValueError):
        anti.anti()


def test_lp_processes_in_timestamp_order():
    lp = LogicalProcess("sink", summing_handler, {"sum": 0, "history": []})
    lp.insert(TWMessage("env", "sink", 0.0, 5.0, 50))
    lp.insert(TWMessage("env", "sink", 0.0, 2.0, 20))
    lp.process_next()
    lp.process_next()
    assert lp.state["history"] == [(2.0, 20), (5.0, 50)]
    assert lp.lvt == 5.0


def test_lp_straggler_rolls_back_and_reprocesses():
    lp = LogicalProcess("sink", summing_handler, {"sum": 0, "history": []})
    lp.insert(TWMessage("env", "sink", 0.0, 5.0, 50))
    lp.process_next()
    antis = lp.insert(TWMessage("env", "sink", 0.0, 2.0, 20))
    assert antis == []                       # no outputs to cancel
    assert lp.rollbacks == 1
    assert lp.lvt == float("-inf")
    lp.process_next()
    lp.process_next()
    assert lp.state["history"] == [(2.0, 20), (5.0, 50)]


def test_lp_straggler_cancels_outputs_with_antis():
    state = {"count": 0, "log": [], "next": "peer"}
    lp = LogicalProcess("relay", counting_handler, state)
    lp.insert(TWMessage("env", "relay", 0.0, 5.0, 3))
    out = lp.process_next()
    assert len(out) == 1 and out[0].dst == "peer"
    antis = lp.insert(TWMessage("env", "relay", 0.0, 1.0, 0))
    assert len(antis) == 1
    assert antis[0].sign == -1 and antis[0].uid == out[0].uid


def test_anti_annihilates_unprocessed_positive():
    lp = LogicalProcess("sink", summing_handler, {"sum": 0, "history": []})
    msg = TWMessage("env", "sink", 0.0, 5.0, 50)
    lp.insert(msg)
    lp.insert(msg.anti())
    assert not lp.has_work
    assert lp.rollbacks == 0


def test_anti_for_processed_positive_rolls_back():
    lp = LogicalProcess("sink", summing_handler, {"sum": 0, "history": []})
    msg = TWMessage("env", "sink", 0.0, 5.0, 50)
    lp.insert(msg)
    lp.process_next()
    assert lp.state["sum"] == 50
    lp.insert(msg.anti())
    assert lp.state["sum"] == 0
    assert not lp.has_work                   # annihilated after rollback


def test_anti_overtaking_positive_annihilates_on_arrival():
    lp = LogicalProcess("sink", summing_handler, {"sum": 0, "history": []})
    msg = TWMessage("env", "sink", 0.0, 5.0, 50)
    lp.insert(msg.anti())                    # anti arrives first
    lp.insert(msg)
    assert not lp.has_work
    assert lp.state["sum"] == 0


def test_save_interval_coast_forward():
    """save_interval > 1: rollback restores an older save and re-processes."""
    lp = LogicalProcess(
        "sink", summing_handler, {"sum": 0, "history": []}, save_interval=3
    )
    for vt in [10.0, 20.0, 30.0, 40.0]:
        lp.insert(TWMessage("env", "sink", 0.0, vt, int(vt)))
        lp.process_next()
    lp.insert(TWMessage("env", "sink", 0.0, 35.0, 35))
    # restored save is after vt=30 (the 3rd event); 40 is redone
    while lp.has_work:
        lp.process_next()
    assert lp.state["sum"] == 10 + 20 + 30 + 35 + 40
    assert [h[0] for h in lp.state["history"]] == [10.0, 20.0, 30.0, 35.0, 40.0]


# ---------------------------------------------------------------- engine level
def _ring(engine_or_oracle, n=3, hops=10):
    names = [f"lp{i}" for i in range(n)]
    for i, name in enumerate(names):
        state = {"count": 0, "log": [], "next": names[(i + 1) % n]}
        engine_or_oracle.add_lp(name, counting_handler, state)
    engine_or_oracle.inject("lp0", 1.0, hops)
    return names


def test_ring_matches_oracle():
    engine = TimeWarpEngine(latency=ConstantLatency(2.0), service_time=0.5)
    _ring(engine)
    engine.run(max_events=100_000)
    oracle = SequentialOracle()
    _ring(oracle)
    oracle.run()
    assert engine.final_states() == oracle.final_states()
    assert engine.gvt.value == float("inf")


def test_physical_reordering_forces_straggler_then_converges():
    # First transmit crawls, second sprints: vt order inverted physically.
    latency = SequenceLatency([50.0, 1.0])
    engine = TimeWarpEngine(latency=latency, service_time=0.5)
    engine.add_lp("sink", summing_handler, {"sum": 0, "history": []})
    engine.inject("sink", 1.0, 100)          # slow physical, early virtual
    engine.inject("sink", 2.0, 200)          # fast physical, late virtual
    engine.run(max_events=10_000)
    lp = engine.lps["sink"]
    assert lp.rollbacks >= 1
    assert lp.state["history"] == [(1.0, 100), (2.0, 200)]


def test_anti_message_cascade_across_chain():
    """A straggler at the head must unwind speculative work downstream."""
    latency = SequenceLatency([40.0] + [1.0] * 50)
    engine = TimeWarpEngine(latency=latency, service_time=0.2)
    for i, name in enumerate(["a", "b", "c"]):
        nxt = ["a", "b", "c"][(i + 1) % 3]
        engine.add_lp(name, counting_handler, {"count": 0, "log": [], "next": nxt})
    engine.inject("a", 1.0, 6)               # slow: the eventual straggler
    engine.inject("a", 5.0, 6)               # fast: processed optimistically
    engine.run(max_events=100_000)

    oracle = SequentialOracle()
    for i, name in enumerate(["a", "b", "c"]):
        nxt = ["a", "b", "c"][(i + 1) % 3]
        oracle.add_lp(name, counting_handler, {"count": 0, "log": [], "next": nxt})
    oracle.inject("a", 1.0, 6)
    oracle.inject("a", 5.0, 6)
    oracle.run()
    assert engine.final_states() == oracle.final_states()
    assert engine.stats()["rollbacks"] >= 1
    assert engine.stats()["antis_sent"] >= 1


def test_gvt_advances_and_fossils_collected():
    engine = TimeWarpEngine(
        latency=ConstantLatency(2.0), service_time=0.5, gvt_interval=10.0
    )
    _ring(engine, n=3, hops=30)
    engine.run(max_events=100_000)
    stats = engine.stats()
    assert stats["gvt"] == float("inf")
    assert stats["fossils_reclaimed"] > 0
    assert engine.gvt.computations >= 2
    # GVT history is monotone
    values = [v for _t, v in engine.gvt.history]
    assert values == sorted(values)


def test_efficiency_statistic():
    engine = TimeWarpEngine(latency=ConstantLatency(1.0), service_time=0.5)
    _ring(engine, n=2, hops=8)
    engine.run(max_events=100_000)
    stats = engine.stats()
    assert 0.0 < stats["efficiency"] <= 1.0
    assert stats["events_processed"] >= 9
