"""Tests for the pessimistic analytic model and the static-scope baseline."""

import pytest

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    run_optimistic,
    run_pessimistic,
)
from repro.baselines.pessimistic import (
    RpcChain,
    RpcStep,
    predict_completion,
    run_chain,
)
from repro.baselines.static_scope import run_static_scope


# ---------------------------------------------------------------- pessimistic
def test_predict_matches_simulation_single_rpc():
    chain = RpcChain(steps=(RpcStep(compute=2.0, rpc_service=1.0),), latency=10.0)
    assert predict_completion(chain) == pytest.approx(2.0 + 20.0 + 1.0)
    assert run_chain(chain) == pytest.approx(predict_completion(chain))


def test_predict_matches_simulation_long_chain():
    steps = tuple(
        RpcStep(compute=1.5, rpc_service=0.5) if i % 2 == 0 else RpcStep(compute=3.0)
        for i in range(12)
    )
    chain = RpcChain(steps=steps, latency=7.0)
    assert run_chain(chain) == pytest.approx(predict_completion(chain))


def test_latency_dominates_for_remote_chains():
    """The paper's motivation: RPC latency swamps compute at WAN distances."""
    compute_only = RpcChain(steps=(RpcStep(compute=10.0),), latency=100.0)
    with_rpc = RpcChain(
        steps=(RpcStep(compute=10.0, rpc_service=0.1),), latency=100.0
    )
    assert predict_completion(with_rpc) > 20 * predict_completion(compute_only)


# ---------------------------------------------------------------- static scope
def test_static_scope_output_equivalent():
    config = CallStreamConfig(report_lines=(10, 70, 20), page_size=60)
    result = run_static_scope(config)
    assert result.server_output == expected_output(config)


def test_static_scope_never_rolls_back():
    """Nothing speculative escapes the process, so no rollback can occur."""
    config = CallStreamConfig(report_lines=(70, 70, 70), page_size=60)
    result = run_static_scope(config)
    assert result.rollbacks == 0
    assert result.server_output == expected_output(config)


def test_performance_ordering_hope_beats_static_beats_pessimistic():
    """The §2 argument, quantified: static scope can only overlap local
    preparation with verification; HOPE also overlaps the remote work."""
    config = CallStreamConfig(
        report_lines=tuple([10] * 8),
        page_size=10_000,
        latency=30.0,
        n_warts=8,
        summary_prep=20.0,   # enough local preparation for static scope to hide
    )
    pess = run_pessimistic(config)
    static = run_static_scope(config)
    hope = run_optimistic(config)
    assert hope.server_output == static.server_output == pess.server_output
    assert hope.makespan < static.makespan < pess.makespan
