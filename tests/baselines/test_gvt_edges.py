"""GVT and fossil-collection edge cases for the Time Warp baseline."""

import pytest

from repro.baselines.timewarp import (
    Emission,
    GvtManager,
    LogicalProcess,
    TimeWarpEngine,
    TWMessage,
)
from repro.sim import ConstantLatency


def counting(state, vt, payload):
    state["n"] += 1
    return []


def test_gvt_monotonicity_guard_raises_on_regression():
    engine = TimeWarpEngine(latency=ConstantLatency(1.0))
    engine.add_lp("a", counting, {"n": 0})
    engine.gvt.value = 100.0                  # force an inflated horizon
    engine.inject("a", 5.0, None)             # in-flight below the horizon
    with pytest.raises(RuntimeError, match="regressed"):
        engine.gvt.compute()


def test_gvt_accounts_in_flight_messages():
    engine = TimeWarpEngine(latency=ConstantLatency(50.0), gvt_interval=None)
    engine.add_lp("a", counting, {"n": 0})
    engine.inject("a", 7.0, None)             # physically in flight
    assert engine.gvt.compute() == 7.0        # bounded by the in-flight vt


def test_fossil_collection_keeps_restore_floor():
    lp = LogicalProcess("a", counting, {"n": 0}, save_interval=1)
    for i in range(5):
        lp.insert(TWMessage("env", "a", 0.0, float(i + 1), i))
        lp.process_next()
    assert len(lp.saves) == 6                 # initial + 5
    lp.fossil_collect(gvt=3.5)
    # the newest save strictly below GVT must survive as the restore floor
    floors = [key[0] for key, _state in lp.saves]
    assert floors[0] <= 3.5
    assert all(f <= 5.0 for f in floors)
    # rolling back to just above the floor still works
    antis = lp.rollback((3.6, 0))
    assert antis == []
    while lp.has_work:
        lp.process_next()
    assert lp.state["n"] == 5


def test_memory_footprint_shrinks_after_fossil_collection():
    lp = LogicalProcess("a", counting, {"n": 0})
    for i in range(10):
        lp.insert(TWMessage("env", "a", 0.0, float(i + 1), i))
        lp.process_next()
    before = lp.memory_footprint()
    lp.fossil_collect(gvt=8.0)
    assert lp.memory_footprint() < before


def test_final_gvt_is_infinite_at_quiescence():
    engine = TimeWarpEngine(latency=ConstantLatency(1.0), gvt_interval=5.0)
    engine.add_lp("a", counting, {"n": 0})
    engine.inject("a", 1.0, None)
    engine.run(max_events=10_000)
    assert engine.gvt.value == float("inf")
    assert engine.lps["a"].state["n"] == 1
