"""Lazy cancellation: defer antis, reuse regenerated-identical messages."""

import pytest

from repro.baselines.timewarp import (
    Emission,
    LogicalProcess,
    SequentialOracle,
    TimeWarpEngine,
    TWMessage,
)
from repro.sim import ConstantLatency, SequenceLatency


def forwarding_handler(state, vt, payload):
    """Forwards a constant-derived message: insensitive to stragglers that
    only touch ``state['log']`` — the lazy-cancellation sweet spot."""
    state["log"].append((vt, payload))
    if payload[0] == "fwd":
        return [Emission(state["next"], 2.0, ("leaf", payload[1]))]
    return []


def test_invalid_cancellation_mode_rejected():
    with pytest.raises(ValueError):
        LogicalProcess("lp", forwarding_handler, {}, cancellation="eager")


def test_lazy_reuses_identical_regenerated_output():
    lp = LogicalProcess(
        "relay", forwarding_handler, {"log": [], "next": "leaf"},
        cancellation="lazy",
    )
    lp.insert(TWMessage("env", "relay", 0.0, 10.0, ("fwd", 1)))
    [sent] = lp.process_next()
    # straggler that does not change the forward
    antis = lp.insert(TWMessage("env", "relay", 0.0, 5.0, ("noise", 0)))
    assert antis == []                      # deferred, not sent
    resend = []
    while lp.has_work:
        resend.extend(lp.process_next())
    # the forward was regenerated identically: reused, no anti, no resend
    assert resend == []
    assert lp.lazy_hits == 1
    assert lp.antis_sent == 0
    assert [(k, m.uid) for k, m in lp.output_log][-1][1] == sent.uid


def test_aggressive_cancels_and_resends_same_scenario():
    lp = LogicalProcess(
        "relay", forwarding_handler, {"log": [], "next": "leaf"},
        cancellation="aggressive",
    )
    lp.insert(TWMessage("env", "relay", 0.0, 10.0, ("fwd", 1)))
    [sent] = lp.process_next()
    antis = lp.insert(TWMessage("env", "relay", 0.0, 5.0, ("noise", 0)))
    assert len(antis) == 1 and antis[0].uid == sent.uid
    resend = []
    while lp.has_work:
        resend.extend(lp.process_next())
    assert len(resend) == 1                 # regenerated with a new uid
    assert resend[0].uid != sent.uid


def test_lazy_cancels_genuinely_divergent_output():
    def dependent_handler(state, vt, payload):
        state["sum"] += payload
        return [Emission(state["next"], 2.0, state["sum"])]

    lp = LogicalProcess(
        "relay", dependent_handler, {"sum": 0, "next": "leaf"},
        cancellation="lazy",
    )
    lp.insert(TWMessage("env", "relay", 0.0, 10.0, 5))
    [sent] = lp.process_next()              # forwards sum=5
    lp.insert(TWMessage("env", "relay", 0.0, 4.0, 100))   # changes the sum
    out = []
    while lp.has_work:
        out.extend(lp.process_next())
    signs = sorted(m.sign for m in out)
    # one anti (for the stale sum=5 forward) and two fresh positives
    assert signs == [-1, 1, 1]
    assert any(m.sign == -1 and m.uid == sent.uid for m in out)


def test_idle_flush_cancels_orphaned_suspects():
    """If the originating event itself is annihilated, its suspect can
    never be regenerated and must be cancelled when the LP goes idle."""
    engine = TimeWarpEngine(
        latency=ConstantLatency(1.0), service_time=0.5, cancellation="lazy"
    )
    log = {"count": 0}

    def source_handler(state, vt, payload):
        state["n"] += 1
        return [Emission("sink", 3.0, payload)]

    def sink_handler(state, vt, payload):
        state["got"].append((vt, payload))
        return []

    engine.add_lp("source", source_handler, {"n": 0})
    engine.add_lp("sink", sink_handler, {"got": []})
    # a positive and, later, its anti (simulating an upstream cancellation)
    seed = TWMessage("env", "source", 0.0, 10.0, "work")
    engine._transmit(seed)
    engine.sim.schedule(5.0, lambda: engine._transmit(seed.anti()))
    engine.run(max_events=100_000)
    # the sink must end empty: the forwarded message was cancelled too
    assert engine.lps["sink"].state["got"] == []
    assert engine.lps["source"].state["n"] == 0


@pytest.mark.parametrize("cancellation", ["aggressive", "lazy"])
def test_both_modes_match_oracle_on_reordered_ring(cancellation):
    from repro.bench import build_tw_ring

    engine = TimeWarpEngine(
        latency=SequenceLatency([30.0] + [1.0] * 200),
        service_time=0.3,
        cancellation=cancellation,
    )
    build_tw_ring(engine, n_lps=3, hops=12)
    engine.inject("lp1", 0.5, 4)            # second seed creates interleaving
    engine.run(max_events=200_000)
    oracle = SequentialOracle()
    build_tw_ring(oracle, n_lps=3, hops=12)
    oracle.inject("lp1", 0.5, 4)
    oracle.run()
    assert engine.final_states() == oracle.final_states()


def test_lazy_never_sends_more_antis_than_aggressive():
    from repro.bench import build_tw_ring

    def run(mode):
        engine = TimeWarpEngine(
            latency=SequenceLatency([25.0] + [1.0] * 300),
            service_time=0.3,
            cancellation=mode,
        )
        build_tw_ring(engine, n_lps=3, hops=15)
        engine.inject("lp1", 0.5, 5)
        engine.run(max_events=300_000)
        return engine.stats()["antis_sent"]

    assert run("lazy") <= run("aggressive")
