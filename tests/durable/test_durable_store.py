"""The file layer of durable runs: codec, envelopes, WALs, corruption.

Everything here is below the runtime — pure bytes-on-disk contracts:
values survive the codec (including ``TIMED_OUT``'s identity), envelopes
verify or fail loudly, WAL recovery honors batch markers, retention
prunes, and the chaos corruption helpers damage exactly what recovery
would read.
"""

import os

import pytest

from repro.durable import (
    DurableError,
    DurableStore,
    corrupt_latest_envelope,
    corrupt_wal_tail,
    decode_value,
    encode_value,
)
from repro.sim.process import TIMED_OUT


# ------------------------------------------------------------------- codec
class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -7, 3.25, "", "hop", 10**30],
    )
    def test_scalars_roundtrip_as_plain_json(self, value):
        encoded = encode_value(value)
        assert encoded == value            # no wrapping for JSON scalars
        assert decode_value(encoded) == value
        assert type(decode_value(encoded)) is type(value)

    @pytest.mark.parametrize(
        "value",
        [(1, 2), ["a", ("b",)], {"k": frozenset({"x"})}, b"\x00bytes"],
    )
    def test_structures_roundtrip_via_pickle_wrapper(self, value):
        encoded = encode_value(value)
        assert isinstance(encoded, dict) and "~pkl" in encoded
        assert decode_value(encoded) == value

    def test_timed_out_keeps_identity(self):
        """recv timeouts are compared with ``is TIMED_OUT`` — the sentinel
        must come back as the module singleton, not a copy."""
        assert decode_value(encode_value(TIMED_OUT)) is TIMED_OUT
        assert decode_value(encode_value((TIMED_OUT, 1)))[0] is TIMED_OUT

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True


# --------------------------------------------------------------- envelopes
class TestEnvelopes:
    def test_write_load_roundtrip(self, tmp_path):
        store = DurableStore(str(tmp_path))
        doc = {"v": 1, "gen": 1, "prev": "", "data": [1, 2, 3]}
        seal = store.write_envelope(1, doc)
        loaded, loaded_seal = store.load_envelope(1)
        assert loaded == doc
        assert loaded_seal == seal

    def test_generation_chain_carries_prev_seal(self, tmp_path):
        store = DurableStore(str(tmp_path), retain=5)
        seal1 = store.write_envelope(1, {"gen": 1, "prev": ""})
        store.write_envelope(2, {"gen": 2, "prev": seal1})
        doc2, _ = store.load_envelope(2)
        assert doc2["prev"] == seal1

    def test_tampered_body_is_rejected(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.write_envelope(1, {"gen": 1, "payload": "x" * 200})
        assert corrupt_latest_envelope(str(tmp_path)) is not None
        with pytest.raises(DurableError, match="CRC|seal"):
            store.load_envelope(1)

    def test_wrong_key_fails_the_seal(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.write_envelope(1, {"gen": 1})
        # Re-key the directory: the CRC still matches, the seal must not.
        with open(tmp_path / "key.bin", "wb") as fh:
            fh.write(b"k" * 32)
        fresh = DurableStore(str(tmp_path))
        with pytest.raises(DurableError, match="seal"):
            fresh.load_envelope(1)

    def test_missing_envelope_raises(self, tmp_path):
        store = DurableStore(str(tmp_path))
        with pytest.raises(DurableError, match="unreadable"):
            store.load_envelope(9)

    def test_retention_prunes_old_generations(self, tmp_path):
        store = DurableStore(str(tmp_path), retain=2)
        for gen in range(1, 6):
            store.write_envelope(gen, {"gen": gen})
        assert store.envelope_gens() == [4, 5]
        # WALs below the retention floor go with their envelopes.
        assert min(store.wal_gens()) >= 4


# --------------------------------------------------------------------- WAL
class TestWal:
    def test_marked_batches_replay_cleanly(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.open_wal(0)
        store.append_record({"i": 1})
        store.append_record({"i": 2})
        store.write_marker(0)
        store.append_record({"i": 3})
        store.write_marker(1)
        records, discarded, clean = store.scan_wal(0)
        assert [r["i"] for r in records] == [1, 2, 3]
        assert discarded == 0 and clean

    def test_unmarked_tail_is_discarded_not_applied(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.open_wal(0)
        store.append_record({"i": 1})
        store.write_marker(0)
        store.append_record({"i": 2})   # never marked: crash before fsync
        store.close()
        records, discarded, clean = store.scan_wal(0)
        assert [r["i"] for r in records] == [1]
        assert discarded == 1 and not clean

    def test_corrupt_line_truncates_from_there(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.open_wal(0)
        store.append_record({"i": 1})
        store.write_marker(0)
        store.append_record({"i": 2})
        store.write_marker(1)
        store.close()
        assert corrupt_wal_tail(str(tmp_path)) is not None
        records, discarded, clean = store.scan_wal(0)
        # The damaged final marker voids its whole batch, the first
        # batch survives.
        assert [r["i"] for r in records] == [1]
        assert discarded == 1 and not clean

    def test_tampered_marker_hmac_voids_the_batch(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.open_wal(0)
        store.append_record({"i": 1})
        store.write_marker(0)
        store.close()
        path = tmp_path / "wal-00000000.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        # Forge the marker's MAC but fix up its CRC so only the HMAC check
        # can catch it.
        import json

        from repro.durable.codec import crc_hex

        body, _ = lines[1].rsplit(b" ", 1)
        doc = json.loads(body)
        doc["h"] = "0" * 64
        forged = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()
        lines[1] = forged + b" " + crc_hex(forged).encode() + b"\n"
        path.write_bytes(b"".join(lines))
        records, discarded, clean = store.scan_wal(0)
        assert records == [] and discarded == 1 and not clean

    def test_missing_wal_is_empty_and_clean(self, tmp_path):
        store = DurableStore(str(tmp_path))
        assert store.scan_wal(3) == ([], 0, True)


# ------------------------------------------------- chaos corruption helpers
class TestCorruptionHelpers:
    def test_nothing_to_corrupt_returns_none(self, tmp_path):
        DurableStore(str(tmp_path))           # just the key file
        assert corrupt_latest_envelope(str(tmp_path)) is None
        assert corrupt_wal_tail(str(tmp_path)) is None

    def test_wal_helper_only_touches_the_replay_path(self, tmp_path):
        """WALs already consolidated into a newer envelope are invisible
        to recovery — damaging them must not count as coverage."""
        store = DurableStore(str(tmp_path), retain=5)
        store.open_wal(0)
        store.append_record({"i": 1})
        store.write_marker(0)
        store.write_envelope(1, {"gen": 1})   # wal-0 now pre-envelope
        store.close()
        assert corrupt_wal_tail(str(tmp_path)) is None
        # ... until the replay-path WAL has content of its own.
        store.open_wal(1)
        store.append_record({"i": 2})
        store.write_marker(0)
        store.close()
        path = corrupt_wal_tail(str(tmp_path))
        assert path is not None and path.endswith("wal-00000001.jsonl")

    def test_key_file_is_created_once_and_private(self, tmp_path):
        store = DurableStore(str(tmp_path))
        again = DurableStore(str(tmp_path))
        assert store.key == again.key
        mode = os.stat(tmp_path / "key.bin").st_mode & 0o777
        assert mode == 0o600
