"""Crash–restart recovery end to end: kill a durable run, resume it, and
require the committed state to reconverge byte-identically with an
uninterrupted twin (the durable extension of the paper's twin-equality
property — a crash is just more network/scheduling weather, and Theorem
6.1 says the finalized prefix can never roll back, so it must survive).

Also covers: recording passivity (durable tracing changes no trace
byte), the commit_point × fossil_collect restart edges (base-aware
snapshots, EffectLog ``base`` accounting across the roundtrip),
corruption detection with one-generation fallback, and the constructor
guardrails.
"""

import os

import pytest

from repro.bench.workloads import build_durable_counter
from repro.chaos import (
    KILL_RESUME_WORKLOADS,
    run_kill_resume_case,
    run_kill_resume_matrix,
)
from repro.durable import DurableError
from repro.core.errors import HopeError
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, EventLimitExceeded, Tracer


def _durable_kwargs(run_dir, **extra):
    kwargs = dict(
        seed=1,
        latency=ConstantLatency(1.0),
        fossil_collect=True,
        fossil_interval=4,
        durable_dir=str(run_dir),
        durable_opts={"snapshot_every": 1},
    )
    kwargs.update(extra)
    return kwargs


def _resume(run_dir, build=build_durable_counter, **extra):
    kwargs = _durable_kwargs(run_dir, **extra)
    kwargs.pop("durable_dir")
    opts = kwargs.pop("durable_opts")
    return HopeSystem.resume(str(run_dir), build, durable_opts=opts, **kwargs)


def _committed(system):
    return {
        name: tuple(sorted(repr(v) for v in system.committed_outputs(name)))
        for name in system.procs
    }


# ------------------------------------------------------- recording passivity
class TestRecordingIsPassive:
    def test_durable_trace_is_byte_identical_to_plain_fossil_run(self, tmp_path):
        """The recorder only *observes* the committed frontier: same seed,
        same workload, same trace fingerprint with recording on or off."""
        def run(durable_dir):
            tracer = Tracer()
            kwargs = dict(
                seed=3, latency=ConstantLatency(1.0), trace=tracer,
                fossil_collect=True, fossil_interval=4,
            )
            if durable_dir is not None:
                kwargs.update(
                    durable_dir=str(durable_dir),
                    durable_opts={"snapshot_every": 1},
                )
            system = HopeSystem(**kwargs)
            build_durable_counter(system)
            final = system.run()
            return tracer.fingerprint(), final, _committed(system)

        plain = run(None)
        durable = run(tmp_path)
        assert durable == plain


# ------------------------------------------------------------- clean restart
class TestCleanRestart:
    def test_completed_run_resumes_to_same_state(self, tmp_path):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        system.run()
        want = _committed(system)
        resumed = _resume(tmp_path)
        resumed.run()
        assert _committed(resumed) == want
        stats = resumed.stats()["durable"]
        assert stats["resumed"] is True
        assert stats["resumed_generation"] >= 1

    def test_resume_on_empty_dir_starts_fresh(self, tmp_path):
        system = _resume(tmp_path)
        assert system.stats()["durable"]["resumed"] is False
        system.run()
        # ... and the fresh run is just a normal durable run.
        assert system.stats()["durable"]["snapshots_written"] >= 1


# ---------------------------------------------------------- kill/resume core
class TestKillResume:
    @pytest.mark.parametrize("workload", ["mesh", "counter"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("frac", [0.25, 0.55, 0.85])
    def test_resumed_state_matches_uninterrupted_twin(self, workload, seed, frac):
        result = run_kill_resume_case(workload, seed, frac, in_process=True)
        assert result.ok, result.failure

    @pytest.mark.parametrize("frac", [0.55, 0.85])
    def test_ring_kill_points(self, frac):
        result = run_kill_resume_case("ring", 5, frac, in_process=True)
        assert result.ok, result.failure

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    @pytest.mark.parametrize("workload,frac", [("counter", 0.55), ("mesh", 0.85)])
    def test_real_process_death(self, workload, frac):
        """The fork path: the child dies by ``os._exit`` with no cleanup —
        buffered-but-unflushed WAL bytes really are lost."""
        result = run_kill_resume_case(workload, 2, frac)
        assert result.ok, result.failure

    def test_matrix_helper_reports_counts(self):
        report = run_kill_resume_matrix(
            workloads=["counter"], seeds=(1,), fracs=(0.55,),
            corruption_cases=False, in_process=True,
        )
        assert report["total"] == 1
        assert report["passed"] == 1
        assert report["failures"] == []

    def test_all_kill_resume_workloads_registered(self):
        assert set(KILL_RESUME_WORKLOADS) >= {"mesh", "ring", "counter"}


# ---------------------------------------------------- corruption + fallback
class TestCorruptionFallback:
    def test_envelope_corruption_is_detected_and_survived(self):
        result = run_kill_resume_case(
            "counter", 1, 0.85, corrupt="envelope", in_process=True
        )
        assert result.ok, result.failure
        assert result.corrupted_path is not None
        assert result.durable_stats["envelopes_rejected"] >= 1

    def test_wal_corruption_is_detected_and_survived(self):
        result = run_kill_resume_case(
            "counter", 1, 0.85, corrupt="wal", in_process=True
        )
        assert result.ok, result.failure
        assert result.corrupted_path is not None
        assert result.durable_stats["wal_records_discarded"] >= 1

    def test_bad_corrupt_mode_raises(self):
        with pytest.raises(ValueError, match="envelope.*wal"):
            run_kill_resume_case("counter", 1, 0.85, corrupt="bitrot",
                                 in_process=True)


# -------------------------------------- commit_point × fossil restart edges
class TestFossilRestartEdges:
    def _kill_and_resume(self, tmp_path, kill_events):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        with pytest.raises(EventLimitExceeded):
            system.run(max_events=kill_events)
        del system          # abandoned mid-run: the in-process "crash"
        return _resume(tmp_path)

    def test_resume_lands_on_base_aware_snapshot(self, tmp_path):
        """A late kill resumes from a snapshot whose logs were already
        fossil-trimmed: some process restarts with ``log.base > 0`` and a
        rebase point, not from program entry."""
        resumed = self._kill_and_resume(tmp_path, kill_events=29)
        assert resumed.stats()["durable"]["resumed"] is True
        bases = {name: proc.log.base for name, proc in resumed.procs.items()}
        assert any(base > 0 for base in bases.values()), bases
        rebased = [p for p in resumed.procs.values() if p.rebase is not None]
        assert rebased, "expected at least one restored rebase point"

    def test_effectlog_base_accounting_survives_roundtrip(self, tmp_path):
        """The absolute-index invariant ``cursor == base + len(entries)``
        must hold for every restored log before the run continues, and
        the continued run must still converge."""
        resumed = self._kill_and_resume(tmp_path, kill_events=29)
        for name, proc in resumed.procs.items():
            log = proc.log
            # Restored logs rewind to the absolute base: the committed
            # entries sit *ahead* of the cursor, queued for replay.
            assert log.cursor == log.base, name
        resumed.run()
        for name, proc in resumed.procs.items():
            log = proc.log
            # ... and once live, the absolute-index invariant is back.
            assert log.cursor == log.base + len(log.entries), name
        # Converged: same committed state as a never-interrupted run.
        twin = HopeSystem(seed=1, latency=ConstantLatency(1.0),
                          fossil_collect=True, fossil_interval=4)
        build_durable_counter(twin)
        twin.run()
        assert _committed(resumed) == _committed(twin)

    def test_mid_fossil_cycle_snapshot_counts_consistent(self, tmp_path):
        resumed = self._kill_and_resume(tmp_path, kill_events=29)
        stats = resumed.stats()["durable"]
        assert stats["resumed"] is True
        # The consolidation snapshot at restore is a *new* generation on
        # top of the one recovery loaded.
        assert stats["generation"] > stats["resumed_generation"]


# -------------------------------------------------------------- guardrails
class TestGuardrails:
    def test_durable_needs_a_directory(self):
        with pytest.raises(HopeError, match="durable_dir"):
            HopeSystem(seed=1, latency=ConstantLatency(1.0), durable=True)

    def test_no_reliable_delivery(self, tmp_path):
        with pytest.raises(HopeError, match="reliable"):
            HopeSystem(seed=1, latency=ConstantLatency(1.0),
                       reliable=True, durable_dir=str(tmp_path))

    def test_no_failure_detector(self, tmp_path):
        with pytest.raises(HopeError, match="failure detector"):
            HopeSystem(seed=1, latency=ConstantLatency(1.0),
                       failure_detector=True, durable_dir=str(tmp_path))

    def test_registry_mode_only(self, tmp_path):
        with pytest.raises(HopeError, match="registry"):
            HopeSystem(seed=1, latency=ConstantLatency(1.0),
                       aid_mode="aid_task", durable_dir=str(tmp_path))

    def test_crash_process_refused(self, tmp_path):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        with pytest.raises(HopeError, match="kill/resume"):
            system.crash_process("judge")

    def test_dynamic_spawn_refused(self, tmp_path):
        def parent(p):
            yield p.spawn("kid", child)
            yield p.emit("spawned")

        def child(p):
            yield p.emit("hi")

        system = HopeSystem(**_durable_kwargs(tmp_path))
        system.spawn("parent", parent)
        with pytest.raises(HopeError, match="spawn"):
            system.run()

    def test_fresh_init_on_used_dir_refused(self, tmp_path):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        system.run()
        with pytest.raises(DurableError, match="resume"):
            HopeSystem(**_durable_kwargs(tmp_path))

    def test_seed_mismatch_refused_at_resume(self, tmp_path):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        system.run()
        with pytest.raises(DurableError, match="seed"):
            _resume(tmp_path, seed=99)

    def test_missing_process_at_resume_names_it(self, tmp_path):
        system = HopeSystem(**_durable_kwargs(tmp_path))
        build_durable_counter(system)
        system.run()

        def wrong_build(sys_):
            build_durable_counter(sys_, workers=1)   # c1 missing

        with pytest.raises(DurableError, match="c1"):
            _resume(tmp_path, build=wrong_build)

    def test_unknown_durable_opt_rejected(self, tmp_path):
        with pytest.raises((DurableError, TypeError, ValueError),
                           match="snapshot_evry|unknown"):
            HopeSystem(
                seed=1, latency=ConstantLatency(1.0),
                durable_dir=str(tmp_path),
                durable_opts={"snapshot_evry": 2},
            )
