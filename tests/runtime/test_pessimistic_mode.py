"""speculation=False: every guess blocks until resolution.

The same program text runs pessimistically — the universal ablation: no
intervals, no rollbacks, no withdrawn outputs, and the guess returns the
*actual* truth of the assumption.
"""

import pytest

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    oneway_gateway,
    optimistic_worker,
    print_server,
    worrywart,
)
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, LinkLatency


def _program(decision):
    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.emit("optimistic-branch")
        else:
            yield p.emit("pessimistic-branch")
        yield p.emit((yield p.now()))

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        if decision == "affirm":
            yield p.affirm(msg.payload)
        else:
            yield p.deny(msg.payload)

    return worker, verifier


@pytest.mark.parametrize(
    "decision,branch", [("affirm", "optimistic-branch"), ("deny", "pessimistic-branch")]
)
def test_blocking_guess_returns_actual_truth(decision, branch):
    system = HopeSystem(speculation=False)
    worker, verifier = _program(decision)
    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    outputs = system.committed_outputs("worker")
    assert outputs[0] == branch
    assert outputs[1] >= 5.0             # really waited for the verdict
    assert system.stats()["rollbacks"] == 0
    assert system.stats()["intervals_discarded"] == 0


def test_pessimistic_mode_never_creates_intervals():
    system = HopeSystem(speculation=False)
    worker, verifier = _program("affirm")
    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    for record in system.machine.processes.values():
        assert record.intervals == []
    assert system.network.tag_count_total == 0


def test_speculative_and_pessimistic_commit_identically():
    for decision in ("affirm", "deny"):
        ledgers = {}
        for speculation in (True, False):
            system = HopeSystem(speculation=speculation)
            worker, verifier = _program(decision)
            system.spawn("worker", worker)
            system.spawn("verifier", verifier)
            system.run()
            ledgers[speculation] = system.committed_outputs("worker")[0]
        assert ledgers[True] == ledgers[False]


def test_speculation_beats_blocking_on_makespan():
    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        yield p.guess(x)
        yield p.compute(4.0)           # overlaps verification when speculative

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        yield p.affirm(msg.payload)

    def build(speculation):
        system = HopeSystem(speculation=speculation)
        system.spawn("worker", worker)
        system.spawn("verifier", verifier)
        return system.run()

    assert build(True) == 5.0          # compute hidden inside the wait
    assert build(False) == 9.0         # wait, then compute


def test_call_streaming_under_blocking_mode():
    """Figure 2's program, executed without speculation, still prints the
    serial ledger — it just pays the waits (a Figure 1.5, as it were)."""
    config = CallStreamConfig(report_lines=(30, 70, 20), page_size=60)
    links = LinkLatency(default=ConstantLatency(config.latency))
    links.set_link("worker", "worrywart-0", ConstantLatency(config.wart_latency))
    links.set_link("worrywart-0", "worker", ConstantLatency(config.wart_latency))
    links.set_link("server_oneway", "server", ConstantLatency(0.0))
    links.set_link("server", "server_oneway", ConstantLatency(0.0))
    system = HopeSystem(latency=links, speculation=False)
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    system.spawn("server_oneway", oneway_gateway)
    system.spawn("worrywart-0", worrywart, config, config.n_reports)
    system.spawn("worker", optimistic_worker, config)
    system.run(max_events=2_000_000)
    assert system.committed_outputs("server") == expected_output(config)
    assert system.stats()["rollbacks"] == 0
