"""Fossil collection at the runtime level: a pure optimization.

The property under test (ISSUE satellite): a fossil-collected run and an
uncollected run of the *same* program, seed, and latency produce
byte-identical traces and identical Theorem 5.2/6.1 outcomes — the same
AIDs affirmed/denied, the same rollbacks, the same committed outputs —
on randomized guess/affirm/deny schedules.  Collection may only change
memory accounting (shorter histories, retired AIDs, dropped log
prefixes), never behaviour.
"""

import pytest

from repro.runtime.engine import HopeSystem
from repro.sim import ConstantLatency, Tracer


# ---------------------------------------------------------------- workload
def worker(p, rounds, resume=None):
    """Steady-state loop: guess each round, commit-point after it."""
    state = resume if resume is not None else {"round": 0, "acc": 0}
    while state["round"] < rounds:
        a = yield p.aid_init(f"r{state['round']}")
        yield p.send("judge", a)
        if (yield p.guess(a)):
            yield p.compute(1.0)        # optimistic path
            state["acc"] += 3
        else:
            yield p.compute(2.0)        # pessimistic path after denial
            state["acc"] -= 1
        yield p.emit(("round", state["round"], state["acc"]))
        state["round"] += 1
        yield p.commit_point(state)
    return state["acc"]


def judge(p, rounds, deny_rate, resume=None):
    """Randomly affirms or denies each round's assumption (seeded).

    Commit-points after every verdict: without that, the judge's own
    effect log would keep each round's ReceivedMessage — and with it the
    AidHandle payload — alive forever, pinning every AID against
    retirement (the weak-handle pin sees the log entry as a user
    reference, exactly as designed).
    """
    state = resume if resume is not None else {"seen": 0}
    while state["seen"] < rounds:
        msg = yield p.recv()
        yield p.compute(0.3)
        if (yield p.random()) < deny_rate:
            yield p.deny(msg.payload)
        else:
            yield p.affirm(msg.payload)
        state["seen"] += 1
        yield p.commit_point(state)
    return "judged"


def _run(seed, fossil, fast_rollback, rounds=40, deny_rate=0.3):
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        fossil_collect=fossil,
        fossil_interval=8,
        fast_rollback=fast_rollback,
    )
    system.spawn("judge", judge, rounds, deny_rate)
    system.spawn("worker", worker, rounds)
    final = system.run()
    system.machine.check_invariants()
    return system, tracer, final


_OUTCOME_KEYS = (
    "guesses",
    "rollbacks",
    "aids_affirmed",
    "aids_denied",
    "aids_pending",
    "messages_sent",
)


# ----------------------------------------------------------------- property
class TestCollectedEqualsUncollected:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    @pytest.mark.parametrize("fast_rollback", [False, True])
    def test_identical_traces_and_outcomes(self, seed, fast_rollback):
        base, base_tr, t_base = _run(seed, fossil=False, fast_rollback=fast_rollback)
        coll, coll_tr, t_coll = _run(seed, fossil=True, fast_rollback=fast_rollback)
        # byte-identical traces: collection draws no randomness and
        # schedules nothing
        assert base_tr.fingerprint() == coll_tr.fingerprint()
        assert t_base == t_coll
        assert base.result_of("worker") == coll.result_of("worker")
        assert base.result_of("judge") == coll.result_of("judge")
        assert base.committed_outputs("worker") == coll.committed_outputs("worker")
        # Theorem 5.2/6.1 outcomes: same resolutions, same rollbacks
        s_base, s_coll = base.stats(), coll.stats()
        for key in _OUTCOME_KEYS:
            assert s_base[key] == s_coll[key], key
        assert s_base["aids_denied"] > 0       # the schedule really denied
        assert s_coll["fossil_collections"] >= 1

    def test_collected_run_actually_reclaims(self):
        base, _, _ = _run(seed=3, fossil=False, fast_rollback=False)
        coll, _, _ = _run(seed=3, fossil=True, fast_rollback=False)
        s = coll.stats()
        assert s["fossil_history_dropped"] > 0
        assert s["fossil_aids_retired"] > 0
        assert s["fossil_log_dropped"] > 0
        # bounded tables: strictly smaller than the uncollected run's
        assert len(coll.machine.process("worker").history) < len(
            base.machine.process("worker").history
        )
        assert len(coll.machine.aids) < len(base.machine.aids)
        assert len(coll.procs["worker"].log.entries) < len(
            base.procs["worker"].log.entries
        )
        assert coll.procs["worker"].log.base > 0

    def test_finalized_intervals_stay_definite(self):
        """Theorem 6.1 end-to-end: after a collected run completes, no
        retained interval is speculative and the worker is definite."""
        coll, _, _ = _run(seed=5, fossil=True, fast_rollback=False)
        assert coll.machine.is_definite("worker")
        for record in coll.machine.processes.values():
            assert not record.speculative


# ------------------------------------------------------------- commit_point
class TestCommitPointSemantics:
    def test_restart_resumes_from_rebase_state(self):
        """Once the frontier passes a commit point, a denial replays from
        the rebase snapshot instead of program entry."""
        coll, _, _ = _run(seed=2, fossil=True, fast_rollback=False, rounds=60)
        base, _, _ = _run(seed=2, fossil=False, fast_rollback=False, rounds=60)
        s_coll, s_base = coll.stats(), base.stats()
        assert s_coll["rollbacks"] == s_base["rollbacks"] > 0
        # identical results from far fewer replayed effects
        assert coll.result_of("worker") == base.result_of("worker")
        assert s_coll["replayed_effects"] < s_base["replayed_effects"]

    def test_commit_point_is_noop_without_fossil_collect(self):
        base, _, _ = _run(seed=1, fossil=False, fast_rollback=False, rounds=10)
        proc = base.procs["worker"]
        assert proc.rebase is None
        assert proc.rebase_candidates == []
        assert proc.log.base == 0

    def test_crash_clears_rebase_state(self):
        coll, _, _ = _run(seed=1, fossil=True, fast_rollback=False, rounds=40)
        proc = coll.procs["worker"]
        assert proc.rebase is not None
        coll.crash_process("worker")
        assert proc.rebase is None
        assert proc.rebase_candidates == []
        assert proc.log.base == 0 and len(proc.log) == 0

    def test_rebase_state_is_isolated_per_restart(self):
        """Restarts get a deep copy: mutations by one incarnation must
        not leak into the parked rebase snapshot."""
        coll, _, _ = _run(seed=4, fossil=True, fast_rollback=False, rounds=60)
        proc = coll.procs["worker"]
        assert proc.rebase is not None
        snapshot_round = proc.rebase.state["round"]
        # the finished incarnation ran past the snapshot without
        # mutating it
        assert proc.done
        assert proc.result == coll.result_of("worker")
        assert proc.rebase.state["round"] == snapshot_round < 60


# ---------------------------------------------------------------- pinning
class TestHandlePinning:
    def test_held_handle_blocks_retirement(self):
        """A user-reachable AidHandle pins its AID: by-key lookup must
        keep working while anything can still name the key."""
        held = []

        def keeper(p):
            a = yield p.aid_init("kept")
            held.append(a)
            yield p.send("judge", a)
            if (yield p.guess(a)):
                yield p.compute(1.0)
            # churn enough finalizes to trigger collection
            for i in range(20):
                b = yield p.aid_init(f"churn{i}")
                yield p.send("judge", b)
                if (yield p.guess(b)):
                    yield p.compute(0.1)
                yield p.commit_point(i)
            return "ok"

        def affirm_all(p):
            for _ in range(21):
                msg = yield p.recv()
                yield p.affirm(msg.payload)
            return "done"

        system = HopeSystem(
            latency=ConstantLatency(1.0), fossil_collect=True, fossil_interval=4
        )
        system.spawn("judge", affirm_all)
        system.spawn("keeper", keeper)
        system.run()
        assert system.stats()["fossil_collections"] >= 1
        # the held handle's AID survived every pass
        assert system.machine.aid(held[0].key).affirmed
        system.machine.check_invariants()
