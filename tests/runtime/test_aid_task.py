"""Tests for the distributed AID-task control plane (§7)."""

import pytest

from repro.core import AidStatus, HopeError
from repro.runtime import HopeSystem


def _basic_program(decision):
    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.emit("optimistic")
            yield p.compute(5.0)
        else:
            yield p.emit("pessimistic")
        yield p.emit("after")

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        if decision == "affirm":
            yield p.affirm(msg.payload)
        else:
            yield p.deny(msg.payload)

    return worker, verifier


def run_mode(decision, aid_mode, control_latency=3.0):
    system = HopeSystem(aid_mode=aid_mode, control_latency=control_latency)
    worker, verifier = _basic_program(decision)
    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    makespan = system.run()
    return system, makespan


def test_unknown_mode_rejected():
    with pytest.raises(HopeError):
        HopeSystem(aid_mode="quantum")


def test_negative_control_latency_rejected():
    with pytest.raises(ValueError):
        HopeSystem(aid_mode="aid_task", control_latency=-1.0)


@pytest.mark.parametrize("decision", ["affirm", "deny"])
def test_modes_agree_on_committed_outputs(decision):
    reg_sys, _ = run_mode(decision, "registry")
    task_sys, _ = run_mode(decision, "aid_task")
    assert reg_sys.committed_outputs("worker") == task_sys.committed_outputs("worker")


def test_task_mode_delays_resolution():
    reg_sys, reg_time = run_mode("deny", "registry")
    task_sys, task_time = run_mode("deny", "aid_task", control_latency=4.0)
    # deny issued at t=2; applied at t=6; NOTIFY costs 4 more before restart
    assert task_time > reg_time
    x_reg = [a for a in reg_sys.machine.aids.values()][0]
    x_task = [a for a in task_sys.machine.aids.values()][0]
    assert x_reg.status is AidStatus.DENIED
    assert x_task.status is AidStatus.DENIED


def test_task_mode_counts_control_traffic():
    system, _ = run_mode("affirm", "aid_task")
    stats = system.stats()
    assert stats["aid_mode"] == "aid_task"
    # one DEPEND (guess) + one AFFIRM control message at minimum
    assert stats["control_messages"] >= 2
    registry, _ = run_mode("affirm", "registry")
    assert registry.stats()["control_messages"] == 0


def test_caller_never_blocks_on_resolution():
    """The §7 property: issuing a resolution costs the caller no time."""
    times = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        t0 = yield p.now()
        yield p.affirm(x)
        t1 = yield p.now()
        times.append((t0, t1))
        yield p.compute(1.0)

    system = HopeSystem(aid_mode="aid_task", control_latency=50.0)
    system.spawn("worker", worker)
    system.run()
    [(t0, t1)] = times
    assert t0 == t1                        # the affirm did not wait


def test_victim_keeps_speculating_until_notified():
    """With a slow control plane the victim piles up wasted work that the
    registry plane would have cut short."""
    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            for _ in range(20):
                yield p.compute(1.0)       # keeps going while DENY travels

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.deny(msg.payload)

    def run(mode, latency):
        system = HopeSystem(aid_mode=mode, control_latency=latency)
        system.spawn("worker", worker)
        system.spawn("verifier", verifier)
        system.run()
        return system.stats()["wasted_time"]

    assert run("aid_task", 10.0) > run("registry", 0.0)


def test_call_streaming_equivalent_under_task_mode():
    """The Figure 2 pipeline must commit the same ledger on both planes."""
    from repro.apps.call_streaming import (
        CallStreamConfig,
        expected_output,
        print_server,
        oneway_gateway,
        worrywart,
        optimistic_worker,
        _build_system,
    )
    import repro.apps.call_streaming as cs

    config = CallStreamConfig(report_lines=(30, 70, 20), page_size=60)
    outputs = {}
    for mode in ("registry", "aid_task"):
        system = HopeSystem(
            latency=_build_system(config, 0, None).network.latency,
            aid_mode=mode,
            control_latency=0.5,
        )
        system.spawn("server", print_server, config.page_size, config.server_service_time)
        system.spawn("server_oneway", oneway_gateway)
        system.spawn("worrywart-0", worrywart, config, config.n_reports)
        system.spawn("worker", optimistic_worker, config)
        system.run(max_events=2_000_000)
        outputs[mode] = system.committed_outputs("server")
    assert outputs["registry"] == outputs["aid_task"]
    assert outputs["registry"] == expected_output(config)
