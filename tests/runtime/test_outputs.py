"""Output-commit discipline: p.emit under speculation, rollback, replay."""

from repro.runtime import HopeSystem


def _verify(decision):
    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        if decision == "affirm":
            yield p.affirm(msg.payload)
        else:
            yield p.deny(msg.payload)

    return verifier


def _worker(p):
    yield p.emit("definite-before")
    x = yield p.aid_init("x")
    yield p.send("verifier", x)
    if (yield p.guess(x)):
        yield p.emit("speculative")
        yield p.compute(5.0)
    else:
        yield p.emit("pessimistic")
    yield p.emit("after")


def test_emits_withdrawn_on_rollback():
    system = HopeSystem()
    system.spawn("worker", _worker)
    system.spawn("verifier", _verify("deny"))
    system.run()
    assert system.outputs("worker") == ["definite-before", "pessimistic", "after"]
    assert system.committed_outputs("worker") == system.outputs("worker")


def test_emits_committed_on_affirm():
    system = HopeSystem()
    system.spawn("worker", _worker)
    system.spawn("verifier", _verify("affirm"))
    system.run()
    assert system.outputs("worker") == ["definite-before", "speculative", "after"]
    assert system.committed_outputs("worker") == system.outputs("worker")


def test_speculative_emit_not_committed_while_pending():
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.emit("maybe")
        yield p.compute(1.0)

    system.spawn("worker", worker)
    system.run()
    assert system.outputs("worker") == ["maybe"]
    assert system.committed_outputs("worker") == []


def test_replay_does_not_duplicate_emits():
    system = HopeSystem()

    def worker(p):
        yield p.emit("pre")                  # in the replayed prefix
        x = yield p.aid_init("x")
        y = yield p.aid_init("y")
        yield p.send("judge", (x, y))
        yield p.guess(x)
        yield p.guess(y)
        yield p.compute(1.0)
        yield p.emit("tail")

    def judge(p):
        msg = yield p.recv()
        x, y = msg.payload
        yield p.compute(2.0)
        yield p.deny(y)
        yield p.compute(2.0)
        yield p.affirm(x)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run()
    assert system.outputs("worker") == ["pre", "tail"]
    assert system.committed_outputs("worker") == ["pre", "tail"]
