"""Tests for reliable delivery and the heartbeat failure detector."""

import pytest

from repro.runtime import (
    DetectorConfig,
    HopeSystem,
    ReliableConfig,
    TIMED_OUT,
)
from repro.sim import ConstantLatency, FaultPlan, LinkFaults, Partition, Tracer


def ping_system(n=5, drop=0.0, seed=1, **kwargs):
    if drop > 0:
        kwargs["faults"] = FaultPlan(default=LinkFaults(drop=drop))
    system = HopeSystem(seed=seed, latency=ConstantLatency(1.0), **kwargs)

    def sender(p):
        for i in range(n):
            yield p.send("rx", i)
            yield p.compute(1.0)
        return n

    def receiver(p):
        got = []
        for _ in range(n):
            msg = yield p.recv()
            got.append(msg.payload)
            yield p.emit(msg.payload)
        return got

    system.spawn("tx", sender)
    system.spawn("rx", receiver)
    return system


# ---------------------------------------------------------------- config
def test_reliable_config_validation():
    with pytest.raises(ValueError):
        ReliableConfig(ack_timeout=0)
    with pytest.raises(ValueError):
        ReliableConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ReliableConfig(ack_timeout=10.0, max_backoff=5.0)
    with pytest.raises(ValueError):
        ReliableConfig(max_attempts=0)


def test_detector_config_validation():
    with pytest.raises(ValueError):
        DetectorConfig(interval=0)
    with pytest.raises(ValueError):
        DetectorConfig(interval=5.0, timeout=5.5, latency=1.0)


# ---------------------------------------------------------------- delivery
def test_retries_bridge_a_lossy_link():
    system = ping_system(n=8, drop=0.4, seed=3, reliable=True)
    system.run(max_events=100_000)
    # at-least-once, not ordered: a dropped message's retry can land
    # after later sends
    assert sorted(system.result_of("rx")) == list(range(8))
    stats = system.stats()["reliable"]
    assert stats["retries"] > 0
    assert system.stats()["faults"]["dropped"] > 0


def test_duplicates_are_suppressed():
    plan = FaultPlan(default=LinkFaults(duplicate=1.0))
    system = HopeSystem(
        seed=1, latency=ConstantLatency(1.0), faults=plan, reliable=True
    )

    def sender(p):
        for i in range(4):
            yield p.send("rx", i)

    def receiver(p):
        got = []
        for _ in range(4):
            msg = yield p.recv()
            got.append(msg.payload)
        extra = yield p.recv(timeout=30.0)
        assert extra is TIMED_OUT, "a duplicate leaked through dedup"
        return got

    system.spawn("tx", sender)
    system.spawn("rx", receiver)
    system.run(max_events=100_000)
    assert system.result_of("rx") == [0, 1, 2, 3]
    assert system.stats()["reliable"]["dup_suppressed"] >= 4


def test_exhaustion_abandons_unreachable_peer():
    plan = FaultPlan(default=LinkFaults(drop=1.0))
    system = HopeSystem(
        seed=1,
        latency=ConstantLatency(1.0),
        faults=plan,
        reliable=ReliableConfig(ack_timeout=1.0, max_backoff=1.0, max_attempts=3),
    )

    def sender(p):
        yield p.send("rx", "never-arrives")

    def receiver(p):
        msg = yield p.recv(timeout=100.0)
        return msg is TIMED_OUT

    system.spawn("tx", sender)
    system.spawn("rx", receiver)
    system.run(max_events=100_000)
    assert system.result_of("rx") is True
    stats = system.stats()["reliable"]
    assert stats["exhausted"] == 1
    assert stats["retries"] == 2  # attempts 2 and 3


def test_rollback_retracts_acked_reliable_send():
    """The chaos-harness regression: an ack must not immunize a send
    against its sender's later rollback — the consumed message has to go
    dead or the receiver double-counts the re-executed send."""
    system = HopeSystem(seed=1, latency=ConstantLatency(1.0), reliable=True)

    def guesser(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.send("rx", "speculative")   # acked, then retracted
        else:
            yield p.send("rx", "pessimistic")
        return "done"

    def judge(p):
        msg = yield p.recv()
        yield p.compute(20.0)                   # let the ack land first
        yield p.deny(msg.payload)

    def receiver(p):
        got = []
        while True:
            msg = yield p.recv(timeout=100.0)
            if msg is TIMED_OUT:
                return got
            got.append(msg.payload)

    system.spawn("g", guesser)
    system.spawn("judge", judge)
    system.spawn("rx", receiver)
    system.run(max_events=100_000)
    assert system.result_of("rx") == ["pessimistic"]


def test_sender_crash_stops_retries_without_retracting():
    plan = FaultPlan(default=LinkFaults(drop=1.0))
    system = HopeSystem(
        seed=1,
        latency=ConstantLatency(1.0),
        faults=plan,
        reliable=ReliableConfig(ack_timeout=5.0, max_attempts=10),
    )

    def sender(p):
        yield p.send("rx", "black-holed")
        yield p.compute(100.0)

    def receiver(p):
        msg = yield p.recv(timeout=200.0)
        return msg is TIMED_OUT

    system.spawn("tx", sender)
    system.spawn("rx", receiver)
    system.failures.crash_at("tx", 12.0)
    system.run(max_events=100_000)
    assert system.result_of("rx") is True
    stats = system.stats()["reliable"]
    # the crash closed the pending record: retries stop at the crash time
    assert stats["retries"] <= 2
    assert stats["exhausted"] == 0


# ---------------------------------------------------------------- detector
def detector_scenario(crash_time=None, **kwargs):
    """An owner guesses and goes silent; a dependent consumes the tagged
    message and waits on a second message that never comes unless the
    detector denies the owner's AID."""
    system = HopeSystem(
        seed=1,
        latency=ConstantLatency(1.0),
        failure_detector=DetectorConfig(interval=4.0, timeout=10.0, latency=1.0),
        **kwargs,
    )

    def owner(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.send("dep", "speculative-hint")
        yield p.compute(200.0)                  # never resolves in time
        yield p.affirm(x)
        return "owner-done"

    def dep(p):
        msg = yield p.recv(timeout=50.0)
        if msg is TIMED_OUT:
            # post-deny re-execution: the hint died with the speculation
            yield p.emit("no-hint")
            return "dep-done"
        # consumed the speculative hint; the follow-up never arrives
        yield p.recv(timeout=100.0)
        yield p.emit(("fallback", msg.payload))
        return "dep-done"

    system.spawn("owner", owner)
    system.spawn("dep", dep)
    if crash_time is not None:
        system.failures.crash_at("owner", crash_time)
    return system


def test_detector_denies_crashed_owners_aids():
    system = detector_scenario(crash_time=3.0)
    system.run(max_events=100_000)
    # the dependent rolled back (its consumed message died) and finished
    assert system.result_of("dep") == "dep-done"
    stats = system.stats()["detector"]
    assert stats["suspects"] >= 1
    assert stats["detector_denies"] >= 1
    assert stats["false_suspicions"] == 0
    assert system.stats()["rollbacks"] >= 1
    assert not system.pending_aids()


def test_detector_run_terminates_after_suspicion():
    system = detector_scenario(crash_time=3.0)
    final = system.run(max_events=100_000)
    # the detector's own heartbeat loop must not keep the run alive
    assert final < 500.0


def test_false_suspicion_reconciles_late_affirm():
    """A partitioned (not crashed) owner is suspected and its AID denied;
    when it heals, its affirm of the detector-denied AID must reconcile
    to a no-op instead of raising a resolution conflict."""
    # owner alone vs two peers: owner is the minority, so its heartbeats
    # are the ones the cut swallows
    plan = FaultPlan(
        partitions=(
            Partition(("owner",), ("dep", "bystander"), start=1.0, heal_at=60.0),
        )
    )
    system = HopeSystem(
        seed=1,
        latency=ConstantLatency(1.0),
        faults=plan,
        reliable=True,
        failure_detector=DetectorConfig(interval=4.0, timeout=10.0, latency=1.0),
    )

    def owner(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.compute(80.0)                    # silent past the timeout
        yield p.affirm(x)                        # reconciled: already denied
        return "owner-done"

    def dep(p):
        return "dep-done"
        yield  # pragma: no cover

    def bystander(p):
        yield p.compute(1.0)
        return "bystander-done"

    system.spawn("owner", owner)
    system.spawn("dep", dep)
    system.spawn("bystander", bystander)
    system.run(max_events=100_000)
    assert system.result_of("owner") == "owner-done"
    stats = system.stats()["detector"]
    assert stats["suspects"] >= 1
    assert stats["detector_denies"] >= 1
    assert stats["false_suspicions"] >= 1
    assert stats["reconciled_affirms"] >= 1


# ---------------------------------------------------------------- purity
def test_disabled_layers_leave_traces_byte_identical():
    """faults=None + reliable=False + failure_detector=False must be
    byte-identical to a build that predates the whole resilience layer —
    checked against a plain run's fingerprint."""
    def run(**kwargs):
        tracer = Tracer()
        system = ping_system(n=6, trace=tracer, **kwargs)
        system.run(max_events=100_000)
        return tracer.fingerprint()

    assert run() == run(faults=None, reliable=False, failure_detector=False)


def test_faulty_run_replays_byte_identically():
    def run():
        tracer = Tracer()
        system = ping_system(n=6, drop=0.3, seed=5, reliable=True, trace=tracer)
        system.run(max_events=100_000)
        return tracer.fingerprint()

    assert run() == run()
