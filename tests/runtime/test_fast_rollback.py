"""Checkpointed partial replay (``HopeSystem(fast_rollback=True)``).

The shadow-checkpoint machinery must be a pure optimization: every
observable outcome (results, final time, outputs, machine state) is
identical with it on or off; only the replay accounting differs — a
promoted rollback re-feeds nothing (``replay_skipped_entries`` grows
instead of ``replayed_effects``).
"""

from repro.core.errors import HopeError
from repro.runtime.engine import HopeSystem
from repro.runtime.replay import EffectLog, ShadowCheckpoint


def _worker_judge_system(fast_rollback, prefix=40):
    """Worker does `prefix` pre-guess computes, guesses, gets denied."""

    def worker(p):
        for _ in range(prefix):
            yield p.compute(0.01)
        a = yield p.aid_init("flaky")
        yield p.send("judge", a)
        if (yield p.guess(a)):
            yield p.compute(5.0)
            yield p.emit("speculative")
            return "spec-done"
        yield p.compute(0.5)
        return "denied"

    def judge(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.deny(msg.payload)
        return "judged"

    sys = HopeSystem(fast_rollback=fast_rollback)
    sys.spawn("judge", judge)
    sys.spawn("worker", worker)
    return sys


class TestPromotion:
    def test_observable_behaviour_identical(self):
        base = _worker_judge_system(False)
        fast = _worker_judge_system(True)
        t_base, t_fast = base.run(), fast.run()
        assert t_base == t_fast
        assert base.result_of("worker") == fast.result_of("worker") == "denied"
        assert base.result_of("judge") == fast.result_of("judge")
        assert base.outputs("worker") == fast.outputs("worker") == []
        base.machine.check_invariants()
        fast.machine.check_invariants()

    def test_rollback_skips_the_logged_prefix(self):
        sys = _worker_judge_system(True, prefix=40)
        sys.run()
        stats = sys.stats()
        assert stats["rollbacks"] == 1
        # the restart re-fed nothing: the shadow was promoted instead
        assert stats["replayed_effects"] == 0
        assert stats["replay_skipped_entries"] >= 40
        assert stats["shadow_feeds"] >= 40

    def test_baseline_replays_everything(self):
        sys = _worker_judge_system(False, prefix=40)
        sys.run()
        stats = sys.stats()
        assert stats["rollbacks"] == 1
        assert stats["replayed_effects"] >= 40
        assert stats["replay_skipped_entries"] == 0
        assert stats["shadow_feeds"] == 0

    def test_promoted_process_continues_correctly(self):
        """Post-rollback work (the denied branch) runs to completion on
        the promoted incarnation, including fresh log appends."""
        sys = _worker_judge_system(True)
        sys.run()
        proc = sys.procs["worker"]
        assert proc.done and proc.result == "denied"
        # the log holds the preserved prefix plus the denied-branch tail
        assert len(proc.log) > 40
        assert not proc.log.replaying


class TestFallbacks:
    def test_rollback_to_older_checkpoint_falls_back_to_replay(self):
        """The shadow parks at the NEWEST guess; denying the OLDER guess
        truncates before it, so promotion must refuse and full replay
        must still produce the right answer."""

        def worker(p):
            for _ in range(10):
                yield p.compute(0.01)
            x = yield p.aid_init("x")
            y = yield p.aid_init("y")
            yield p.send("judge", x)
            vx = yield p.guess(x)
            yield p.compute(1.0)
            vy = yield p.guess(y)      # shadow advances to this boundary
            yield p.compute(5.0)
            return ("both", vx, vy)

        def judge(p):
            msg = yield p.recv()
            yield p.compute(3.0)       # after worker's second guess
            yield p.deny(msg.payload)  # denies x: the OLDER guess
            return "judged"

        sys = HopeSystem(fast_rollback=True)
        sys.spawn("judge", judge)
        sys.spawn("worker", worker)
        sys.run()
        proc = sys.procs["worker"]
        assert proc.done
        assert proc.result == ("both", False, True)
        stats = sys.stats()
        assert stats["rollbacks"] == 1
        # promotion refused; the restart re-fed the pre-x prefix
        assert stats["replayed_effects"] > 0
        sys.machine.check_invariants()

    def test_crash_discards_the_shadow(self):
        def worker(p):
            a = yield p.aid_init("a")
            yield p.guess(a)
            yield p.compute(100.0)
            return "never"

        sys = HopeSystem(fast_rollback=True)
        sys.spawn("worker", worker)
        sys.run(until=1.0)
        assert sys.procs["worker"].shadow is not None
        sys.crash_process("worker")
        assert sys.procs["worker"].shadow is None

    def test_fast_rollback_off_never_builds_shadows(self):
        sys = _worker_judge_system(False)
        sys.run()
        assert all(p.shadow is None for p in sys.procs.values())


class TestShadowCheckpointUnit:
    """Direct unit tests for the replica container."""

    class _FakeEffect:
        def __init__(self, kind):
            self.kind = kind

    def _body(self, trace=None):
        def gen():
            for i in range(5):
                result = yield self._FakeEffect("compute")
                if trace is not None:
                    trace.append(result)
            yield self._FakeEffect("send")

        return gen()

    def _log(self, kinds):
        log = EffectLog()
        for i, kind in enumerate(kinds):
            log.append(kind, i)
        return log

    def test_advance_feeds_logged_results(self):
        trace = []
        log = self._log(["compute"] * 5)
        shadow = ShadowCheckpoint(self._body(trace))
        assert shadow.advance(log, 3)
        assert shadow.pos == 3
        assert trace == [0, 1, 2]
        assert log.shadow_feeds_total == 3
        # incremental: a later advance only feeds the delta
        assert shadow.advance(log, 5)
        assert trace == [0, 1, 2, 3, 4]
        assert shadow.pending_effect.kind == "send"

    def test_kind_divergence_invalidates(self):
        log = self._log(["compute", "recv"])  # body yields compute twice
        shadow = ShadowCheckpoint(self._body())
        assert not shadow.advance(log, 2)
        assert not shadow.valid
        assert shadow.gen is None

    def test_early_finish_invalidates(self):
        log = self._log(["compute"] * 10)  # longer than the body
        shadow = ShadowCheckpoint(self._body())
        assert not shadow.advance(log, 10)
        assert not shadow.valid

    def test_backward_target_invalidates(self):
        log = self._log(["compute"] * 5)
        shadow = ShadowCheckpoint(self._body())
        assert shadow.advance(log, 4)
        assert not shadow.advance(log, 2)
        assert not shadow.valid

    def test_begin_replay_at_bounds(self):
        log = self._log(["compute"] * 3)
        log.begin_replay_at(3)
        assert not log.replaying
        assert log.skipped_entries_total == 3
        try:
            log.begin_replay_at(7)
        except HopeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("out-of-range replay index must raise")
