"""Runtime edge cases: double rollbacks, timeouts under speculation,
denial racing delivery, crashes of speculative processes."""

import pytest

from repro.core import AidStatus
from repro.runtime import HopeSystem
from repro.sim import TIMED_OUT, ConstantLatency


def test_two_rollbacks_of_same_process_in_one_cascade():
    """An outer deny arriving after an inner deny must truncate deeper."""
    system = HopeSystem()
    trail = []

    def worker(p):
        x = yield p.aid_init("x")
        y = yield p.aid_init("y")
        yield p.send("judge", (x, y))
        gx = yield p.guess(x)
        gy = yield p.guess(y)
        yield p.emit((gx, gy))
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        x, y = msg.payload
        yield p.compute(2.0)
        yield p.deny(y)                  # inner rollback
        yield p.compute(2.0)
        yield p.deny(x)                  # deeper rollback of the same worker
        yield p.compute(1.0)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run()
    assert system.committed_outputs("worker") == [(False, False)]
    assert system.procs["worker"].restarts == 2


def test_deny_while_victim_mid_compute():
    """The pending compute timer of the old incarnation must be cancelled."""
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.compute(100.0)       # still computing when denied
            yield p.emit("never")
        yield p.emit("done")

    def judge(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    final = system.run()
    assert system.committed_outputs("worker") == ["done"]
    # the 100-unit speculative compute must not stretch the makespan
    assert final < 50.0


def test_recv_timeout_inside_speculation_is_replayable():
    system = HopeSystem()
    seen = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            msg = yield p.recv(timeout=2.0)     # nobody writes: times out
            seen.append(("spec", msg))
            yield p.compute(10.0)
        else:
            msg = yield p.recv(timeout=2.0)
            seen.append(("def", msg))

    def judge(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run()
    assert seen == [("spec", TIMED_OUT), ("def", TIMED_OUT)]


def test_crash_of_speculative_process_releases_machine_state():
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.emit("speculative")
        yield p.compute(100.0)

    system.spawn("worker", worker)
    system.run(until=5.0)
    assert system.outputs("worker") == ["speculative"]
    system.crash_process("worker")
    system.run()
    # the forgotten interval can never commit its output
    assert system.outputs("worker") == []
    record = system.machine.process("worker")
    assert record.current is None
    assert record.speculative == set()
    system.machine.check_invariants()


def test_restart_after_crash_reruns_from_scratch():
    system = HopeSystem()
    runs = []

    def worker(p):
        runs.append("incarnation")
        yield p.compute(3.0)
        yield p.emit("finished")

    system.spawn("worker", worker)
    system.run(until=1.0)
    system.crash_process("worker")
    system.restart_process("worker")
    system.run()
    assert runs == ["incarnation", "incarnation"]
    assert system.committed_outputs("worker") == ["finished"]


def test_restart_without_crash_rejected():
    from repro.core import HopeError

    system = HopeSystem()
    system.spawn("worker", lambda p: iter(()))
    with pytest.raises(HopeError):
        system.restart_process("worker")


def test_denial_races_inflight_delivery():
    """A message delivered in the same instant its tag is denied must be
    dropped, not processed."""
    system = HopeSystem(latency=ConstantLatency(3.0))
    got = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)        # arrives t=3
        if (yield p.guess(x)):
            yield p.send("sink", "spec")  # in flight t=0..3
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        yield p.deny(msg.payload)       # t=3: retraction races delivery

    def sink(p):
        msg = yield p.recv(timeout=30.0)
        got.append(msg)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.spawn("sink", sink)
    system.run()
    assert got == [TIMED_OUT]


def test_guess_by_key_string():
    """AIDs travel as plain keys through messages and still resolve."""
    system = HopeSystem()

    def a(p):
        x = yield p.aid_init("x")
        yield p.send("b", x.key)         # raw string key
        yield p.guess(x)
        yield p.compute(1.0)

    def b(p):
        msg = yield p.recv()
        yield p.affirm(msg.payload)      # affirm by key

    system.spawn("a", a)
    system.spawn("b", b)
    system.run()
    [aid] = system.machine.aids.values()
    assert aid.status is AidStatus.AFFIRMED


def test_emit_depth_under_nested_speculation_commits_progressively():
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("x")
        y = yield p.aid_init("y")
        yield p.send("judge", (x, y))
        yield p.guess(x)
        yield p.emit("after-x")
        yield p.guess(y)
        yield p.emit("after-y")
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        x, y = msg.payload
        yield p.compute(1.0)
        yield p.affirm(x)
        snapshots.append(list(outputs()))
        yield p.compute(1.0)
        yield p.affirm(y)

    snapshots = []
    system.spawn("worker", worker)

    def outputs():
        return system.committed_outputs("worker")

    system.spawn("judge", judge)
    system.run()
    # after affirm(x) only the x-level emit was committed
    assert snapshots == [["after-x"]]
    assert outputs() == ["after-x", "after-y"]
