"""Unit tests for the effect log and replay machinery."""

import pytest

from repro.runtime import Checkpoint, EffectLog, LogEntry, ReplayDivergenceError
from repro.runtime.replay import HopeError


def test_append_advances_cursor_keeps_live():
    log = EffectLog()
    log.append("compute", None)
    log.append("recv", "msg")
    assert len(log) == 2
    assert not log.replaying


def test_begin_replay_rewinds_and_feeds_in_order():
    log = EffectLog()
    log.append("a", 1)
    log.append("b", 2)
    log.begin_replay()
    assert log.replaying
    assert log.feed("a") == 1
    assert log.feed("b") == 2
    assert not log.replaying
    assert log.replay_count == 1
    assert log.replayed_entries_total == 2


def test_feed_checks_effect_kind():
    log = EffectLog()
    log.append("compute", None)
    log.begin_replay()
    with pytest.raises(ReplayDivergenceError):
        log.feed("recv")


def test_truncate_drops_suffix_and_clamps_cursor():
    log = EffectLog()
    for i in range(5):
        log.append("e", i)
    dropped = log.truncate(2)
    assert dropped == 3
    assert len(log) == 2
    assert not log.replaying            # cursor clamped to the new tail


def test_truncate_beyond_length_raises():
    log = EffectLog()
    log.append("e", 0)
    with pytest.raises(HopeError):
        log.truncate(5)


def test_live_appends_during_partial_replay_not_allowed_by_shape():
    """After replay finishes, appends continue the same log."""
    log = EffectLog()
    log.append("a", 1)
    log.begin_replay()
    log.feed("a")
    log.append("b", 2)
    assert len(log) == 2
    assert not log.replaying


def test_begin_replay_on_empty_log_counts_nothing():
    log = EffectLog()
    log.begin_replay()
    assert log.replay_count == 0
    assert not log.replaying


def test_checkpoint_repr_and_fields():
    cp = Checkpoint(log_index=7, time=3.25)
    assert cp.log_index == 7
    assert cp.time == 3.25
    assert "7" in repr(cp)


def test_log_entry_repr():
    entry = LogEntry("recv", "payload")
    assert "recv" in repr(entry)
